"""§VI / §IX — the attack matrix, with detection-latency columns.

Static tampering vs the Wurster instruction-cache attack, against an
unprotected binary, self-checksumming, and Parallax.  Expected:

=============  ============  =======================
scheme         static patch  wurster i-cache patch
=============  ============  =======================
unprotected    undetected    undetected
checksumming   DETECTED      undetected  <- Wurster's result
parallax       DETECTED      DETECTED    <- the paper's contribution
=============  ============  =======================

Each detected cell also reports ``cycles_to_corruption`` (tamper ->
first execution of tampered bytes) and ``cycles_to_detection`` (tamper
-> externally observable failure), stamped by the emulator's
:class:`~repro.emu.TamperWatch`.  The Parallax rows tag the tampered
gadget's Fig. 6 rewrite rule so the telemetry histograms get one
``attacks.cycles_to_detection{attack=...,rule=...}`` labeled cell per
combination.

Alongside the matrix the benchmark measures Parallax's protection
coverage (fraction of protected bytes guarded by at least one chain)
and appends both to ``benchmarks/history/attack_matrix.jsonl``:
``coverage_percent`` directly and the latency as ``detection_speed``
(reciprocal geomean, so higher is better — the regression gate assumes
that).  Raw geomeans land in ``BENCH_attack_matrix.json``.
"""

import json
import math
import os

from repro.attacks import evaluate_patch_attack, evaluate_wurster_attack
from repro.baselines import ChecksummedProgram
from repro.binary import Patch
from repro.core import Parallax, ProtectConfig
from repro.corpus import build_gzip
from repro.coverage import build_coverage
from repro.rewrite import RewriteEngine

import _shared

COLD_FUNCTION = "gz_fill_005"

OUTPUT = os.environ.get(
    "REPRO_BENCH_ATTACK_MATRIX",
    os.path.join(os.path.dirname(__file__), "BENCH_attack_matrix.json"),
)


def _setting():
    program = build_gzip(blocks=2, positions=6)
    goal = program.run()
    cold = program.image.symbols[COLD_FUNCTION]
    parallax = Parallax(
        ProtectConfig(
            strategy="cleartext",
            verification_functions=["digest_gzip"],
            protect_addresses=list(range(cold.vaddr, cold.end)),
        )
    ).protect(program)
    checksummed = ChecksummedProgram(build_gzip(blocks=2, positions=6), guards=3)
    return program, goal, parallax, checksummed


def _patch(image, protected=None):
    symbol = image.symbols[COLD_FUNCTION]
    if protected is not None:
        addr = next(
            a for a in protected.report.chains[0].gadget_addresses
            if symbol.vaddr <= a < symbol.end
        )
    else:
        addr = symbol.vaddr + 8
    old = image.read(addr, 1)
    return Patch(addr, old, bytes([old[0] ^ 0xFF]))


def _geomean(values):
    values = [v for v in values if v]
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _fmt_cycles(value):
    return f"{value:,}" if value is not None else "-"


def run_matrix():
    """Build, protect, attack: returns (matrix cells, coverage map)."""
    program, goal, parallax, checksummed = _setting()
    rules = RewriteEngine().classify_gadgets(parallax.image)
    coverage = build_coverage(
        parallax.image, parallax.report, classify_rules=False
    )
    cells = {}
    for label, image, prot in (
        ("unprotected", program.image, None),
        ("checksumming", checksummed.image, None),
        ("parallax", parallax.image, parallax),
    ):
        patch = _patch(image, prot)
        rule = rules.get(patch.vaddr) if prot is not None else None
        cells[label] = (
            evaluate_patch_attack(image, [patch], goal, label, rule=rule),
            evaluate_wurster_attack(image, [patch], goal, label, rule=rule),
        )
    return cells, coverage


def test_attack_matrix(benchmark):
    cells, coverage = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    _report(cells, coverage)


def _report(cells, coverage):
    print()
    print("=== Attack matrix: detected? / cycles to corruption / detection ===")
    for label, (static, wurster) in cells.items():
        for kind, outcome in (("static", static), ("wurster", wurster)):
            verdict = "DETECTED" if outcome.detected else "undetected"
            print(
                f"{label:<14} {kind:<8} {verdict:<11} "
                f"corruption={_fmt_cycles(outcome.cycles_to_corruption):>12} "
                f"detection={_fmt_cycles(outcome.cycles_to_detection):>12}"
            )
    coverage_percent = 100.0 * coverage.coverage_fraction
    print(f"parallax coverage: {coverage.covered_bytes}/"
          f"{coverage.protected_bytes} protected bytes "
          f"({coverage_percent:.1f}%), {len(coverage.spof_addresses())} SPOF")

    detected = [
        o for pair in cells.values() for o in pair if o.detected
    ]
    # Every detected attack must carry a finite latency stamp.
    assert all(o.cycles_to_detection is not None for o in detected)
    assert all(o.cycles_to_detection >= 0 for o in detected)
    detection_geomean = _geomean([o.cycles_to_detection for o in detected])
    corruption_geomean = _geomean(
        [o.cycles_to_corruption for o in detected
         if o.cycles_to_corruption is not None]
    )

    if OUTPUT:
        payload = {
            "matrix": {
                label: {
                    "static": pair[0].to_dict(),
                    "wurster": pair[1].to_dict(),
                }
                for label, pair in cells.items()
            },
            "coverage_percent": round(coverage_percent, 3),
            "spof_bytes": len(coverage.spof_addresses()),
            "cycles_to_detection_geomean": detection_geomean,
            "cycles_to_corruption_geomean": corruption_geomean,
        }
        with open(OUTPUT, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    history = {"coverage_percent": coverage_percent}
    if detection_geomean:
        # The regression gate wants higher-is-better: record the
        # reciprocal (detections per emulated gigacycle).
        history["detection_speed"] = 1e9 / detection_geomean
    _shared.record_history("attack_matrix", history)

    rows = {
        label: (pair[0].detected, pair[1].detected)
        for label, pair in cells.items()
    }
    assert rows["unprotected"] == (False, False)
    assert rows["checksumming"] == (True, False)   # Wurster defeats it
    assert rows["parallax"] == (True, True)        # Parallax does not care


def main() -> int:
    """Standalone entry (no pytest-benchmark): run once, report,
    append history — used by the CI bench-smoke job so the regression
    gate always compares against a fresh same-job candidate."""
    _report(*run_matrix())
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
