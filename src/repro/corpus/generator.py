"""Seeded synthetic IR function generation.

Real programs differ in instruction mix — gcc is branch- and
immediate-dense, lame is dominated by tight multiply/shift loops with
few rewritable immediates — and the paper's Fig. 6 protectability rates
follow directly from that mix.  This generator produces deterministic
"filler" functions under a per-program :class:`MixProfile`, bulking the
corpus binaries to realistic sizes with realistic byte statistics.

All generated functions are executable (loops are counted, memory
accesses stay inside a caller-provided scratch buffer), and everything
is reproducible from the seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..ropc import ir
from ..x86.registers import EAX, EBX, ECX, EDX, EDI, ESI

#: Registers the generator cycles through for arithmetic.
_WORK_REGS = (EAX, EBX, EDX, ESI, EDI)


class MixProfile:
    """Instruction-mix knobs for one synthetic program.

    Attributes:
        arith: weight of plain register arithmetic.
        wide_const: probability a constant is a full random 32-bit value
            (wide immediates are the immediate-rule's raw material).
        memory: weight of load/store segments.
        branch: weight of compare-and-skip segments (jump-rule targets).
        loop: weight of counted-loop segments.
        mul_shift: weight of multiply/shift DSP-style runs.
        call_density: probability a function calls an earlier filler.
        size: (min, max) segment count per function.
        functions: how many filler functions to generate.
    """

    def __init__(
        self,
        arith: float = 1.0,
        wide_const: float = 0.5,
        memory: float = 0.6,
        branch: float = 0.8,
        loop: float = 0.4,
        mul_shift: float = 0.3,
        call_density: float = 0.25,
        size=(4, 10),
        functions: int = 40,
    ):
        self.arith = arith
        self.wide_const = wide_const
        self.memory = memory
        self.branch = branch
        self.loop = loop
        self.mul_shift = mul_shift
        self.call_density = call_density
        self.size = size
        self.functions = functions


class FunctionGenerator:
    """Generates executable filler functions under a mix profile."""

    def __init__(self, profile: MixProfile, scratch_addr: int, seed: int):
        self.profile = profile
        self.scratch_addr = scratch_addr
        self.rng = random.Random(seed)
        self._label_counter = 0

    # ------------------------------------------------------------------

    def generate(self, name_prefix: str = "filler") -> List[ir.IRFunction]:
        """Generate the profile's worth of functions."""
        functions: List[ir.IRFunction] = []
        for index in range(self.profile.functions):
            callee = None
            if functions and self.rng.random() < self.profile.call_density:
                callee = self.rng.choice(functions).name
            functions.append(self._one_function(f"{name_prefix}_{index:03d}", callee))
        return functions

    # ------------------------------------------------------------------

    def _label(self) -> str:
        self._label_counter += 1
        return f"g{self._label_counter}"

    def _const_value(self) -> int:
        if self.rng.random() < self.profile.wide_const:
            return self.rng.randrange(1 << 32)
        return self.rng.randrange(1, 128)

    def _one_function(self, name: str, callee: Optional[str]) -> ir.IRFunction:
        rng = self.rng
        p = self.profile
        f = ir.IRFunction(name, params=1)
        f.emit(ir.Param(EAX, 0))

        segments = rng.randint(*p.size)
        weights = [
            ("arith", p.arith),
            ("memory", p.memory),
            ("branch", p.branch),
            ("loop", p.loop),
            ("mul_shift", p.mul_shift),
        ]
        kinds = [k for k, _ in weights]
        wvals = [w for _, w in weights]

        for _ in range(segments):
            kind = rng.choices(kinds, weights=wvals)[0]
            getattr(self, f"_seg_{kind}")(f)

        if callee is not None:
            # Keep the accumulator in a callee-saved register across the
            # call (eax/ecx/edx are clobbered by the ABI).
            f.emit(ir.Mov(EBX, EAX))
            f.emit(ir.Call(EAX, callee, args=(EBX,)))
            f.emit(ir.BinOp("xor", EAX, EBX))
        f.emit(ir.Ret())
        return f

    # -- segment emitters --------------------------------------------------

    def _seg_arith(self, f: ir.IRFunction) -> None:
        rng = self.rng
        for _ in range(rng.randint(2, 6)):
            reg = rng.choice((EBX, ECX, EDX))
            f.emit(ir.Const(reg, self._const_value()))
            op = rng.choice(("add", "sub", "xor", "or", "and"))
            f.emit(ir.BinOp(op, EAX, reg))

    def _seg_mul_shift(self, f: ir.IRFunction) -> None:
        rng = self.rng
        for _ in range(rng.randint(2, 5)):
            choice = rng.random()
            if choice < 0.4:
                f.emit(ir.Const(ECX, rng.randrange(3, 1 << 16) | 1))
                f.emit(ir.BinOp("mul", EAX, ECX))
            else:
                f.emit(ir.Shift(rng.choice(("shl", "shr", "sar")), EAX, rng.randrange(1, 31)))
                f.emit(ir.Const(ECX, self._const_value()))
                f.emit(ir.BinOp("add", EAX, ECX))

    def _seg_memory(self, f: ir.IRFunction) -> None:
        rng = self.rng
        slot = rng.randrange(0, 64) * 4
        f.emit(ir.Const(ESI, self.scratch_addr))
        if rng.random() < 0.5:
            f.emit(ir.Store(ESI, EAX, slot))
            f.emit(ir.Load(ECX, ESI, rng.randrange(0, 64) * 4))
            f.emit(ir.BinOp("xor", EAX, ECX))
        else:
            f.emit(ir.Load(ECX, ESI, slot))
            f.emit(ir.BinOp("add", EAX, ECX))

    def _seg_branch(self, f: ir.IRFunction) -> None:
        rng = self.rng
        skip = self._label()
        cond = rng.choice(ir.CONDITIONS)
        f.emit(ir.Const(ECX, self._const_value()))
        f.emit(ir.Branch(cond, EAX, ECX, skip))
        for _ in range(rng.randint(1, 3)):
            f.emit(ir.Const(EDX, self._const_value()))
            f.emit(ir.BinOp(rng.choice(("add", "xor", "sub")), EAX, EDX))
        f.emit(ir.Label(skip))

    def _seg_loop(self, f: ir.IRFunction) -> None:
        rng = self.rng
        head = self._label()
        trip = rng.randrange(2, 9)
        f.emit(ir.Const(ESI, trip))
        f.emit(ir.Label(head))
        f.emit(ir.Const(ECX, self._const_value()))
        f.emit(ir.BinOp(rng.choice(("add", "xor")), EAX, ECX))
        if rng.random() < 0.5:
            f.emit(ir.Shift("shr", EAX, 1))
        f.emit(ir.Const(ECX, 1))
        f.emit(ir.BinOp("sub", ESI, ECX))
        f.emit(ir.Branch("ne", ESI, 0, head))
