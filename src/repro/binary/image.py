"""The binary image container.

A :class:`BinaryImage` is our stand-in for an ELF executable: a set of
sections, a symbol table and an entry point.  Both the Parallax protector
and the attack harness operate on images; the emulator loads them into
its memory.
"""

from __future__ import annotations

import copy
import hashlib
from typing import List, Optional

from .section import Perm, Section
from .symbol import Symbol, SymbolKind, SymbolTable


class BinaryImage:
    """An executable image: sections + symbols + entry point.

    Attributes:
        name: program name (e.g. ``"wget"``).
        sections: list of :class:`Section`, non-overlapping.
        symbols: :class:`SymbolTable`.
        entry: virtual address execution starts at.
        metadata: free-form dict used by the pipeline (e.g. protection
            records, instruction-mix info from the corpus generator).
    """

    def __init__(self, name: str = "a.out"):
        self.name = name
        self.sections: List[Section] = []
        self.symbols = SymbolTable()
        self.entry: int = 0
        self.metadata: dict = {}

    # ------------------------------------------------------------------
    # Section management
    # ------------------------------------------------------------------

    def add_section(self, section: Section) -> Section:
        for existing in self.sections:
            if section.vaddr < existing.end and existing.vaddr < section.vaddr + max(
                section.size, 1
            ):
                raise ValueError(
                    f"section {section.name} overlaps {existing.name}"
                )
        self.sections.append(section)
        self.sections.sort(key=lambda s: s.vaddr)
        return section

    def section(self, name: str) -> Section:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise KeyError(f"no section named {name!r}")

    def has_section(self, name: str) -> bool:
        return any(sec.name == name for sec in self.sections)

    @property
    def text(self) -> Section:
        """The primary executable section."""
        return self.section(".text")

    def section_at(self, vaddr: int) -> Optional[Section]:
        for sec in self.sections:
            if sec.contains(vaddr):
                return sec
        return None

    # ------------------------------------------------------------------
    # Byte access across sections
    # ------------------------------------------------------------------

    def read(self, vaddr: int, length: int) -> bytes:
        sec = self.section_at(vaddr)
        if sec is None or not sec.contains(vaddr, length):
            raise IndexError(f"read of {length} bytes at {vaddr:#x} outside image")
        return sec.read(vaddr, length)

    def write(self, vaddr: int, payload: bytes) -> None:
        sec = self.section_at(vaddr)
        if sec is None or not sec.contains(vaddr, len(payload)):
            raise IndexError(f"write at {vaddr:#x} outside image")
        sec.write(vaddr, payload)

    def read_u32(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 4), "little")

    def write_u32(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------

    def add_function(self, name: str, vaddr: int, size: int, ir=None) -> Symbol:
        return self.symbols.add(Symbol(name, vaddr, size, SymbolKind.FUNCTION, ir=ir))

    def add_object(self, name: str, vaddr: int, size: int) -> Symbol:
        return self.symbols.add(Symbol(name, vaddr, size, SymbolKind.OBJECT))

    def function_bytes(self, name: str) -> bytes:
        sym = self.symbols[name]
        return self.read(sym.vaddr, sym.size)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def code_bytes(self) -> int:
        """Total number of bytes in executable sections."""
        return sum(sec.size for sec in self.sections if sec.executable)

    def executable_sections(self) -> List[Section]:
        return [sec for sec in self.sections if sec.executable]

    def clone(self) -> "BinaryImage":
        """Deep copy — used to compare pristine vs tampered images."""
        return copy.deepcopy(self)

    def canonical_bytes(self) -> bytes:
        """A canonical serialization of everything execution can see.

        Covers the entry point, every section (name, address,
        permissions, exact contents) and every symbol.  Two images with
        equal canonical bytes are behaviourally identical to the
        emulator; ``metadata`` is free-form bookkeeping and excluded.
        The encoding length-prefixes each field so distinct images can
        never serialize identically.
        """
        out = bytearray()

        def field(tag: bytes, payload: bytes) -> None:
            out.extend(tag)
            out.extend(len(payload).to_bytes(8, "little"))
            out.extend(payload)

        field(b"N", self.name.encode("utf-8"))
        field(b"E", self.entry.to_bytes(8, "little"))
        for sec in self.sections:  # kept sorted by vaddr
            field(b"s", sec.name.encode("utf-8"))
            field(b"a", sec.vaddr.to_bytes(8, "little"))
            field(b"p", bytes([sec.perm]))
            field(b"d", bytes(sec.data))
        for sym in sorted(self.symbols, key=lambda s: (s.vaddr, s.name)):
            field(b"y", sym.name.encode("utf-8"))
            field(b"v", sym.vaddr.to_bytes(8, "little"))
            field(b"z", sym.size.to_bytes(8, "little"))
            field(b"k", str(sym.kind).encode("utf-8"))
        return bytes(out)

    def fingerprint(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_bytes` — the image's
        content-addressed identity, used as a cache key component."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def __repr__(self) -> str:
        secs = ", ".join(s.name for s in self.sections)
        return f"<BinaryImage {self.name} entry={self.entry:#x} [{secs}]>"


__all__ = ["BinaryImage", "Section", "Perm", "Symbol", "SymbolKind", "SymbolTable"]
