"""Benchmark regression gate: latest run vs. rolling history baseline.

Reads ``benchmarks/history/<bench>.jsonl`` (appended by
``_shared.record_history`` on every benchmark run), treats the newest
entry as the candidate, builds a per-metric baseline from the median of
the preceding runs, and **fails (exit 1) when the geometric-mean ratio
across metrics regresses by more than the threshold** (default 15%).

All history metrics are higher-is-better (throughputs, speedups), so a
ratio below ``1 - threshold`` is a slowdown.  The median baseline over
a window of runs keeps one lucky (or unlucky) historical run from
dominating the comparison; entries from a different environment stamp
(python version, machine, engine) than the candidate are skipped when
enough same-environment history exists, so an interpreter upgrade does
not masquerade as a code regression.

Exit codes: 0 ok / insufficient history, 1 regression (or mismatched
data), 2 usage errors.  Stdlib-only: safe to run anywhere, imports
nothing from the repo.

Usage::

    python benchmarks/check_regression.py                # gate 'emulator'
    python benchmarks/check_regression.py --bench emulator \
        --threshold 0.15 --window 5 --min-runs 2
"""

import argparse
import json
import math
import os
import sys

DEFAULT_HISTORY = os.environ.get(
    "REPRO_BENCH_HISTORY",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "history"),
)


def load_history(path):
    """Parse one history JSONL file; skips corrupt lines (a killed
    benchmark run must not wedge the gate forever)."""
    entries = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("metrics"), dict):
                entries.append(entry)
    return entries


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def baseline_metrics(entries, window):
    """Per-metric median over the last ``window`` entries."""
    recent = entries[-window:]
    names = set()
    for entry in recent:
        names.update(entry["metrics"])
    result = {}
    for name in names:
        values = [
            e["metrics"][name]
            for e in recent
            if name in e["metrics"] and e["metrics"][name] > 0
        ]
        if values:
            result[name] = median(values)
    return result


def compare(candidate, baseline):
    """(geomean_ratio, per-metric ratios) for metrics present in both."""
    ratios = {}
    for name, base in baseline.items():
        value = candidate.get(name)
        if value is None or value <= 0 or base <= 0:
            continue
        ratios[name] = value / base
    if not ratios:
        return None, ratios
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
    return geomean, ratios


def check(entries, threshold, window, min_runs, out=sys.stdout):
    if len(entries) < min_runs:
        print(
            f"insufficient history ({len(entries)} run(s), need {min_runs}); "
            "nothing to gate",
            file=out,
        )
        return 0
    candidate = entries[-1]
    prior = entries[:-1]
    env = candidate.get("env")
    same_env = [e for e in prior if e.get("env") == env]
    if same_env:
        prior = same_env
    else:
        print(
            "note: no prior runs share the candidate's environment stamp; "
            "comparing across environments",
            file=out,
        )
    baseline = baseline_metrics(prior, window)
    geomean, ratios = compare(candidate.get("metrics", {}), baseline)
    if geomean is None:
        print("ERROR: no comparable metrics between candidate and baseline", file=out)
        return 1

    floor = 1.0 - threshold
    worst = sorted(ratios.items(), key=lambda kv: kv[1])
    print(
        f"candidate {candidate.get('git_sha', 'unknown')[:12]} vs "
        f"median of {min(len(prior), window)} prior run(s); "
        f"{len(ratios)} metric(s)",
        file=out,
    )
    for name, ratio in worst:
        marker = "  <-- regression" if ratio < floor else ""
        print(f"  {name:<40} {ratio:>7.3f}x{marker}", file=out)
    print(f"geomean ratio {geomean:.3f}x (gate: >= {floor:.3f}x)", file=out)
    if geomean < floor:
        print(
            f"REGRESSION: geomean ratio {geomean:.3f}x is below "
            f"{floor:.3f}x (>{threshold:.0%} slowdown)",
            file=out,
        )
        return 1
    print("ok", file=out)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="emulator",
                        help="benchmark name (history/<bench>.jsonl)")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help="history directory")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated geomean slowdown (default 0.15)")
    parser.add_argument("--window", type=int, default=5,
                        help="prior runs in the rolling baseline (default 5)")
    parser.add_argument("--min-runs", type=int, default=2,
                        help="total runs required before gating (default 2)")
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")
    if args.window < 1 or args.min_runs < 2:
        parser.error("--window must be >= 1 and --min-runs >= 2")

    path = os.path.join(args.history, f"{args.bench}.jsonl")
    if not os.path.exists(path):
        print(f"no history at {path}; nothing to gate")
        return 0
    entries = load_history(path)
    return check(entries, args.threshold, args.window, args.min_runs)


if __name__ == "__main__":
    sys.exit(main())
