"""Static code-patching attacks (software cracking, Listing 2).

Each attack builds a :class:`~repro.binary.patch.Patch` against an
image; the harness applies it and observes whether the protected
program still behaves (attack succeeded) or malfunctions (tamper
response triggered).
"""

from __future__ import annotations

from typing import List, Optional

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..x86.decoder import decode, decode_all
from ..x86.instruction import CONDITIONAL_JUMPS


class AttackError(Exception):
    pass


def corrupt_byte(image: BinaryImage, vaddr: int, mask: int = 0xFF) -> Patch:
    """Flip bits of a single code byte — the minimal integrity violation
    used to destroy one gadget of a verification chain."""
    old = image.read(vaddr, 1)
    return Patch(vaddr, old, bytes([old[0] ^ mask]), reason="corrupt_byte")


def nop_out(image: BinaryImage, vaddr: int, length: int) -> Patch:
    """Overwrite ``length`` bytes with nops — Listing 2's attack on the
    jump to cleanup_and_exit."""
    old = image.read(vaddr, length)
    return Patch(vaddr, old, b"\x90" * length, reason="nop_out")


def nop_out_instruction(image: BinaryImage, vaddr: int) -> Patch:
    """Nop the single instruction at ``vaddr``."""
    window = image.read(vaddr, min(16, image.section_at(vaddr).end - vaddr))
    insn = decode(window, 0, address=vaddr)
    return nop_out(image, vaddr, insn.length)


def invert_branch(image: BinaryImage, vaddr: int) -> Patch:
    """Flip a conditional jump's condition (e.g. jns -> js) — the §IV-A
    attack of rewriting the anti-debugging branch."""
    window = image.read(vaddr, min(16, image.section_at(vaddr).end - vaddr))
    insn = decode(window, 0, address=vaddr)
    if insn.mnemonic not in CONDITIONAL_JUMPS:
        raise AttackError(f"{insn!r} is not a conditional jump")
    old = image.read(vaddr, insn.length)
    new = bytearray(old)
    if old[0] == 0x0F:  # two-byte jcc rel32: toggle the condition bit
        new[1] ^= 0x01
    else:  # jcc rel8
        new[0] ^= 0x01
    return Patch(vaddr, bytes(old), bytes(new), reason="invert_branch")


def force_branch(image: BinaryImage, vaddr: int) -> Patch:
    """Turn a conditional jump into an unconditional one (always taken)."""
    window = image.read(vaddr, min(16, image.section_at(vaddr).end - vaddr))
    insn = decode(window, 0, address=vaddr)
    if insn.mnemonic not in CONDITIONAL_JUMPS:
        raise AttackError(f"{insn!r} is not a conditional jump")
    old = image.read(vaddr, insn.length)
    new = bytearray(old)
    if old[0] == 0x0F:
        # 0f 8x rel32 (6 bytes) -> e9 rel32' nop, same target
        rel = int.from_bytes(old[2:6], "little")
        new = bytearray(b"\xe9" + ((rel + 1) & 0xFFFFFFFF).to_bytes(4, "little") + b"\x90")
    else:
        new[0] = 0xEB  # jcc rel8 -> jmp rel8
    return Patch(vaddr, bytes(old), bytes(new), reason="force_branch")


def stub_out_function(image: BinaryImage, name: str, return_value: int = 1) -> Patch:
    """Replace a function's entry with ``mov eax, value; ret`` — the
    classic crack of a license/anti-debug check."""
    symbol = image.symbols[name]
    payload = b"\xb8" + (return_value & 0xFFFFFFFF).to_bytes(4, "little") + b"\xc3"
    if symbol.size < len(payload):
        raise AttackError(f"{name} too small to stub out")
    old = image.read(symbol.vaddr, len(payload))
    return Patch(symbol.vaddr, old, payload, reason=f"stub_out({name})")


def find_branches_in_function(image: BinaryImage, name: str) -> List:
    """Conditional branches inside a function — the natural crack targets."""
    symbol = image.symbols[name]
    instructions = decode_all(
        image.read(symbol.vaddr, symbol.size), address=symbol.vaddr
    )
    return [insn for insn in instructions if insn.mnemonic in CONDITIONAL_JUMPS]
