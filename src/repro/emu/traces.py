"""Trace-linking execution engine: hot superblock chains compiled whole.

The block engine (:mod:`repro.emu.blocks`) removed per-instruction
dispatch; what remains on chain-heavy workloads is per-*block* dispatch:
every superblock execution pays a cache probe, an epoch/page-version
validity check, a step-budget compare and a tamper-watch check before
its generated function even starts — and ROP verification chains are
made of *tiny* blocks (a gadget is a couple of instructions ending in
``ret``), so that fixed cost dominates.  This module removes it the
same way the block engine removed dispatch: by compiling more per
entry.

A **trace** is a chain of superblocks linked across their observed
exits into one generated Python function.  Construction is
record-then-compile (the classic NET scheme):

* the engine counts block-entry executions while executing cold code
  through the block engine (one counter bump per block execution);
* once an entry crosses ``TRACE_HOT_THRESHOLD`` it becomes a *trace
  head*: the engine **records** the very next executed block sequence
  from that head — the actual hot path, including which direction each
  conditional jump went and, crucially, where each ``ret`` went.
  Recording a concrete execution is what makes ROP chains traceable:
  a gadget shared between ten chain positions has ten different ret
  targets, but *at this position in this path* it has exactly one;
* compiled traces are cached under ``(head eip, head esp)``.  The
  stack pointer disambiguates *chain position*: a verification chain
  pops its way through the stack, so every occurrence of a shared
  gadget sits at a distinct esp — and re-executions of the chain
  revisit the same esp with the same stack data, so each position gets
  its own trace whose guards then pass.  Ordinary code is unharmed: a
  loop head re-enters at a constant esp, and a routine entered from
  several stack depths merely compiles one (identical) trace per
  depth, bounded by the cache generations and a per-eip variant cap;
* the recorded path is compiled into one function.  Static links
  (``jmp``, ``call``) cost nothing at run time; a linked conditional
  jump becomes a guard that side-exits when the cold direction is
  taken; a linked ``ret`` executes the full genuine ret semantics
  (stack pop, RAS, mispredict accounting) and then guards the popped
  target against the recorded successor.  Any failed guard charges the
  exact executed prefix and returns to the dispatch loop — the
  **side-exit fallback** — where the block engine continues at the
  actual target.

Dispatch and cache-coherence checks are thereby *hoisted to trace
entry*: one cache probe, one ``write_epoch`` compare (or per-page
version probes on epoch mismatch) and one tamper-watch check cover the
whole chain.

Coherence reuses the block engine's three-tier invalidation unchanged:

* **tier 1/2 (entry)** — a trace records the write-counter version of
  every page any of its blocks span; a ``write_epoch`` match proves
  validity in one compare, and on mismatch the per-page versions are
  re-probed (tamper through either memory view bumps them);
* **tier 3 (in-trace)** — specialized stores range-check against the
  trace's byte envelope and abort after the store; generic handler
  stores re-probe the trace's page versions.  Either abort returns to
  the dispatch loop exactly where the step engine would first re-decode.
* an invalidated trace is dropped and its head's hotness reset, so the
  path is re-recorded before the trace is rebuilt — self-modifying
  code and mid-run tampering recompile along the *new* observed path.

Semantics stay bit-identical to the step engine by construction: every
instruction body is emitted by the block engine's specializer (or falls
back to the shared :mod:`repro.emu.dispatch` handlers), step/cycle
accounting charges exact prefixes on every exit path, and an unhit
:class:`~repro.emu.emulator.TamperWatch` overlapping any linked block
makes the engine single-step, exactly like the block engine does.

Code on unversioned pages (the stack) is never linked into a trace —
such blocks execute through the block engine's uncached path, as today.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..telemetry.recorder import get_recorder
from ..x86.instruction import CONDITIONAL_JUMPS, CONTROL_FLOW
from ..x86.operands import Imm, Rel
from .cpu import MASK32
from .dispatch import DISPATCH, cost_of
from .errors import BadFetch
from .blocks import _CC_EXPR, _SHARED_NS, _is_r32, _unimplemented

#: Block-entry executions before the entry is promoted to a trace head
#: (its next execution is recorded and compiled).  Low enough that
#: steady-state workloads (repeated verification-chain calls) promote
#: within the first few iterations; high enough that straight-through
#: cold code never pays a recording or a compile.
TRACE_HOT_THRESHOLD = 8

#: Upper bounds per trace.  A trace's dispatch savings scale with its
#: length; the caps bound compile time and generated-function size.
MAX_TRACE_BLOCKS = 64
MAX_TRACE_INSNS = 512

#: Per-generation bound of the trace cache (two generations resident,
#: promote-on-hit — same policy as the decode and block caches).
TRACE_CACHE_GENERATION = 1024

#: Per-head bound on esp-keyed trace variants resident in the young
#: generation.  Chain positions of a shared gadget are naturally
#: bounded; this caps the pathological case (deep recursion entering
#: the same routine from ever-new stack depths would otherwise compile
#: an identical trace per depth).
MAX_TRACE_VARIANTS = 64

#: Hotness-table bound: entry counters are evicted wholesale when the
#: program touches this many distinct block entries (pathological
#: self-modifying workloads; normal programs never get close).
_COUNTER_LIMIT = 1 << 16

#: Fuse trailing ``pop r32`` runs + ``ret`` into one segment-checked
#: batch load (the dominant gadget shape).  Module-level so tests can
#: A/B the fused and per-instruction emissions.
FUSE_RET_GROUPS = True

#: Deferred-compilation proof divisor: a recorded path is compiled
#: after ``1 + len(path) // PENDING_CONFIRM_DIVISOR`` re-dispatches of
#: its ``(eip, esp)`` key.  Compile cost scales with path length, so
#: longer paths must demonstrate proportionally more reuse before the
#: engine pays for them.
PENDING_CONFIRM_DIVISOR = 16

#: Emit a ``# addr: disassembly`` comment above every instruction in
#: generated trace sources.  Costs real compile time on workloads that
#: build many traces (``insn.text()`` per instruction plus ~30% more
#: source to tokenize), so it is off outside debugging sessions.
TRACE_SOURCE_COMMENTS = False


class CompiledTrace:
    """One compiled trace: a linked superblock chain and its stamps."""

    __slots__ = (
        "head", "sp", "n", "fn", "pages", "ranges", "starts", "epoch",
        "mnems", "looping",
    )

    def __init__(
        self, head, sp, n, fn, pages, ranges, starts, epoch, mnems=(),
        looping=False,
    ):
        self.head = head
        #: esp at head entry when the path was recorded — the second
        #: cache-key component.  In a verification chain it identifies
        #: the *chain position*, so a gadget shared between positions
        #: gets one trace per position and each position's guards pass.
        self.sp = sp
        #: total instructions when the trace runs to completion.
        self.n = n
        self.fn = fn
        #: ``(page_number, version_at_compile)`` for every page any
        #: linked block spans; entry validation re-probes these on
        #: ``write_epoch`` mismatch.
        self.pages = pages
        #: per-block ``(start, end)`` byte ranges (tamper-watch overlap).
        self.ranges = ranges
        #: linked block entry addresses (hotness reset on invalidation).
        self.starts = starts
        #: memory.write_epoch at stamp time; equality proves validity
        #: without per-page probes (refreshed on successful re-check).
        self.epoch = epoch
        #: mnemonic tuple across all linked blocks (hot-spot attribution).
        self.mnems = mnems
        #: the recorded path returned to its head: the generated
        #: function iterates in place (with a per-iteration accounting
        #: and budget seam) instead of exiting after one pass, so ``n``
        #: is the instruction count of *one* iteration.
        self.looping = looping

    def __repr__(self) -> str:
        loop = " loop" if self.looping else ""
        return (
            f"<CompiledTrace {self.head:#x}@{self.sp:#x} "
            f"blocks={len(self.starts)} n={self.n}{loop}>"
        )


class TraceEngine:
    """Trace cache + recording dispatch loop bound to one ``Emulator``.

    Cold code executes through the emulator's (shared) block engine
    while the trace engine counts block-entry hotness; a hot head's
    next execution is recorded block-by-block and compiled into a
    linked trace, dispatched from here ever after.
    """

    def __init__(self, emulator):
        self.emulator = emulator
        #: the emulator's block engine: compilation machinery, fallback
        #: execution tier, and the instruction specializer traces reuse.
        self.blocks = emulator.blocks
        #: head eip -> {head esp -> trace}, two generations.  The outer
        #: probe is a plain int key, so never-traced code pays the same
        #: single dict miss as the block engine's cache probe.
        self._cache: Dict[int, Dict[int, CompiledTrace]] = {}
        self._old: Dict[int, Dict[int, CompiledTrace]] = {}
        self._young_count = 0
        #: block entry -> executions observed in the cold path.
        self._exec: Dict[int, int] = {}
        #: ``(eip, esp)`` keys whose recorded path could not be linked
        #: (single-block paths gain nothing; unlinkable terminators).
        self._no_trace: Set[Tuple[int, int]] = set()
        #: recorded-but-not-yet-compiled paths: ``(eip, esp)`` ->
        #: ``[block-entry path, closed, confirmations remaining]``.
        #: Compilation is deferred until the key re-executes enough
        #: times to amortize the build: a code-generation +
        #: ``compile()`` pass costs milliseconds and scales with path
        #: length, so long paths demand proportionally more proof
        #: (``1 + len(path) // PENDING_CONFIRM_DIVISOR``) while a small
        #: hot loop compiles on its first re-encounter.  One-shot
        #: program code never pays a compile at all.
        self._pending: Dict[Tuple[int, int], list] = {}
        #: the block-entry sequence being recorded, or ``None``.
        self._recording: Optional[List[int]] = None
        #: cache key of the recording's head: ``(eip, esp at entry)``.
        self._record_key: Tuple[int, int] = (-1, -1)
        #: loop-candidate cycle length: the path returned to its head
        #: at the head's esp after this many blocks.  Confirmed (and
        #: compiled as a looping trace) only if the next cycle repeats
        #: it exactly — a chain that *pivots* esp back over rewritten
        #: stack words revisits the head but then diverges, and must be
        #: recorded straight through instead.
        self._record_cycle = 0
        #: the recording ends in a confirmed loop closure.
        self._record_closed = False
        #: the successor the recorded path must continue at; anything
        #: else (exception unwound, run() boundary, cached-trace hit)
        #: finalizes the recording at its current prefix.
        self._record_expect = -1
        # telemetry (recorded at run end by the emulator).
        self.compiled = 0
        self.hits = 0
        self.epoch_hits = 0
        self.page_revalidations = 0
        self.invalidated = 0
        self.write_aborts = 0
        #: guard failures: a linked jcc went the cold way or a linked
        #: ret popped an unexpected target; execution fell back to the
        #: dispatch loop with the exact prefix charged.
        self.side_exit_fallbacks = 0
        #: instructions retired inside trace executions (complete or
        #: partial), for the ``emu.hot.trace.retired`` metric.
        self.retired = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, stop: Optional[int] = None) -> None:
        """Execute until ``ExitProgram``/fault, or until eip == ``stop``.

        Exceptions propagate with step/cycle accounting already exact,
        identical to the step and block engines.
        """
        emu = self.emulator
        cpu = emu.cpu
        mem = emu.memory
        regs = cpu.regs
        blocks = self.blocks
        bcache = blocks._cache
        vget = mem._versions.get
        max_steps = emu.max_steps
        cache = self._cache
        rec = get_recorder()
        hot = emu.hotspots
        exec_counts = self._exec
        hits = 0
        epoch_hits = 0
        b_hits = 0
        b_epoch_hits = 0
        try:
            while True:
                eip = cpu.eip
                if eip == stop:
                    return
                if self._recording is None:
                    by_sp = cache.get(eip)
                    t = by_sp.get(regs[4]) if by_sp is not None else None
                    if t is None and self._old:
                        t = self._revalidate_old(eip, regs[4])
                else:
                    # Record *through* compiled territory (cold, via the
                    # block engine): stopping at an existing trace's
                    # boundary would fragment paths into short traces,
                    # and recordings are rare enough that the slower
                    # pass never shows.
                    by_sp = None
                    t = None
                if t is not None:
                    # Inline fast path: young-generation hit validated
                    # by the global epoch compare alone.
                    epoch = mem.write_epoch
                    if t.epoch != epoch:
                        for page, version in t.pages:
                            if vget(page, 0) != version:
                                self._invalidate(t)
                                t = None
                                break
                        else:
                            t.epoch = epoch
                            self.page_revalidations += 1
                    else:
                        epoch_hits += 1
                if t is not None:
                    if emu.steps + t.n > max_steps:
                        # Near the budget: single-step so
                        # StepLimitExceeded fires on exactly the same
                        # instruction as the step engine.
                        emu.step()
                        continue
                    watch = emu.tamper_watch
                    if (
                        watch is not None
                        and watch.hit_cycles is None
                        and any(watch.overlaps(s, e) for s, e in t.ranges)
                    ):
                        # An unhit TamperWatch overlaps a linked block:
                        # single-step so the stamp comes from
                        # Emulator.step, identical to both other engines.
                        emu.step()
                        continue
                    hits += 1
                    if hot is not None:
                        hot.record_trace(t)
                    before = emu.steps
                    status = t.fn(emu, cpu, mem)
                    self.retired += emu.steps - before
                    if status:
                        if status == 1:
                            self.write_aborts += 1
                            if rec.enabled:
                                rec.record(
                                    "trace_invalidate", tier="store",
                                    head=t.head,
                                )
                        else:
                            self.side_exit_fallbacks += 1
                    continue

                # -- cold tier: block execution + hotness/recording ----
                b = bcache.get(eip)
                if b is None or b.epoch != mem.write_epoch:
                    b = blocks._lookup(eip)
                    bcache = blocks._cache  # may have rotated generations
                else:
                    b_epoch_hits += 1
                if emu.steps + b.n > max_steps:
                    emu.step()
                    continue
                watch = emu.tamper_watch
                if (
                    watch is not None
                    and watch.hit_cycles is None
                    and watch.overlaps(b.start, b.end)
                ):
                    emu.step()
                    continue
                b_hits += 1
                if hot is not None:
                    hot.record_block(b)
                sp = regs[4]
                before = emu.steps
                if b.fn(emu, cpu, mem):
                    blocks.write_aborts += 1
                    if rec.enabled:
                        rec.record(
                            "block_invalidate", tier="store",
                            start=b.start, end=b.end,
                        )
                if not b.cacheable:
                    # Unversioned (stack) code is neither counted nor
                    # recorded — nothing could ever invalidate it.
                    if self._recording is not None:
                        self._finalize_recording()
                    continue
                completed = emu.steps - before == b.n
                recording = self._recording
                if recording is not None:
                    if eip != self._record_expect:
                        # Path broken (exception unwound, run() restart):
                        # compile the prefix we trusted.
                        self._finalize_recording()
                    elif completed and len(recording) < MAX_TRACE_BLOCKS:
                        recording.append(eip)
                        nxt = cpu.eip
                        self._record_expect = nxt
                        cyc = self._record_cycle
                        if cyc:
                            pos = len(recording) - 1
                            if eip != recording[pos - cyc]:
                                # Second pass diverged: the head revisit
                                # was a pivot, not a loop.  Keep
                                # recording straight through it.
                                self._record_cycle = 0
                            elif pos + 1 == 2 * cyc:
                                if (
                                    nxt == recording[0]
                                    and regs[4] == self._record_key[1]
                                ):
                                    # Two identical consecutive cycles:
                                    # a genuine loop.  Compile one
                                    # cycle as a looping trace.
                                    del recording[cyc:]
                                    recording.append(nxt)
                                    self._record_closed = True
                                    self._finalize_recording()
                                else:
                                    self._record_cycle = 0
                        elif (
                            nxt == recording[0]
                            and regs[4] == self._record_key[1]
                        ):
                            # Path returned to its head at the head's
                            # esp: loop candidate, to be confirmed by
                            # the next cycle.
                            self._record_cycle = len(recording)
                        continue
                    else:
                        # Interior side exit (successor is not the final
                        # instruction's) or length cap: stop the path
                        # here — with this block, whose exit is genuine,
                        # if it completed.
                        if completed:
                            recording.append(eip)
                        self._finalize_recording()
                        continue
                count = exec_counts.get(eip, 0) + 1
                if count >= TRACE_HOT_THRESHOLD:
                    if (
                        completed
                        and (eip, sp) not in self._no_trace
                        and (by_sp is None or len(by_sp) < MAX_TRACE_VARIANTS)
                    ):
                        pending = self._pending.get((eip, sp))
                        if pending is not None:
                            # A recorded path re-executing: once it has
                            # proven enough reuse to amortize its build,
                            # compile it.  The trace dispatches from the
                            # next arrival.
                            pending[2] -= 1
                            if pending[2] <= 0:
                                del self._pending[(eip, sp)]
                                self._compile_pending((eip, sp), pending)
                        else:
                            # Promote: record this execution's
                            # continuation.  Each (eip, esp) position
                            # records separately, so a shared gadget
                            # grows one trace per position.
                            self._recording = [eip]
                            self._record_key = (eip, sp)
                            self._record_cycle = 0
                            self._record_closed = False
                            self._record_expect = cpu.eip
                else:
                    if len(exec_counts) >= _COUNTER_LIMIT:
                        exec_counts.clear()
                    exec_counts[eip] = count
        finally:
            self.hits += hits
            self.epoch_hits += epoch_hits
            blocks.hits += b_hits
            blocks.epoch_hits += b_epoch_hits
            if self._recording is not None:
                # The run ended (stop address, fault, program exit) with
                # a recording active: compile the prefix now.  Letting it
                # survive into the next run would keep bypassing trace
                # dispatch and re-record from scratch every run.
                self._finalize_recording()

    def run_steps(self, n: int) -> None:
        """Execute exactly ``n`` instructions (attack drivers, tests).

        Already-compiled traces that fit inside the remaining budget
        execute whole; anything else is delegated to the block engine's
        exact-step path, so the emulator lands on precisely the same
        instruction boundary as ``n`` calls to :meth:`Emulator.step`.
        (No hotness counting or recording happens here — paths become
        traces through :meth:`run`.)
        """
        emu = self.emulator
        cpu = emu.cpu
        target = emu.steps + n
        while emu.steps < target:
            t = self._lookup_valid(cpu.eip, cpu.regs[4])
            watch = emu.tamper_watch
            if (
                t is None
                or t.looping  # would retire an unbounded iteration count
                or emu.steps + t.n > min(target, emu.max_steps)
                or (
                    watch is not None
                    and watch.hit_cycles is None
                    and any(watch.overlaps(s, e) for s, e in t.ranges)
                )
            ):
                self.blocks.run_steps(target - emu.steps)
                return
            self.hits += 1
            hot = emu.hotspots
            if hot is not None:
                hot.record_trace(t)
            before = emu.steps
            status = t.fn(emu, cpu, emu.memory)
            self.retired += emu.steps - before
            if status:
                if status == 1:
                    self.write_aborts += 1
                else:
                    self.side_exit_fallbacks += 1

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------

    def _lookup_valid(self, eip: int, sp: int) -> Optional[CompiledTrace]:
        """The valid cached trace headed at ``(eip, sp)``, if any."""
        by_sp = self._cache.get(eip)
        t = by_sp.get(sp) if by_sp is not None else None
        if t is None:
            if not self._old:
                return None
            return self._revalidate_old(eip, sp)
        mem = self.emulator.memory
        epoch = mem.write_epoch
        if t.epoch == epoch:
            self.epoch_hits += 1
            return t
        vget = mem._versions.get
        for page, version in t.pages:
            if vget(page, 0) != version:
                self._invalidate(t)
                return None
        t.epoch = epoch
        self.page_revalidations += 1
        return t

    def _revalidate_old(self, eip: int, sp: int) -> Optional[CompiledTrace]:
        """Old-generation probe: promote a valid survivor, or ``None``."""
        by_sp = self._old.get(eip)
        t = by_sp.get(sp) if by_sp is not None else None
        if t is None:
            return None
        mem = self.emulator.memory
        epoch = mem.write_epoch
        if t.epoch != epoch:
            vget = mem._versions.get
            for page, version in t.pages:
                if vget(page, 0) != version:
                    self._invalidate(t)
                    return None
            t.epoch = epoch
            self.page_revalidations += 1
        self._cache.setdefault(eip, {})[sp] = t  # promote the survivor
        self._young_count += 1
        return t

    def _remember(self, t: CompiledTrace) -> None:
        self.compiled += 1
        if self._young_count >= TRACE_CACHE_GENERATION:
            self._old = self._cache
            self._cache = {}
            self._young_count = 0
        self._cache.setdefault(t.head, {})[t.sp] = t
        self._young_count += 1

    def _invalidate(self, t: CompiledTrace) -> None:
        """Drop ``t`` and reset its head's hotness.

        The head must re-cross the threshold before the path is
        re-recorded and the trace rebuilt — tampered code may branch
        (or return) differently, and the new recording follows the
        *new* observed path.
        """
        self.invalidated += 1
        head = t.head
        for gen in (self._cache, self._old):
            by_sp = gen.get(head)
            if by_sp is not None:
                by_sp.pop(t.sp, None)
                if not by_sp:
                    del gen[head]
        self._exec[head] = 0
        self._no_trace.discard((head, t.sp))
        # Tampered code may follow a different path: any parked
        # recording for this position is stale by policy too.
        self._pending.pop((head, t.sp), None)
        rec = get_recorder()
        if rec.enabled:
            rec.record("trace_invalidate", tier="page", head=t.head, n=t.n)

    # ------------------------------------------------------------------
    # Trace construction (record, then compile)
    # ------------------------------------------------------------------

    def _blacklist(self, key: Tuple[int, int]) -> None:
        no = self._no_trace
        if len(no) >= _COUNTER_LIMIT:
            no.clear()
        no.add(key)

    def _finalize_recording(self) -> None:
        """Park the recorded block-entry path for deferred compilation."""
        path = self._recording
        key = self._record_key
        closed = self._record_closed
        self._recording = None
        self._record_closed = False
        if path is None or len(path) < 2:
            # A path that never grew past its head has nothing to hoist;
            # blacklist so this position isn't re-recorded every
            # execution.
            if path:
                self._blacklist(key)
            return
        pending = self._pending
        if len(pending) >= _COUNTER_LIMIT:
            pending.clear()
        pending[key] = [
            path, closed, 1 + len(path) // PENDING_CONFIRM_DIVISOR,
        ]

    def _compile_pending(self, key: Tuple[int, int], pending: list) -> None:
        """Compile a parked path whose key has proven it re-executes."""
        path, closed = pending[0], pending[1]
        t = self._compile_path(path, key[1], closed)
        if t is None:
            self._blacklist(key)
        else:
            self._remember(t)
            rec = get_recorder()
            if rec.enabled:
                rec.record(
                    "trace_compile", head=t.head, blocks=len(t.starts),
                    n=t.n,
                )

    def _link_of(
        self, end: int, insns, successor: int
    ) -> Optional[Tuple[str, int]]:
        """How the block ending at ``end`` linked to ``successor``.

        Validates that the block's final instruction *can* reach the
        recorded successor and classifies the link; ``None`` truncates
        the path here (unlinkable terminator, or a successor the final
        instruction cannot explain — e.g. the recording was broken by
        an intervening trace dispatch).
        """
        last = insns[-1]
        m = last.mnemonic
        ops = last.operands
        if m == "ret":
            if ops and not isinstance(ops[0], Imm):
                return None
            # Always linkable: the run-time guard compares the popped
            # target against the recorded successor.
            return ("ret", successor)
        if m == "jmp":
            op = ops[0] if ops else None
            if (
                isinstance(op, Rel)
                and op.target is not None
                and (op.target & MASK32) == successor
            ):
                return ("jmp", successor)
            return None
        if m == "call":
            op = ops[0] if ops else None
            if (
                isinstance(op, Rel)
                and op.target is not None
                and (op.target & MASK32) == successor
            ):
                return ("call", successor)
            return None
        if m in CONDITIONAL_JUMPS:
            op = ops[0] if ops else None
            if not (isinstance(op, Rel) and op.target is not None):
                return None
            if (op.target & MASK32) == successor:
                return ("jcc_taken", successor)
            if successor == end:
                return ("jcc_fall", end)
            return None
        if m in CONTROL_FLOW or m not in DISPATCH:
            return None  # hlt/int/retf/indirect/unimplemented
        if successor == end:
            return ("fall", end)  # block capped by size: plain fallthrough
        return None

    def _compile_path(
        self, path: List[int], sp: int, closed: bool
    ) -> Optional[CompiledTrace]:
        """Compile a recorded block-entry sequence; ``None`` if it
        cannot grow past a single superblock (nothing to hoist).

        The same block may appear more than once — ROP chains revisit
        gadgets within one path — and each occurrence is emitted again
        with its own (positional) link.  ``closed`` marks a path whose
        final entry is the head re-entered at the head's esp: the real
        blocks are ``path[:-1]`` and the last one links back to the
        head, compiling a looping trace.
        """
        emu = self.emulator
        mem = emu.memory
        chain: List[Tuple[int, int, list, Optional[Tuple[str, int]]]] = []
        total = 0
        limit = len(path) - 1 if closed else len(path)
        for index in range(limit):
            eip = path[index]
            try:
                insns, end = self.blocks._decode_block(eip)
            except BadFetch:
                break
            if not all(
                mem.page_is_versioned(page << 12)
                for page in range(eip >> 12, ((end - 1) >> 12) + 1)
            ):
                break  # nothing could ever invalidate stack-page code
            if total + len(insns) > MAX_TRACE_INSNS and chain:
                break
            link = (
                self._link_of(end, insns, path[index + 1])
                if index + 1 < len(path)
                else None
            )
            chain.append((eip, end, insns, link))
            total += len(insns)
            if link is None:
                break
        if not chain:
            return None
        looping = (
            closed and len(chain) == limit and chain[-1][3] is not None
        )
        if len(chain) < 2 and not looping:
            return None
        if not looping and chain[-1][3] is not None:
            # The loop above ended by exhausting ``path`` with a live
            # link; the last block is terminal regardless.
            start, end, insns, _ = chain[-1]
            chain[-1] = (start, end, insns, None)
        return self._generate(path[0], sp, chain, looping)

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------

    def _generate(
        self, head: int, sp: int, chain, looping: bool
    ) -> CompiledTrace:
        """Emit, compile and exec the trace's specialized source.

        Per-instruction emission is delegated to the block engine's
        specializer (identical semantics by construction); only the
        *link points* — each non-terminal block's final instruction —
        get trace-specific emission.  The self-modifying-store range
        check covers the whole trace envelope, and the generic-store
        version check re-probes every page the trace spans.

        A ``looping`` trace wraps the body in ``while True`` with a
        seam that charges the completed iteration's steps/cycles and
        returns (leaving eip at the head) when another full iteration
        would cross the step budget — the dispatch loop then
        single-steps to the exact ``StepLimitExceeded`` boundary, just
        like it does for straight traces.

        Duplicate blocks make the exception handler's prefix lookup
        ambiguous: ``_NEXTS.index(_eip)`` finds the *first* occurrence.
        A checkpoint assignment (``_ck = <flat index>``) is therefore
        emitted at the start of any block occurrence whose successor
        addresses collide with earlier ones, and the handler searches
        from the live checkpoint (``index(_eip, _ck)``).  Between
        consecutive checkpoints every successor address is unique —
        any colliding block opens its own checkpoint region — so the
        search resolves to the faulting occurrence exactly.
        """
        be = self.blocks
        mem = self.emulator.memory
        env_start = min(start for start, _, _, _ in chain)
        env_end = max(end for _, end, _, _ in chain)

        body: List[str] = []
        nexts: List[int] = []
        cums: List[int] = []
        handlers = []
        insn_objs = []
        mnems: List[str] = []
        total_cost = 0
        i = 0
        seen_nexts: Set[int] = set()
        has_ckpt = False
        last_index = len(chain) - 1
        for bi, (start, end, insns, link) in enumerate(chain):
            terminal = bi == last_index
            block_nexts = []
            addr = start
            for insn in insns:
                addr += insn.length
                block_nexts.append(addr)
            if not seen_nexts.isdisjoint(block_nexts):
                # A duplicate occurrence: checkpoint so the exception
                # handler attributes faults to *this* occurrence.
                body.append(f"_ck = {i}")
                has_ckpt = True
            seen_nexts.update(block_nexts)
            # Fused gadget epilogue: a maximal ``pop r32`` run ending in
            # ``ret`` collapses to one segment probe + batch loads.  The
            # ret must either carry a ret link (guarded continuation)
            # or be the terminal instruction of a straight trace.
            ret_link = (
                link
                if link is not None and link[0] == "ret"
                and not (terminal and not looping)
                else None
            )
            group_start = None
            final_j = len(insns) - 1
            if FUSE_RET_GROUPS and final_j >= 1 and \
                    insns[final_j].mnemonic == "ret" and (
                not insns[final_j].operands
                or isinstance(insns[final_j].operands[0], Imm)
            ) and (ret_link is not None or (terminal and not looping)):
                g = final_j
                while g > 0:
                    p = insns[g - 1]
                    if (
                        p.mnemonic == "pop"
                        and len(p.operands) == 1
                        and _is_r32(p.operands[0])
                        and p.operands[0].code != 4  # pop esp: special
                    ):
                        g -= 1
                    else:
                        break
                if g < final_j:
                    group_start = g
            addr = start
            for j, insn in enumerate(insns):
                nxt = addr + insn.length
                addr = nxt
                total_cost += cost_of(insn)
                nexts.append(nxt)
                cums.append(total_cost)
                handlers.append(DISPATCH.get(insn.mnemonic, _unimplemented))
                insn_objs.append(insn)
                mnems.append(insn.mnemonic)
                if TRACE_SOURCE_COMMENTS:
                    body.append(f"# {nxt - insn.length:#x}: {insn.text()}")
                if group_start is not None and j >= group_start:
                    i += 1  # metadata recorded; emission is fused below
                    continue
                if j < final_j:
                    if insn.mnemonic in CONDITIONAL_JUMPS:
                        # Interior side exit (block construction
                        # guarantees a resolvable Rel target here).
                        self._emit_exit_jcc(body, i, insn, total_cost)
                    else:
                        be._emit_insn(
                            body, i, insn, nxt=nxt, cum=total_cost,
                            start=env_start, end=env_end, final=False,
                        )
                elif terminal and not looping:
                    be._emit_insn(
                        body, i, insn, nxt=nxt, cum=total_cost,
                        start=env_start, end=env_end, final=True,
                    )
                else:
                    # A link point — for a looping trace the terminal
                    # block's link closes the cycle back to the head.
                    self._emit_link(
                        body, i, insn, nxt, total_cost, link,
                        env_start, env_end,
                    )
                i += 1
            if group_start is not None:
                gi0 = i - (len(insns) - group_start)
                self._emit_fused_ret(
                    body, gi0, insns[group_start:],
                    nexts[gi0:], cums[gi0:], ret_link,
                    env_start, env_end,
                )

        pages = sorted({
            page
            for start, end, _, _ in chain
            for page in range(start >> 12, ((end - 1) >> 12) + 1)
        })
        version_checks = " or ".join(
            f"_VG({page}, 0) != {mem._versions.get(page, 0)}" for page in pages
        )
        body = [
            line.replace("__VERSION_CHECK__", version_checks) for line in body
        ]

        name = f"_trace_{head:x}"
        lines = [
            f"def {name}(emu, cpu, mem):",
            "    regs = cpu.regs",
            "    try:",
        ]
        if looping:
            # Iterate in place; the seam charges each completed
            # iteration and bails (eip back at the head) when another
            # full iteration would cross the budget.  Prior iterations
            # are already charged, so the exception handler's
            # prefix accounting stays iteration-local and exact.
            lines.append("        while True:")
            if has_ckpt:
                body.insert(0, "_ck = 0")  # reset each iteration
            lines.extend("            " + line for line in body)
            lines.extend([
                f"            cpu.eip = {head}",
                f"            emu.steps += {i}",
                f"            emu.cycles += {total_cost}",
                f"            if emu.steps + {i} > emu.max_steps:",
                "                return",
            ])
        else:
            if has_ckpt:
                body.insert(0, "_ck = 0")
            lines.extend("        " + line for line in body)
        index_expr = "_NEXTS.index(_eip, _ck)" if has_ckpt else \
            "_NEXTS.index(_eip)"
        lines.extend([
            "    except BaseException:",
            "        _eip = cpu.eip",
            "        if _eip in _NS:",  # false only for async interrupts
            f"            _i = {index_expr}",
            "            emu.steps += _i + 1",
            "            emu.cycles += _CUM[_i]",
            "        raise",
        ])
        if not looping:
            lines.extend([
                f"    emu.steps += {i}",
                f"    emu.cycles += {total_cost}",
            ])
        source = "\n".join(lines)
        namespace = dict(_SHARED_NS)
        namespace.update(
            _I=tuple(insn_objs),
            _H=tuple(handlers),
            _NEXTS=tuple(nexts),
            _NS=frozenset(nexts),
            _CUM=tuple(cums),
            # Per-emulator bindings: the engine is bound to one Memory,
            # whose segment table and version dict are never reassigned.
            _SG=mem._seg_by_page.get,
            _VS=mem._versions,
            _VG=mem._versions.get,
        )
        exec(compile(source, f"<trace {head:#x}>", "exec"), namespace)
        return CompiledTrace(
            head,
            sp,
            n=i,
            fn=namespace[name],
            pages=tuple((page, mem._versions.get(page, 0)) for page in pages),
            # Duplicate occurrences add no new bytes: dedupe so the
            # tamper-watch overlap scan stays proportional to distinct
            # blocks.
            ranges=tuple(dict.fromkeys(
                (start, end) for start, end, _, _ in chain
            )),
            starts=tuple(start for start, _, _, _ in chain),
            epoch=mem.write_epoch,
            mnems=tuple(mnems),
            looping=looping,
        )

    # -- link-point emission -------------------------------------------
    #
    # Side exits return 2 (counted as side_exit_fallbacks by the loop);
    # the block specializer's invalidation aborts return 1.  Both charge
    # the exact executed prefix and leave cpu.eip at the resume point.

    @staticmethod
    def _emit_exit_jcc(body, i, insn, cum) -> None:
        """A jcc whose taken edge leaves the trace: guard + side exit."""
        target = insn.operands[0].target & MASK32
        body.append(f"if {_CC_EXPR[insn.mnemonic[1:]]}:")
        body.append(f"    cpu.eip = {target}")
        body.append(f"    emu.steps += {i + 1}")
        body.append(f"    emu.cycles += {cum}")
        body.append("    return 2")

    def _emit_link(self, body, i, insn, nxt, cum, link, env_start, env_end):
        kind, target = link
        if kind == "jmp":
            return  # static target: the next block's code follows inline
        if kind == "call":
            # Blocks' call emission minus the final eip assignment — the
            # callee's first instruction is emitted right after.
            body.append(f"cpu.eip = {nxt}")
            body.append("_s = (regs[4] - 4) & M")
            body.append("regs[4] = _s")
            self.blocks._store32(body, "_s", str(nxt))
            body.append("_r = emu._ras")
            body.append("if len(_r) >= RASD:")
            body.append("    del _r[0]")
            body.append(f"_r.append({nxt})")
            return
        if kind == "jcc_fall":
            # Linked along the fall-through: the taken edge side-exits.
            self._emit_exit_jcc(body, i, insn, cum)
            return
        if kind == "jcc_taken":
            # Linked along the taken edge: falling through side-exits.
            body.append(f"if not ({_CC_EXPR[insn.mnemonic[1:]]}):")
            body.append(f"    cpu.eip = {nxt}")
            body.append(f"    emu.steps += {i + 1}")
            body.append(f"    emu.cycles += {cum}")
            body.append("    return 2")
            return
        if kind == "ret":
            self._emit_link_ret(body, i, insn, nxt, cum, target)
            return
        # "fall": a size-capped block; plain non-final emission.
        self.blocks._emit_insn(
            body, i, insn, nxt=nxt, cum=cum,
            start=env_start, end=env_end, final=False,
        )

    def _emit_link_ret(self, body, i, insn, nxt, cum, target) -> None:
        """Full genuine ret semantics, then guard the popped target
        against the recorded successor.  RAS and mispredict accounting
        are identical to blocks' ret emission."""
        extra = 4 + (insn.operands[0].value if insn.operands else 0)
        body.append(f"cpu.eip = {nxt}")
        body.append("_s = regs[4]")
        self.blocks._load32(body, "_s", "_t")
        body.append(f"regs[4] = (_s + {extra}) & M")
        body.append("_r = emu._ras")
        body.append("if _r and _r[-1] == _t:")
        body.append("    _r.pop()")
        body.append("else:")
        body.append("    if _r:")
        body.append("        _r.pop()")
        body.append("    emu.ret_mispredicts += 1")
        body.append("    emu.cycles += RMP")
        body.append(f"if _t != {target}:")
        body.append("    cpu.eip = _t")
        body.append(f"    emu.steps += {i + 1}")
        body.append(f"    emu.cycles += {cum}")
        body.append("    return 2")

    def _emit_fused_ret(
        self, body, i0, insns, nxts, cums, link, env_start, env_end
    ) -> None:
        """Fused gadget epilogue: ``pop r32`` run + ``ret`` as one group.

        ROP-chain gadgets are almost entirely ``pop``s followed by
        ``ret`` — consecutive dword loads from the stack.  When the
        whole window lies inside one fast segment, the group needs a
        single segment probe, a single esp writeback and no
        intermediate ``cpu.eip`` updates (nothing in the group can
        fault after the bounds check, so no fault attribution state is
        needed until the final target is known).  Counters stay
        bit-identical: ``fast_loads`` advances by the same ``k+1`` the
        per-instruction loads would have added, and the RAS/mispredict
        dance is unchanged.

        The else-branch replays the exact per-instruction emission, so
        a window that straddles segments (or misses the fast path for
        any reason) executes precisely the cold-path semantics,
        including per-load ``read_u32`` fallbacks and fault handling.
        ``link`` is the guarded ret link, or ``None`` when the group
        ends the trace (terminal ret).
        """
        be = self.blocks
        k = len(insns) - 1
        ret = insns[-1]
        extra = 4 + (ret.operands[0].value if ret.operands else 0)
        target = link[1] if link is not None else None
        body.append("_s = regs[4]")
        body.append("_g = _SG(_s >> 12)")
        body.append(
            f"if _g is not None and (_o := _s - _g.base) + {4 * k} "
            "<= _g.limit:"
        )
        fast = [f"mem.fast_loads += {k + 1}"]
        for idx in range(k):
            off = f" + {4 * idx}" if idx else ""
            fast.append(
                f"regs[{insns[idx].operands[0].code}] = "
                f"_U32U(_g.data, _o{off})[0]"
            )
        fast.append(f"_t = _U32U(_g.data, _o + {4 * k})[0]")
        fast.append(f"regs[4] = (_s + {4 * k + extra}) & M")
        fast.append("cpu.eip = _t")
        fast.append("_r = emu._ras")
        fast.append("if _r and _r[-1] == _t:")
        fast.append("    _r.pop()")
        fast.append("else:")
        fast.append("    if _r:")
        fast.append("        _r.pop()")
        fast.append("    emu.ret_mispredicts += 1")
        fast.append("    emu.cycles += RMP")
        if target is not None:
            fast.append(f"if _t != {target}:")
            fast.append(f"    emu.steps += {i0 + k + 1}")
            fast.append(f"    emu.cycles += {cums[-1]}")
            fast.append("    return 2")
        body.extend("    " + line for line in fast)
        slow = []
        for idx in range(k):
            be._emit_insn(
                slow, i0 + idx, insns[idx], nxt=nxts[idx], cum=cums[idx],
                start=env_start, end=env_end, final=False,
            )
        if target is not None:
            self._emit_link_ret(
                slow, i0 + k, ret, nxts[-1], cums[-1], target
            )
        else:
            be._emit_insn(
                slow, i0 + k, ret, nxt=nxts[-1], cum=cums[-1],
                start=env_start, end=env_end, final=True,
            )
        body.append("else:")
        body.extend("    " + line for line in slow)
