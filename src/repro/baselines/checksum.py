"""Self-checksumming baseline (traditional tamperproofing, Chang et al.).

Guards sum words of code regions and abort on mismatch; regions form a
cross-verifying network (each region also covers the guard code of the
next, cyclically).  This is the class of protection Wurster et al.
break wholesale: guards *read* code through the data view, so an
instruction-view patch sails through — demonstrated by
``tests/integration`` and the attack-matrix benchmark.

Expected sums are patched into the binary post-compilation via marker
immediates; regions cover everything below the guarded main so the
markers never checksum themselves.
"""

from __future__ import annotations

import copy
from typing import List, Optional

from ..corpus.program import Program, call_const
from ..ropc import ir
from ..x86.registers import EAX, EBX, ECX, EDX, ESI

#: Marker immediates replaced with real checksums after compilation.
MARKER_BASE = 0x7E57C0DE
EXIT_TAMPERED = 66


def guard_function() -> ir.IRFunction:
    """__guard(start, nwords, expected): additive word checksum."""
    f = ir.IRFunction("__guard", params=3)
    f.emit(ir.Param(ESI, 0))            # region start
    f.emit(ir.Param(ECX, 1))            # nwords
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("sum"))
    f.emit(ir.Branch("eq", ECX, 0, "check"))
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("sum"))
    f.emit(ir.Label("check"))
    f.emit(ir.Param(EBX, 2))            # expected
    f.emit(ir.Branch("eq", EAX, EBX, "ok"))
    f.emit(ir.Const(EAX, 1))            # exit(EXIT_TAMPERED)
    f.emit(ir.Const(EBX, EXIT_TAMPERED))
    f.emit(ir.Syscall())
    f.emit(ir.Label("ok"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


class ChecksummedProgram:
    """A corpus program wrapped in a checksumming guard network."""

    def __init__(self, program: Program, guards: int = 3):
        self.original = program
        self.guards = guards
        self.program = self._build(program, guards)
        self.image = self.program.image

    @staticmethod
    def _build(program: Program, guards: int) -> Program:
        # main -> main_inner; a fresh main runs the guards first.
        functions: List[ir.IRFunction] = []
        for name, function in program.functions.items():
            clone = ir.IRFunction(
                "main_inner" if name == "main" else name,
                function.params,
                [copy.copy(op) for op in function.body],
            )
            functions.append(clone)

        wrapper = ir.IRFunction("main", params=0)
        for index in range(guards):
            # Region bounds are placeholders too (patched with the real
            # layout after compilation).
            call_const(
                wrapper, "__guard",
                MARKER_BASE ^ (0x10000 + index),     # start marker
                MARKER_BASE ^ (0x20000 + index),     # nwords marker
                MARKER_BASE + index,                 # expected marker
            )
        wrapper.emit(ir.Call(EAX, "main_inner"))
        wrapper.emit(ir.Ret())

        ordered = [guard_function()] + functions + [wrapper]
        guarded = Program(
            program.name + "+csum",
            ordered,
            program.rodata,
            program.data,
            options=program.options,
            candidates=program.candidates,
        )
        ChecksummedProgram._patch_markers(guarded, guards)
        return guarded

    @staticmethod
    def _patch_markers(guarded: Program, guards: int) -> None:
        image = guarded.image
        text = image.text
        main_start = image.symbols["main"].vaddr
        region_words = (main_start - text.vaddr) // 4
        # Cyclic cross-verification: overlapping slices, each also
        # covering the next slice's start (and the guard body, which is
        # at the start of .text).
        slice_words = region_words // guards
        regions = []
        for index in range(guards):
            start = text.vaddr + index * slice_words * 4
            length = min(slice_words + slice_words // 2, region_words - index * slice_words)
            regions.append((start, length))

        data = bytearray(text.data)

        def replace_imm(marker: int, value: int) -> None:
            needle = (marker & 0xFFFFFFFF).to_bytes(4, "little")
            offset = data.find(needle)
            if offset < 0:
                raise ValueError(f"marker {marker:#x} not found")
            data[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

        # Pass 1: patch region bounds.
        for index, (start, length) in enumerate(regions):
            replace_imm(MARKER_BASE ^ (0x10000 + index), start)
            replace_imm(MARKER_BASE ^ (0x20000 + index), length)
        text.data[:] = data

        # Pass 2: compute sums over the final bytes (markers for the
        # expected values live in main, outside every region).
        for index, (start, length) in enumerate(regions):
            region = image.read(start, length * 4)
            total = 0
            for word_index in range(length):
                total = (
                    total
                    + int.from_bytes(
                        region[4 * word_index : 4 * word_index + 4], "little"
                    )
                ) & 0xFFFFFFFF
            data = bytearray(text.data)
            needle = (MARKER_BASE + index).to_bytes(4, "little")
            offset = data.find(needle)
            if offset < 0:
                raise ValueError("expected-value marker not found")
            data[offset : offset + 4] = total.to_bytes(4, "little")
            text.data[:] = data

    def run(self, **kwargs):
        return self.program.run(**kwargs)
