"""The IA-32 emulator.

Executes binary images with one of three engines sharing a single set
of instruction semantics (:mod:`repro.emu.dispatch`):

* the **step engine** interprets one instruction at a time through the
  decode cache — the reference implementation, and the one used when a
  per-step ``trace_hook`` is attached;
* the **block engine** (:mod:`repro.emu.blocks`, the default) compiles
  straight-line instruction runs into cached superblocks and executes
  them without per-instruction dispatch;
* the **trace engine** (:mod:`repro.emu.traces`) profiles block-to-
  block transitions and links hot superblock chains across their exits
  into single compiled traces, hoisting dispatch and coherence checks
  to trace entry; cold paths fall back to the block engine.

ROP chains need no special support: the genuine ``ret`` semantics (pop
eip from the stack) execute them exactly as real hardware would.

The fetch path reads the *instruction view* of memory
(:meth:`repro.emu.memory.Memory.fetch`), while loads/stores use the data
view — this is what makes the Wurster attack expressible.
"""

from __future__ import annotations

import os as _os
from typing import Callable, Optional

from ..binary.image import BinaryImage
from ..x86.decoder import decode
from ..x86.errors import DecodeError
from ..x86.instruction import Instruction
from ..x86.operands import Imm, Mem, Rel
from ..x86.registers import Register
from .cpu import CPUState, MASK32
from .dispatch import (
    CYCLE_COSTS,
    DISPATCH,
    RAS_DEPTH,
    RET_MISPREDICT_PENALTY,
    cost_of,
)
from .errors import (
    BadFetch,
    BadMemoryAccess,
    EmulationError,
    StepLimitExceeded,
)
from .memory import Memory
from .syscalls import ExitProgram, OperatingSystem

#: Return-address sentinel used by ``call_function``; never mapped.
CALL_SENTINEL = 0xDEAD0000

_STACK_TOP_DEFAULT = 0x00C0_0000
_STACK_SIZE_DEFAULT = 0x4_0000

#: Engine names accepted by :class:`EmulatorConfig` and the CLI.
ENGINE_BLOCK = "block"
ENGINE_TRACE = "trace"
ENGINE_STEP = "step"

#: name -> one-line description; the single source of truth for which
#: engines exist.  The CLI derives its ``--engine`` choices and help
#: text from this mapping, and :class:`EmulatorConfig` validates
#: against it, so a new engine registered here is automatically
#: selectable everywhere.
ENGINE_DESCRIPTIONS = {
    ENGINE_BLOCK: "superblock compiler (default)",
    ENGINE_TRACE: "trace-linking compiler (links hot superblock chains "
    "into single compiled traces; falls back to blocks on cold paths)",
    ENGINE_STEP: "single-instruction reference interpreter",
}
ENGINES = tuple(ENGINE_DESCRIPTIONS)
DEFAULT_ENGINE = ENGINE_BLOCK

#: Per-generation bound of the decode cache; two generations are kept,
#: so at most ~2x this many decoded instructions are resident.
DECODE_CACHE_GENERATION = 1 << 15


class EmulatorConfig:
    """Execution-engine configuration, separate from what to run.

    Attributes:
        engine: one of :data:`ENGINES` — ``"block"`` (superblock
            compiler, default), ``"trace"`` (trace-linking compiler) or
            ``"step"`` (single-instruction reference interpreter).
        max_steps: default instruction budget.
        stack_top: default initial esp (grows down).
    """

    __slots__ = ("engine", "max_steps", "stack_top")

    def __init__(
        self,
        engine: str = DEFAULT_ENGINE,
        max_steps: int = 5_000_000,
        stack_top: int = _STACK_TOP_DEFAULT,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        self.max_steps = max_steps
        self.stack_top = stack_top


class TamperWatch:
    """Cycle-stamps the first fetch that executes tampered bytes.

    The attack harness installs one over the byte ranges a tamper
    modified; the emulator stamps step/cycle counters the first time an
    executed instruction overlaps any watched range — the moment the
    corruption becomes architecturally visible (a gadget dispatching
    through modified bytes).  Both engines stamp identically: the step
    engine checks every instruction, and the block engine single-steps
    through any superblock overlapping an unhit watch, so the stamp
    always comes from :meth:`Emulator.step`'s accounting.

    A watch over ranges no execution reaches simply never fires —
    ``hit`` stays ``False`` (e.g. a tamper of pure data such as
    encrypted chain words).
    """

    __slots__ = ("ranges", "hit_steps", "hit_cycles", "hit_eip")

    def __init__(self, ranges):
        #: normalized, non-empty ``(start, end)`` half-open ranges
        self.ranges = tuple(
            (start, end) for start, end in ranges if end > start
        )
        self.hit_steps: Optional[int] = None
        self.hit_cycles: Optional[int] = None
        self.hit_eip: Optional[int] = None

    @property
    def hit(self) -> bool:
        return self.hit_cycles is not None

    def overlaps(self, start: int, end: int) -> bool:
        return any(s < end and start < e for s, e in self.ranges)


class RunResult:
    """Outcome of a completed emulation run."""

    __slots__ = ("exit_status", "steps", "cycles", "stdout", "fault")

    def __init__(self, exit_status, steps, cycles, stdout, fault=None):
        self.exit_status = exit_status
        self.steps = steps
        self.cycles = cycles
        self.stdout = stdout
        self.fault = fault

    @property
    def crashed(self) -> bool:
        return self.fault is not None

    def __repr__(self) -> str:
        if self.crashed:
            return f"<RunResult FAULT {self.fault!r} steps={self.steps}>"
        return (
            f"<RunResult exit={self.exit_status} steps={self.steps} "
            f"cycles={self.cycles}>"
        )


class Emulator:
    """Executes one process image.

    Args:
        image: the program to load; all sections are mapped at their
            virtual addresses.
        os: toy OS instance (fresh one created if omitted).
        stack_top: initial esp (grows down).
        max_steps: instruction budget; exceeded → :class:`StepLimitExceeded`.
        engine: ``"block"`` or ``"step"``; overrides ``config``.
        config: an :class:`EmulatorConfig` supplying defaults.
    """

    def __init__(
        self,
        image: Optional[BinaryImage] = None,
        os: Optional[OperatingSystem] = None,
        stack_top: Optional[int] = None,
        max_steps: Optional[int] = None,
        engine: Optional[str] = None,
        config: Optional[EmulatorConfig] = None,
    ):
        if config is None:
            config = EmulatorConfig()
        if engine is None:
            engine = config.engine
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if stack_top is None:
            stack_top = config.stack_top
        self.memory = Memory()
        self.cpu = CPUState()
        self.os = os if os is not None else OperatingSystem()
        self.image = image
        self.engine = engine
        self.max_steps = max_steps if max_steps is not None else config.max_steps
        self.steps = 0
        self.cycles = 0
        self.ret_mispredicts = 0
        self._ras = []  # shadow return-address stack (branch predictor)
        #: optional per-step callback(eip, instruction) for profilers;
        #: attaching one makes ``run`` fall back to the step engine so
        #: every instruction is observed.
        self.trace_hook: Optional[Callable[[int, Instruction], None]] = None
        # Two-generation decode cache: hits promote entries from the old
        # generation into the young one; when the young generation fills
        # up, the old one is dropped wholesale.  Bounded memory without
        # the periodic re-decode-everything cliff of a full clear.
        self._decode_cache = {}
        self._decode_cache_old = {}
        self._block_engine = None
        self._trace_engine = None
        #: optional HotspotProfiler; installed lazily by run() (see
        #: REPRO_HOTSPOTS) or explicitly by callers.  ``None`` keeps the
        #: per-step hot path free of profiling branches' costs beyond
        #: one identity check.
        self.hotspots = None
        self._hotspots_auto = False
        #: optional TamperWatch stamping the first execution of tampered
        #: bytes; ``None`` keeps the hot path to one identity check.
        self.tamper_watch: Optional[TamperWatch] = None

        self.memory.map_zero(stack_top - _STACK_SIZE_DEFAULT, _STACK_SIZE_DEFAULT)
        self.cpu.esp = stack_top - 64

        if image is not None:
            for section in image.sections:
                self.memory.map(section.vaddr, bytes(section.data))
            self.cpu.eip = image.entry

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------

    @property
    def blocks(self):
        """The lazily-created block engine bound to this emulator."""
        if self._block_engine is None:
            from .blocks import BlockEngine

            self._block_engine = BlockEngine(self)
        return self._block_engine

    @property
    def traces(self):
        """The lazily-created trace engine bound to this emulator."""
        if self._trace_engine is None:
            from .traces import TraceEngine

            self._trace_engine = TraceEngine(self)
        return self._trace_engine

    def _compiled_engine(self):
        """The compiled-execution engine for this run, or ``None``.

        ``None`` means single-step: either the step engine was selected
        or a ``trace_hook`` demands that every instruction be observed.
        """
        if self.trace_hook is not None:
            return None
        if self.engine == ENGINE_BLOCK:
            return self.blocks
        if self.engine == ENGINE_TRACE:
            return self.traces
        return None

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------

    def _effective_address(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.cpu.get(mem.base)
        if mem.index is not None:
            addr += self.cpu.get(mem.index) * mem.scale
        return addr & MASK32

    def _read_operand(self, op, width: int) -> int:
        if isinstance(op, Register):
            return self.cpu.get(op)
        if isinstance(op, Imm):
            if op.width < width:
                return op.signed & ((1 << width) - 1)
            return op.value
        if isinstance(op, Mem):
            addr = self._effective_address(op)
            try:
                if op.width == 8:
                    return self.memory.read_u8(addr)
                if op.width == 16:
                    return self.memory.read_u16(addr)
                return self.memory.read_u32(addr)
            except BadMemoryAccess as exc:
                raise BadMemoryAccess(str(exc), eip=self.cpu.eip) from exc
        raise EmulationError(f"cannot read operand {op!r}", eip=self.cpu.eip)

    def _write_operand(self, op, value: int) -> None:
        if isinstance(op, Register):
            self.cpu.set(op, value)
            return
        if isinstance(op, Mem):
            addr = self._effective_address(op)
            try:
                if op.width == 8:
                    self.memory.write_u8(addr, value)
                elif op.width == 16:
                    self.memory.write_u16(addr, value)
                else:
                    self.memory.write_u32(addr, value)
            except BadMemoryAccess as exc:
                raise BadMemoryAccess(str(exc), eip=self.cpu.eip) from exc
            return
        raise EmulationError(f"cannot write operand {op!r}", eip=self.cpu.eip)

    @staticmethod
    def _width_of(op) -> int:
        if isinstance(op, (Register, Mem, Imm)):
            return op.width
        return 32

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def push(self, value: int) -> None:
        self.cpu.esp = (self.cpu.esp - 4) & MASK32
        self.memory.write_u32(self.cpu.esp, value)

    def pop(self) -> int:
        value = self.memory.read_u32(self.cpu.esp)
        self.cpu.esp = (self.cpu.esp + 4) & MASK32
        return value

    # ------------------------------------------------------------------
    # Fetch/decode
    # ------------------------------------------------------------------

    def _fetch_decode(self, eip: int) -> Instruction:
        # Decode results are cached per address and invalidated via the
        # memory's per-page write counters, so tampering/self-modifying
        # code is still decoded faithfully.
        version = self.memory.page_version(eip)
        cached = self._decode_cache.get(eip)
        if cached is None and self._decode_cache_old:
            cached = self._decode_cache_old.get(eip)
            if cached is not None:  # promote the survivor
                self._decode_cache_store(eip, cached)
        if cached is not None:
            insn, cached_version, end_version = cached
            if cached_version == version and (
                end_version is None
                or end_version == self.memory.page_version(eip + insn.length - 1)
            ):
                return insn

        window = self.memory.fetch_window(eip, 16)
        if not window:
            raise BadFetch(f"fetch from unmapped {eip:#x}", eip=eip)
        try:
            insn = decode(window, 0, address=eip)
        except DecodeError as exc:
            raise BadFetch(
                f"undecodable bytes {window[:8].hex()} at {eip:#x}", eip=eip
            ) from exc
        end_addr = eip + insn.length - 1
        end_version = (
            self.memory.page_version(end_addr) if (end_addr >> 12) != (eip >> 12) else None
        )
        # Unversioned pages (stacks) have no write counter to invalidate
        # on, so code executing from them must be re-decoded every time.
        if self.memory.page_is_versioned(eip) and (
            end_version is None or self.memory.page_is_versioned(end_addr)
        ):
            self._decode_cache_store(eip, (insn, version, end_version))
        return insn

    def _decode_cache_store(self, eip: int, entry) -> None:
        cache = self._decode_cache
        if len(cache) >= DECODE_CACHE_GENERATION:
            self._decode_cache_old = cache
            cache = self._decode_cache = {}
        cache[eip] = entry

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> Instruction:
        """Execute one instruction; returns it."""
        if self.steps >= self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} steps", eip=self.cpu.eip
            )
        eip = self.cpu.eip
        insn = self._fetch_decode(eip)
        self.steps += 1
        self.cycles += cost_of(insn)
        if self.hotspots is not None:
            self.hotspots.record_step(insn.mnemonic)
        watch = self.tamper_watch
        if (
            watch is not None
            and watch.hit_cycles is None
            and watch.overlaps(eip, eip + insn.length)
        ):
            watch.hit_steps = self.steps
            watch.hit_cycles = self.cycles
            watch.hit_eip = eip
        if self.trace_hook is not None:
            self.trace_hook(eip, insn)
        self.cpu.eip = (eip + insn.length) & MASK32
        self._execute(insn)
        return insn

    def run(self) -> RunResult:
        """Run until the program exits (or faults).

        Faults are captured in the result rather than propagated, so the
        attack harness can score "crash" outcomes uniformly.

        Telemetry is recorded only here, at run end — the per-step hot
        path carries no instrumentation, so disabled telemetry costs
        nothing per instruction.
        """
        from ..telemetry import get_metrics, get_tracer

        self._maybe_enable_hotspots(get_metrics())
        start_steps = self.steps
        with get_tracer().span("emulate") as span:
            fault = None
            try:
                compiled = self._compiled_engine()
                if compiled is not None:
                    compiled.run()
                else:
                    while True:
                        self.step()
            except ExitProgram:
                pass
            except EmulationError as exc:
                fault = exc
            metrics = get_metrics()
            metrics.counter("emu.runs").inc()
            metrics.counter("emu.instructions").inc(self.steps - start_steps)
            metrics.counter("emu.cycles").inc(self.cycles)
            metrics.counter("emu.ret_mispredicts").inc(self.ret_mispredicts)
            if fault is not None:
                metrics.counter(
                    f"emu.faults.{type(fault).__name__}"
                ).inc()
            self._record_engine_metrics(metrics)
            span.set_attribute("engine", self.engine)
            span.set_attribute("steps", self.steps - start_steps)
            span.set_attribute("cycles", self.cycles)
            if fault is not None:
                span.set_attribute("fault", type(fault).__name__)
                span.set_attribute(
                    "fault_eip", fault.eip if fault.eip is not None else None
                )
        return RunResult(
            exit_status=self.os.exit_status,
            steps=self.steps,
            cycles=self.cycles,
            stdout=bytes(self.os.stdout),
            fault=fault,
        )

    def _maybe_enable_hotspots(self, metrics) -> None:
        """Install a hot-spot profiler per the ``REPRO_HOTSPOTS`` env.

        ``auto`` (default) samples whenever the metrics registry is
        enabled; ``1`` forces sampling on and ``0`` forces it off (the
        throughput benchmarks set ``0`` so profiling never skews their
        numbers).  Never replaces a profiler a caller installed.
        """
        if self.hotspots is not None:
            return
        mode = _os.environ.get("REPRO_HOTSPOTS", "auto")
        if mode == "1" or (mode != "0" and metrics.enabled):
            from .hotspots import HotspotProfiler

            self.hotspots = HotspotProfiler()
            self._hotspots_auto = True

    def _record_engine_metrics(self, metrics) -> None:
        be = self._block_engine
        if be is not None:
            metrics.counter("emu.blocks.compiled").inc(be.compiled)
            metrics.counter("emu.blocks.hits").inc(be.hits)
            metrics.counter("emu.blocks.epoch_hits").inc(be.epoch_hits)
            metrics.counter("emu.blocks.page_revalidations").inc(
                be.page_revalidations
            )
            metrics.counter("emu.blocks.invalidated").inc(be.invalidated)
            metrics.counter("emu.blocks.write_aborts").inc(be.write_aborts)
        te = self._trace_engine
        if te is not None:
            metrics.counter("emu.traces.hits").inc(te.hits)
            metrics.counter("emu.traces.epoch_hits").inc(te.epoch_hits)
            metrics.counter("emu.traces.page_revalidations").inc(
                te.page_revalidations
            )
            metrics.counter("emu.traces.invalidated").inc(te.invalidated)
            metrics.counter("emu.traces.write_aborts").inc(te.write_aborts)
            # trace-level sampling, mirrored under emu.hot.trace.* so the
            # stats dashboard groups it with the hot-spot report.
            metrics.counter("emu.hot.trace.compiled").inc(te.compiled)
            metrics.counter("emu.hot.trace.side_exit_fallbacks").inc(
                te.side_exit_fallbacks
            )
            metrics.counter("emu.hot.trace.retired").inc(te.retired)
        hot = self.hotspots
        if hot is not None:
            # One labeled family per hot-spot dimension: the mnemonic /
            # address is a label, not a name suffix, so Prometheus sees
            # one family and the cardinality guard bounds the series.
            for mnemonic, count in hot.top_mnemonics(16):
                metrics.counter(
                    "emu.hot.mnemonic", labels={"mnemonic": mnemonic}
                ).inc(count)
            for start, execs in hot.top_blocks(16):
                metrics.counter(
                    "emu.hot.block", labels={"addr": f"{start:#010x}"}
                ).inc(execs)
            for head, execs in hot.top_traces(16):
                metrics.counter(
                    "emu.hot.trace", labels={"head": f"{head:#010x}"}
                ).inc(execs)
            if self._hotspots_auto:
                # Counts were flushed into the registry; clear so
                # repeated run() calls don't double-count.  A profiler
                # installed by the caller is left intact for them.
                hot.clear()
        mem = self.memory
        loads = mem.fast_loads + mem.slow_loads
        stores = mem.fast_stores + mem.slow_stores
        metrics.counter("emu.mem.fast_loads").inc(mem.fast_loads)
        metrics.counter("emu.mem.slow_loads").inc(mem.slow_loads)
        metrics.counter("emu.mem.fast_stores").inc(mem.fast_stores)
        metrics.counter("emu.mem.slow_stores").inc(mem.slow_stores)
        if loads:
            metrics.gauge("emu.mem.fast_load_ratio").set(mem.fast_loads / loads)
        if stores:
            metrics.gauge("emu.mem.fast_store_ratio").set(mem.fast_stores / stores)

    def call_function(self, vaddr: int, args=(), max_steps: Optional[int] = None):
        """Call a function at ``vaddr`` with cdecl int args; returns eax.

        Raises on fault (unlike :meth:`run`) so unit tests see precise
        errors.
        """
        if max_steps is not None:
            self.max_steps = self.steps + max_steps
        for arg in reversed(args):
            self.push(arg & MASK32)
        self.push(CALL_SENTINEL)
        self.cpu.eip = vaddr
        compiled = self._compiled_engine()
        if compiled is not None:
            compiled.run(stop=CALL_SENTINEL)
        else:
            while self.cpu.eip != CALL_SENTINEL:
                self.step()
        # Caller cleans up arguments, as with cdecl.
        self.cpu.esp = (self.cpu.esp + 4 * len(args)) & MASK32
        return self.cpu.eax

    # ------------------------------------------------------------------
    # Instruction semantics (shared table; see repro.emu.dispatch)
    # ------------------------------------------------------------------

    def _execute(self, insn: Instruction) -> None:
        handler = DISPATCH.get(insn.mnemonic)
        if handler is None:
            raise EmulationError(
                f"unimplemented mnemonic {insn.mnemonic!r}", eip=self.cpu.eip
            )
        handler(self, insn)

    def _predict_return(self, target: int) -> None:
        """Charge the return-predictor penalty on RAS mismatch."""
        if self._ras and self._ras[-1] == target:
            self._ras.pop()
            return
        if self._ras:
            self._ras.pop()
        self.ret_mispredicts += 1
        self.cycles += RET_MISPREDICT_PENALTY

    def _branch_target(self, op) -> int:
        if isinstance(op, Rel):
            # Rel targets were resolved against the decode address, which
            # is the current instruction — eip already points past it.
            return op.target & MASK32
        return self._read_operand(op, 32)


def run_image(
    image: BinaryImage,
    stdin: bytes = b"",
    debugger_attached: bool = False,
    max_steps: int = 5_000_000,
    engine: Optional[str] = None,
    config: Optional[EmulatorConfig] = None,
) -> RunResult:
    """Convenience: load ``image`` into a fresh emulator and run it."""
    os = OperatingSystem(stdin=stdin, debugger_attached=debugger_attached)
    emulator = Emulator(
        image, os=os, max_steps=max_steps, engine=engine, config=config
    )
    return emulator.run()
