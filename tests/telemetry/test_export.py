"""Exporters: Chrome trace JSON, Prometheus text, artifact sniffing,
the ``repro stats`` renderer, and cross-tracer span ingestion."""

import json

import pytest

from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    load_artifact,
    prometheus_text,
    render_stats,
    write_chrome_trace,
    write_prometheus,
)


def _traced():
    tracer = Tracer()
    with tracer.span("protect", program="wget"):
        with tracer.span("find_gadgets"):
            pass
    return tracer


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------


def test_chrome_trace_emits_valid_complete_events():
    payload = chrome_trace(_traced().to_events(), pid=42)
    events = payload["traceEvents"]
    # one process_name metadata event, then one X event per span
    assert events[0]["ph"] == "M" and events[0]["name"] == "process_name"
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in complete} == {"protect", "find_gadgets"}
    for event in events:
        assert "ph" in event and "pid" in event and "tid" in event
        assert event["pid"] == 42
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert "span_id" in event["args"]
    by_name = {e["name"]: e for e in complete}
    assert (
        by_name["find_gadgets"]["args"]["parent_id"]
        == by_name["protect"]["args"]["span_id"]
    )
    assert by_name["protect"]["args"]["program"] == "wget"
    # ok spans omit status noise from args
    assert "status" not in by_name["protect"]["args"]


def test_chrome_trace_flags_error_status():
    tracer = Tracer()
    try:
        with tracer.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    payload = chrome_trace(tracer.to_events())
    event = [e for e in payload["traceEvents"] if e["ph"] == "X"][0]
    assert event["args"]["status"] == "error"


def test_write_chrome_trace_file_is_loadable(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_traced(), str(path))
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in payload["traceEvents"])


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def test_prometheus_text_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.counter("emu.instructions").inc(1000)
    registry.gauge("pipeline.jobs").set(2.0)
    hist = registry.histogram("protect.chain_words", buckets=(1, 10))
    for v in (0.5, 5, 500):
        hist.observe(v)
    text = prometheus_text(registry)
    lines = text.splitlines()
    # counters get _total; dots are sanitized to underscores
    assert "# TYPE emu_instructions_total counter" in lines
    assert "emu_instructions_total 1000" in lines
    assert "pipeline_jobs 2.0" in lines
    # histogram buckets are cumulative, unlike the internal counts
    assert 'protect_chain_words_bucket{le="1.0"} 1' in lines
    assert 'protect_chain_words_bucket{le="10.0"} 2' in lines
    assert 'protect_chain_words_bucket{le="+Inf"} 3' in lines
    assert "protect_chain_words_count 3" in lines
    assert any(l.startswith("protect_chain_words_sum ") for l in lines)
    assert any(l.startswith("protect_chain_words_stddev ") for l in lines)


def test_prometheus_text_accepts_exported_samples_dict():
    registry = MetricsRegistry()
    registry.counter("a").inc(7)
    assert prometheus_text(registry.to_dict()) == prometheus_text(registry)


def test_prometheus_text_rejects_unknown_sample_type():
    with pytest.raises(ValueError):
        prometheus_text({"weird": {"type": "summary", "value": 1}})


def test_write_prometheus(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc()
    path = tmp_path / "m.prom"
    write_prometheus(registry, str(path))
    assert "c_total 1" in path.read_text()


# ----------------------------------------------------------------------
# Artifact sniffing
# ----------------------------------------------------------------------


def test_load_artifact_sniffs_all_four_kinds(tmp_path):
    registry = MetricsRegistry()
    registry.counter("emu.instructions").inc(5)
    metrics_path = tmp_path / "metrics.json"
    registry.write_json(str(metrics_path))

    tracer = _traced()
    trace_path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(trace_path))

    chrome_path = tmp_path / "chrome.json"
    write_chrome_trace(tracer, str(chrome_path))

    rec = FlightRecorder()
    rec.record("protect", program="wget")
    journal_path = tmp_path / "journal.jsonl"
    rec.write_jsonl(str(journal_path))

    assert load_artifact(str(metrics_path))[0] == "metrics"
    assert load_artifact(str(trace_path))[0] == "trace"
    assert load_artifact(str(chrome_path))[0] == "chrome"
    kind, data = load_artifact(str(journal_path))
    assert kind == "journal"
    assert any(r.get("type") == "journal_summary" for r in data)


def test_load_artifact_rejects_empty_and_garbage(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text("")
    with pytest.raises(ValueError):
        load_artifact(str(empty))
    garbage = tmp_path / "odd.jsonl"
    garbage.write_text('{"type": "mystery"}\n')
    with pytest.raises(ValueError):
        load_artifact(str(garbage))


# ----------------------------------------------------------------------
# The stats renderer
# ----------------------------------------------------------------------


def _engine_samples():
    registry = MetricsRegistry()
    registry.counter("emu.blocks.compiled").inc(10)
    registry.counter("emu.blocks.hits").inc(990)
    registry.counter("emu.blocks.epoch_hits").inc(900)
    registry.counter("emu.blocks.page_revalidations").inc(90)
    registry.counter("emu.blocks.invalidated").inc(3)
    registry.counter("emu.blocks.write_aborts").inc(1)
    registry.counter("emu.instructions").inc(12345)
    registry.counter("emu.cycles").inc(23456)
    for mnemonic, count in (("mov", 500), ("add", 300), ("ret", 200)):
        registry.counter("emu.hot.mnemonic", labels={"mnemonic": mnemonic}).inc(count)
    registry.counter("emu.hot.block", labels={"addr": "0x00001000"}).inc(42)
    return registry.to_dict()


def test_render_stats_metrics_dashboard():
    out = render_stats("metrics", _engine_samples())
    assert "engine block cache" in out
    assert "hit rate 99.00%" in out  # 990 / (990 + 10)
    assert "tier-1 epoch fast-path" in out and "900" in out
    assert "tier-2 page revalidated" in out
    assert "tier-2 page-version" in out
    assert "tier-3 in-block store" in out
    assert "hottest mnemonics (top 10)" in out
    # ranked by count, shares against the sampled total
    assert out.index("mov") < out.index("add") < out.index("ret")
    assert "50.00%" in out
    assert "hottest blocks (executions)" in out
    assert "run totals" in out and "12,345" in out


def test_render_stats_metrics_without_engine_samples():
    samples = {"misc": {"type": "counter", "name": "misc", "value": 1}}
    assert "no engine/chain samples" in render_stats("metrics", samples)


def test_render_stats_trace_and_journal_and_chrome(tmp_path):
    tracer = _traced()
    out = render_stats("trace", tracer.to_events())
    assert "spans: 2" in out and "protect" in out

    rec = FlightRecorder()
    for _ in range(3):
        rec.record("chain_dispatch", gadget=0x1000)
    rec.record("block_compile", start=0x2000)
    journal_path = tmp_path / "j.jsonl"
    rec.write_jsonl(str(journal_path))
    out = render_stats("journal", load_artifact(str(journal_path))[1])
    assert "journal: 4 events retained" in out
    assert "chain_dispatch" in out and "block_compile" in out

    out = render_stats("chrome", chrome_trace(tracer.to_events()))
    assert "chrome trace: 2 complete events" in out

    with pytest.raises(ValueError):
        render_stats("mystery", {})


# ----------------------------------------------------------------------
# Tracer.ingest: adopting worker spans
# ----------------------------------------------------------------------


def test_ingest_remaps_ids_and_reparents_roots():
    worker = Tracer()
    with worker.span("protect", program="gzip"):
        with worker.span("find_gadgets"):
            pass
    parent = Tracer()
    with parent.span("pipeline.program") as program_span:
        adopted = parent.ingest(worker.to_events(), parent_id=program_span.span_id)

    assert [s.name for s in adopted] == ["find_gadgets", "protect"]
    by_name = {s.name: s for s in parent.spans}
    # the worker's root hangs off the parent's span...
    assert by_name["protect"].parent_id == by_name["pipeline.program"].span_id
    # ...and the worker-internal nesting is preserved under fresh ids
    assert by_name["find_gadgets"].parent_id == by_name["protect"].span_id
    ids = [s.span_id for s in parent.spans]
    assert len(ids) == len(set(ids)), "ingest must not collide span ids"
    assert by_name["protect"].attributes == {"program": "gzip"}


def test_ingest_preserves_timing_and_status():
    worker = Tracer()
    try:
        with worker.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    exported = worker.to_events()
    parent = Tracer()
    (span,) = parent.ingest(exported)
    assert span.status == "error"
    assert span.parent_id is None  # no parent_id given: stays a root
    assert span.start_wall == exported[0]["start_ts"]
    assert span.duration == pytest.approx(exported[0]["duration_s"])


def test_ingest_on_disabled_tracer_is_noop():
    worker = Tracer()
    with worker.span("work"):
        pass
    disabled = Tracer(enabled=False)
    assert disabled.ingest(worker.to_events()) == []
    assert disabled.spans == []


def test_ingest_skips_non_span_records():
    parent = Tracer()
    adopted = parent.ingest([{"type": "event", "kind": "protect"}])
    assert adopted == []
