"""Parallel, content-addressed-cached protection pipeline.

Public surface::

    from repro.pipeline import protect_all, protect_one

    results = protect_all(jobs=4, cache_dir=".parallax-cache")
    for r in results:
        print(r.name, r.elapsed, r.cache_hit)

Cache configuration lives in :mod:`repro.cache` and is re-exported
here for convenience; the CLI's ``protect-all`` command is a thin
wrapper over :func:`protect_all`.
"""

from ..cache import (
    cache_manager,
    cache_session,
    configure_cache,
    content_key,
    get_cache,
    reset_caches,
)
from .pool import mp_context, run_tasks, worker_init
from .runner import PipelineResult, config_for_program, protect_all, protect_one

__all__ = [
    "PipelineResult",
    "config_for_program",
    "protect_all",
    "protect_one",
    "mp_context",
    "run_tasks",
    "worker_init",
    "cache_manager",
    "cache_session",
    "configure_cache",
    "content_key",
    "get_cache",
    "reset_caches",
]
