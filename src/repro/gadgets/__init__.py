"""Gadget machinery: discovery, semantic classification, the gadget mapping."""

from .catalog import GadgetCatalog
from .finder import (
    FINDER_VERSION,
    MAX_GADGET_INSNS,
    MAX_LOOKBACK_BYTES,
    decode_gadget_at,
    find_gadgets,
    find_gadgets_in_bytes,
    find_gadgets_in_bytes_cached,
    reference_find_gadgets,
    reference_find_gadgets_in_bytes,
)
from .semantics import classify
from .types import COMPILER_USABLE, Gadget, GadgetKind, GadgetOp

__all__ = [
    "GadgetCatalog",
    "FINDER_VERSION",
    "MAX_GADGET_INSNS",
    "MAX_LOOKBACK_BYTES",
    "decode_gadget_at",
    "find_gadgets",
    "find_gadgets_in_bytes",
    "find_gadgets_in_bytes_cached",
    "reference_find_gadgets",
    "reference_find_gadgets_in_bytes",
    "classify",
    "COMPILER_USABLE",
    "Gadget",
    "GadgetKind",
    "GadgetOp",
]
