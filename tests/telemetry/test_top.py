"""`repro top`: journal tailing and dashboard rendering."""

import io
import json

from repro.telemetry.top import JournalTail, TopDashboard, run_top


def _event(kind, ts, **fields):
    return {"type": "event", "seq": 0, "ts": ts, "kind": kind, **fields}


def _write_lines(path, records, partial=None):
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
        if partial is not None:
            fh.write(partial)


# ----------------------------------------------------------------------
# JournalTail
# ----------------------------------------------------------------------


def test_tail_reads_incrementally(tmp_path):
    path = str(tmp_path / "journal.ndjson")
    tail = JournalTail(path)
    assert tail.poll() == []  # missing file is fine
    _write_lines(path, [_event("protect", 0.1)])
    assert [r["kind"] for r in tail.poll()] == ["protect"]
    assert tail.poll() == []
    with open(path, "a") as fh:
        fh.write(json.dumps(_event("attack", 0.2)) + "\n")
    assert [r["kind"] for r in tail.poll()] == ["attack"]


def test_tail_holds_partial_trailing_line(tmp_path):
    path = str(tmp_path / "journal.ndjson")
    full = json.dumps(_event("attack", 0.2))
    _write_lines(path, [_event("protect", 0.1)], partial=full[:10])
    tail = JournalTail(path)
    assert [r["kind"] for r in tail.poll()] == ["protect"]
    with open(path, "a") as fh:
        fh.write(full[10:] + "\n")
    assert [r["kind"] for r in tail.poll()] == ["attack"]


def test_tail_restarts_after_truncation(tmp_path):
    path = str(tmp_path / "journal.ndjson")
    _write_lines(path, [_event("protect", 0.1), _event("protect", 0.2)])
    tail = JournalTail(path)
    assert len(tail.poll()) == 2
    _write_lines(path, [_event("attack", 0.3)])  # rewritten, smaller
    assert [r["kind"] for r in tail.poll()] == ["attack"]


# ----------------------------------------------------------------------
# TopDashboard
# ----------------------------------------------------------------------


def test_dashboard_renders_throughput_and_engine_mix():
    dash = TopDashboard(window_seconds=10)
    for i in range(4):
        dash.feed(_event("protect", 0.2 + i, seconds=0.5))
    dash.feed(_event("block_compile", 1.0, start=0x1000))
    dash.feed(_event("block_compile", 1.1, start=0x1000))
    frame = dash.render()
    assert "protect" in frame and "4" in frame
    assert "engine mix" in frame
    assert "block_compile" in frame
    assert "p50" in frame  # seconds value window rendered
    assert "hot blocks" in frame and "0x1000 x2" in frame


def test_dashboard_cache_hit_rate_from_pipeline_tasks():
    dash = TopDashboard()
    dash.feed(_event("pipeline.task", 0.1, program="wget", cache_hit=True))
    dash.feed(_event("pipeline.task", 0.2, program="gzip", cache_hit=False))
    frame = dash.render()
    assert "pipeline cache" in frame
    assert "50.0%" in frame


def test_dashboard_hot_traces_preferred_over_blocks():
    dash = TopDashboard()
    dash.feed(_event("trace_compile", 0.1, head=0x2000))
    dash.feed(_event("block_compile", 0.2, start=0x1000))
    frame = dash.render()
    assert "hot traces" in frame and "0x2000 x1" in frame
    assert "hot blocks" not in frame


def test_dashboard_context_lanes():
    dash = TopDashboard()
    dash.feed(_event("protect", 0.1, ctx={"request": "r1"}))
    dash.feed(_event("protect", 0.2, ctx={"request": "r2"}))
    frame = dash.render()
    assert "contexts" in frame
    assert "{request=r1}" in frame and "{request=r2}" in frame


def test_dashboard_reports_finished_run():
    dash = TopDashboard()
    dash.feed(_event("protect", 0.1))
    dash.feed({"type": "journal_summary", "recorded": 1, "dropped": 5})
    assert dash.finished is not None
    assert "run finished" in dash.render()
    assert "5 events dropped" in dash.render()


def test_dashboard_empty_waits():
    assert "waiting for events" in TopDashboard().render()


# ----------------------------------------------------------------------
# run_top
# ----------------------------------------------------------------------


def test_run_top_once_renders_current_content(tmp_path):
    path = str(tmp_path / "journal.ndjson")
    _write_lines(
        path,
        [
            _event("protect", 0.1, seconds=0.2),
            _event("attack", 0.3, detected=True),
            {"type": "journal_summary", "recorded": 2, "dropped": 0},
        ],
    )
    out = io.StringIO()
    dash = run_top(path, once=True, out=out)
    text = out.getvalue()
    assert dash.events_seen == 2
    assert "protect" in text and "attack" in text
    assert "\x1b" not in text  # --once never clears the screen


def test_run_top_loop_stops_when_run_finishes(tmp_path):
    path = str(tmp_path / "journal.ndjson")
    _write_lines(
        path,
        [
            _event("protect", 0.1),
            {"type": "journal_summary", "recorded": 1, "dropped": 0},
        ],
    )
    out = io.StringIO()
    dash = run_top(path, interval=0.01, duration=5.0, out=out, clear=False)
    assert dash.finished is not None
    assert "run finished" in out.getvalue()
