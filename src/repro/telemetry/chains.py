"""Chain-execution tracing: which gadget did the chain die in?

A tampered gadget makes a verification chain malfunction, but the
malfunction (crash, wrong output) surfaces far from its cause.  The
:class:`ChainExecutionTracer` hooks the emulator's per-step callback
and records every entry into a known chain gadget — address, mnemonic
sequence, esp/eip at entry, and whether the gadget is
overlap-preferred — so a failing run can be walked backwards to the
exact gadget whose bytes were corrupted.

Installation is guarded: a disabled tracer never touches
``Emulator.trace_hook``, so the per-step fast path stays hook-free.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Set

from .metrics import _ensure_parent_dir
from .recorder import get_recorder

__all__ = ["ChainStep", "ChainExecutionTracer", "trace_chain_run"]


class ChainStep:
    """One recorded gadget entry during chain execution."""

    __slots__ = ("seq", "address", "esp", "eip", "preferred", "cycles", "mnemonics")

    def __init__(
        self,
        seq: int,
        address: int,
        esp: int,
        eip: int,
        preferred: bool,
        cycles: Optional[int] = None,
    ):
        self.seq = seq
        self.address = address
        self.esp = esp
        self.eip = eip
        self.preferred = preferred
        #: emulator cycle counter at gadget entry (detection-latency axis)
        self.cycles = cycles
        self.mnemonics: List[str] = []

    def to_dict(self) -> dict:
        return {
            "type": "chain_step",
            "seq": self.seq,
            "gadget": self.address,
            "esp": self.esp,
            "eip": self.eip,
            "preferred": self.preferred,
            "cycles": self.cycles,
            "mnemonics": list(self.mnemonics),
        }

    def __repr__(self) -> str:
        star = "*" if self.preferred else ""
        return (
            f"<ChainStep #{self.seq} @{self.address:#x}{star} "
            f"[{'; '.join(self.mnemonics)}]>"
        )


class ChainExecutionTracer:
    """Records gadget-granular execution of one or more ROP chains.

    Args:
        gadget_addresses: entry addresses of the chain's gadgets (e.g.
            ``ChainRecord.gadget_addresses``).
        preferred: addresses of overlap-preferred gadgets (e.g.
            ``GadgetCatalog.preferred``).
        gadget_spans: optional ``{address: end}`` map; with it, a fault
            eip inside a gadget body (not just at its entry) is
            attributed to that gadget.
        max_steps: recording cap; the newest entries are kept by
            wrapping (the *end* of a dying chain is the interesting
            part).
        enabled: disabled tracers refuse installation and record
            nothing.
    """

    def __init__(
        self,
        gadget_addresses: Iterable[int],
        preferred: Iterable[int] = (),
        gadget_spans: Optional[Dict[int, int]] = None,
        max_steps: int = 100_000,
        enabled: bool = True,
    ):
        self.gadget_set: Set[int] = set(gadget_addresses)
        self.preferred: Set[int] = set(preferred)
        self.gadget_spans = dict(gadget_spans or {})
        self.max_steps = max_steps
        self.enabled = enabled
        self.steps: List[ChainStep] = []
        self.dropped = 0
        self.instructions_seen = 0
        self._current: Optional[ChainStep] = None
        self._seq = 0
        self._emulator = None

    @classmethod
    def for_record(cls, record, preferred: Iterable[int] = (), **kwargs):
        """Build a tracer for one :class:`~repro.core.report.ChainRecord`."""
        return cls(record.gadget_addresses, preferred=preferred, **kwargs)

    # -- hook -----------------------------------------------------------

    def install(self, emulator) -> bool:
        """Attach to ``emulator.trace_hook`` (chaining any existing hook).

        Returns False without touching the emulator when disabled.
        """
        if not self.enabled:
            return False
        self._emulator = emulator
        previous = emulator.trace_hook
        if previous is None:
            emulator.trace_hook = self.on_step
        else:
            def chained(eip, insn, _prev=previous, _self=self.on_step):
                _prev(eip, insn)
                _self(eip, insn)

            emulator.trace_hook = chained
        return True

    def on_step(self, eip: int, insn) -> None:
        self.instructions_seen += 1
        if eip in self.gadget_set:
            emulator = self._emulator
            esp = emulator.cpu.esp if emulator is not None else 0
            cycles = emulator.cycles if emulator is not None else None
            step = ChainStep(
                self._seq,
                address=eip,
                esp=esp,
                eip=eip,
                preferred=eip in self.preferred,
                cycles=cycles,
            )
            self._seq += 1
            self._current = step
            if len(self.steps) >= self.max_steps:
                self.steps.pop(0)
                self.dropped += 1
            self.steps.append(step)
            recorder = get_recorder()
            if recorder.enabled:
                recorder.record(
                    "chain_dispatch",
                    gadget=eip,
                    esp=esp,
                    seq=step.seq,
                    preferred=step.preferred,
                )
        if self._current is not None:
            self._current.mnemonics.append(insn.mnemonic)
            if insn.is_return:
                self._current = None

    # -- analysis -------------------------------------------------------

    @property
    def last_step(self) -> Optional[ChainStep]:
        return self.steps[-1] if self.steps else None

    def gadget_containing(self, eip: int) -> Optional[int]:
        """Gadget whose body covers ``eip``, if spans are known."""
        if eip in self.gadget_set:
            return eip
        for address, end in self.gadget_spans.items():
            if address <= eip < end:
                return address
        return None

    def corrupted_gadget(self, fault=None) -> Optional[int]:
        """Best guess at the gadget whose corruption killed the chain.

        A fault eip inside a known gadget wins; otherwise the last
        gadget the chain entered is blamed — by the time execution
        leaves the known gadget set for garbage, the gadget that
        dispatched there is the corrupted one.
        """
        eip = getattr(fault, "eip", None)
        if eip is not None:
            located = self.gadget_containing(eip)
            if located is not None:
                return located
        step = self.last_step
        return step.address if step else None

    def divergence(self, expected: Iterable[int]) -> Optional[int]:
        """Index of the first executed gadget differing from ``expected``
        (None when the executed prefix matches)."""
        expected = list(expected)
        for index, step in enumerate(self.steps):
            if index >= len(expected) or step.address != expected[index]:
                return index
        return None

    def divergence_cycles(self, expected: Iterable[int]) -> Optional[int]:
        """Cycle stamp of the first divergent gadget dispatch.

        This is the earliest point the chain's behaviour observably left
        the expected gadget sequence — the tightest upper bound on when
        tampering corrupted the dispatch.  ``None`` when the executed
        prefix matches ``expected``.
        """
        index = self.divergence(expected)
        if index is None:
            return None
        return self.steps[index].cycles

    def summary(self) -> dict:
        return {
            "type": "chain_trace",
            "gadgets_known": len(self.gadget_set),
            "steps_recorded": len(self.steps),
            "steps_dropped": self.dropped,
            "instructions_seen": self.instructions_seen,
            "preferred_hits": sum(1 for s in self.steps if s.preferred),
            "last_gadget": self.last_step.address if self.last_step else None,
        }

    # -- export ---------------------------------------------------------

    def to_events(self) -> List[dict]:
        events = [step.to_dict() for step in self.steps]
        events.append(self.summary())
        return events

    def write_jsonl(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            for event in self.to_events():
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")

    def __repr__(self) -> str:
        return (
            f"<ChainExecutionTracer {len(self.gadget_set)} gadgets, "
            f"{len(self.steps)} steps>"
        )


def trace_chain_run(
    image,
    record,
    preferred: Iterable[int] = (),
    code_patches: Iterable = (),
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
):
    """Run ``image`` with a chain tracer attached to ``record``'s gadgets.

    ``code_patches`` are applied to the instruction view only (the
    Wurster attack shape); use pre-patched images for static tampering.
    Returns ``(RunResult, ChainExecutionTracer)``.
    """
    from ..emu import Emulator, OperatingSystem

    os = OperatingSystem(debugger_attached=debugger_attached)
    emulator = Emulator(image, os=os, max_steps=max_steps)
    for patch in code_patches:
        emulator.memory.patch_code_view(patch.vaddr, patch.new)
    tracer = ChainExecutionTracer.for_record(record, preferred=preferred)
    tracer.install(emulator)
    result = emulator.run()

    from . import get_metrics  # late: avoid import cycle at module load

    metrics = get_metrics()
    metrics.counter("chains.traced").inc()
    if result.crashed:
        culprit = tracer.corrupted_gadget(result.fault)
        if culprit is not None:
            metrics.counter("chains.corruptions_attributed").inc()
            recorder = get_recorder()
            if recorder.enabled:
                recorder.record(
                    "chain_corruption",
                    gadget=culprit,
                    fault=type(result.fault).__name__,
                    fault_eip=getattr(result.fault, "eip", None),
                    steps_recorded=len(tracer.steps),
                )
    return result, tracer
