"""Gadget discovery over executable sections.

ROP gadgets need not start on instruction boundaries: any byte offset
whose decode reaches a return within the length bound is a gadget
(§II-A: "gadgets ... can also be unaligned instruction sequences
embedded in the normal instruction stream").  The finder therefore scans
*every* return opcode in executable sections and walks backwards over
all candidate start offsets.

Two implementations live here:

* :func:`find_gadgets_in_bytes` — the production scanner.  It locates
  every ret-family byte in a single pass over the buffer, then resolves
  each candidate start offset through a per-buffer **memo table**
  mapping ``offset -> (decoded insn, instructions-to-ret) | dead``.
  x86 decoding is deterministic per offset, so the instruction chain
  from any offset is unique; a decode at offset ``i`` that lands on an
  already-resolved offset ``j`` stops immediately and splices the
  cached tail instead of re-decoding it.  Every offset in the buffer is
  decoded **at most once** per scan, no matter how many overlapping
  ret windows cover it.  Telemetry counters are accumulated locally and
  published in one batch per buffer.

* :func:`reference_find_gadgets_in_bytes` — the original exhaustive
  implementation (full chain re-decode per candidate offset), kept
  alive forever as the equivalence oracle for the differential property
  suite and the ``bench_gadget_finder`` benchmark.

Both produce identical gadget sets and identical telemetry counter
values; ``tests/properties/test_finder_differential.py`` holds that
equivalence under Hypothesis-generated adversarial buffers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binary.image import BinaryImage
from ..x86.decoder import decode
from ..x86.errors import DecodeError
from ..x86.opcodes import (
    RET_IMM16_OPCODE,
    RET_OPCODE,
    RETF_IMM16_OPCODE,
    RETF_OPCODE,
)
from ..telemetry import get_metrics, get_tracer
from .semantics import classify
from .types import Gadget

#: Paper §VII-A: "we limited the length of the considered gadgets to six
#: instructions, as longer gadgets are difficult to use in practical ROP
#: chains."
MAX_GADGET_INSNS = 6

#: How far before a return we look for gadget start offsets.  Six
#: instructions of at most ~7 bytes each is generous at 40.
MAX_LOOKBACK_BYTES = 40

#: Bump when discovery or classification semantics change, so cached
#: finder output from an older algorithm can never be replayed.
#: Version history: 1 = exhaustive per-offset re-decode; 2 = memoized
#: single-pass scanner (identical output, new implementation).
FINDER_VERSION = 2

_NEAR_RETS = (RET_OPCODE, RET_IMM16_OPCODE)
_FAR_RETS = (RETF_OPCODE, RETF_IMM16_OPCODE)
_IMM16_RETS = (RET_IMM16_OPCODE, RETF_IMM16_OPCODE)

#: Memo-table terminal state: the decode chain from this offset can
#: never reach a return (decode error, control flow, or buffer overrun).
_DEAD = object()


def decode_gadget_at(
    data: bytes,
    offset: int,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
) -> Optional[Gadget]:
    """Try to decode a gadget starting at ``offset`` in ``data``.

    The decode must reach a return instruction within ``max_insns``
    instructions; the sequence is then classified.  Returns ``None`` if
    no valid gadget starts here.

    Buffer bounds are checked *before* an instruction is accepted: a
    gadget whose return terminates exactly at the buffer end is valid,
    while any instruction extending past the end kills the candidate —
    even if a (hypothetically permissive) decoder produced one.
    """
    instructions = []
    pos = offset
    size = len(data)
    for _ in range(max_insns):
        if pos >= size:
            return None
        try:
            insn = decode(data, pos, address=base + pos)
        except DecodeError:
            return None
        pos += insn.length
        if pos > size:
            # Bound check first: an instruction overrunning the buffer
            # is never part of a gadget, return or not.
            return None
        instructions.append(insn)
        if insn.is_return:
            return classify(instructions)
        if insn.is_control_flow:
            return None
    return None


def _ret_length(data: bytes, ret_pos: int) -> int:
    """Encoded length of the return instruction at ``ret_pos``."""
    return 3 if data[ret_pos] in _IMM16_RETS else 1


# ----------------------------------------------------------------------
# Reference implementation (the equivalence oracle)
# ----------------------------------------------------------------------


def reference_find_gadgets_in_bytes(
    data: bytes,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Exhaustive gadget scan — the original, obviously-correct finder.

    Scans for return opcodes and fully re-decodes every start offset
    within :data:`MAX_LOOKBACK_BYTES` before each; keeps sequences that
    decode cleanly to the return and classify as gadgets.  One gadget is
    reported per (start, return) pair — nested suffixes of a long gadget
    are separate gadgets, as in real gadget finders.

    Kept verbatim as the oracle for the differential property suite and
    the ``bench_gadget_finder`` baseline; the production scanner is
    :func:`find_gadgets_in_bytes`.
    """
    metrics = get_metrics()
    scanned = metrics.counter("gadgets.offsets_scanned")
    accepted = metrics.counter("gadgets.accepted")
    rejected = metrics.counter("gadgets.rejected")
    terminators = _NEAR_RETS + (_FAR_RETS if include_far else ())
    gadgets: List[Gadget] = []
    seen = set()
    for ret_pos, byte in enumerate(data):
        if byte not in terminators:
            continue
        lo = max(0, ret_pos - MAX_LOOKBACK_BYTES)
        for start in range(ret_pos, lo - 1, -1):
            if start in seen:
                continue
            scanned.inc()
            gadget = decode_gadget_at(data, start, base=base, max_insns=max_insns)
            if gadget is None:
                rejected.inc()
                continue
            # Only keep it if this decode actually terminates at ret_pos
            # (an earlier return could satisfy a longer window).
            if gadget.end != base + ret_pos + _ret_length(data, ret_pos):
                rejected.inc()
                continue
            gadgets.append(gadget)
            seen.add(start)
    accepted.inc(len(gadgets))
    gadgets.sort(key=lambda g: g.address)
    return gadgets


def reference_find_gadgets(
    image: BinaryImage,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Exhaustive, uncached, serial scan of every executable section."""
    gadgets: List[Gadget] = []
    for section in image.executable_sections():
        gadgets.extend(
            reference_find_gadgets_in_bytes(
                bytes(section.data),
                base=section.vaddr,
                max_insns=max_insns,
                include_far=include_far,
            )
        )
    return gadgets


# ----------------------------------------------------------------------
# Memoized single-pass scanner (production)
# ----------------------------------------------------------------------


def _ret_positions(data: bytes, terminators: Tuple[int, ...]) -> List[int]:
    """All offsets of terminator opcode bytes, ascending — one
    ``bytes.find`` sweep per opcode instead of a Python-level loop over
    every byte."""
    positions: List[int] = []
    for opcode in terminators:
        needle = bytes((opcode,))
        idx = data.find(needle)
        while idx != -1:
            positions.append(idx)
            idx = data.find(needle, idx + 1)
    positions.sort()
    return positions


def _resolve(
    data: bytes, base: int, start: int, memo: Dict[int, object]
) -> object:
    """Resolve ``memo[start]`` by walking the unique decode chain forward.

    Decodes from ``start`` until it hits an already-memoized offset, a
    return, a dead end (decode error / control flow / buffer overrun),
    then unwinds the walked path into the memo so every visited offset
    is resolved permanently.  Entries are ``_DEAD`` or ``(insn, depth)``
    where ``depth`` counts instructions from the offset through the
    terminating return, inclusive.
    """
    size = len(data)
    path: List[Tuple[int, object]] = []
    pos = start
    while True:
        entry = memo.get(pos)
        if entry is not None:
            break
        if pos >= size:
            entry = memo[pos] = _DEAD
            break
        try:
            insn = decode(data, pos, address=base + pos)
        except DecodeError:
            entry = memo[pos] = _DEAD
            break
        nxt = pos + insn.length
        if nxt > size:
            entry = memo[pos] = _DEAD
            break
        if insn.is_return:
            entry = memo[pos] = (insn, 1)
            break
        if insn.is_control_flow:
            entry = memo[pos] = _DEAD
            break
        path.append((pos, insn))
        pos = nxt
    for ppos, pinsn in reversed(path):
        if entry is _DEAD:
            memo[ppos] = _DEAD
        else:
            entry = memo[ppos] = (pinsn, entry[1] + 1)
    return memo[start]


def find_gadgets_in_bytes(
    data: bytes,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Find all gadgets in a flat code buffer (memoized single pass).

    Equivalent to :func:`reference_find_gadgets_in_bytes` — identical
    gadget sets and telemetry counter values — but each buffer offset is
    decoded at most once per scan: candidate starts resolve through a
    memo table whose entries splice already-validated instruction tails
    instead of re-decoding them, and the ret-family locate step is one
    pass of ``bytes.find`` sweeps rather than a per-byte Python loop.
    """
    data = bytes(data)
    terminators = _NEAR_RETS + (_FAR_RETS if include_far else ())
    gadgets: List[Gadget] = []
    seen = set()
    memo: Dict[int, object] = {}
    scanned = 0
    rejected = 0
    for ret_pos in _ret_positions(data, terminators):
        window_end = ret_pos + _ret_length(data, ret_pos)
        lo = max(0, ret_pos - MAX_LOOKBACK_BYTES)
        for start in range(ret_pos, lo - 1, -1):
            if start in seen:
                continue
            scanned += 1
            entry = memo.get(start)
            if entry is None:
                entry = _resolve(data, base, start, memo)
            if entry is _DEAD or entry[1] > max_insns:
                rejected += 1
                continue
            # Splice the cached instruction tail: follow memo links to
            # collect the chain without decoding anything again.
            instructions = []
            pos = start
            while True:
                insn, depth = memo[pos]
                instructions.append(insn)
                pos += insn.length
                if depth == 1:
                    break
            # Only keep it if this chain actually terminates at this
            # window's return (an earlier return could satisfy a longer
            # window; the comparison is on end offsets, exactly as the
            # reference compares Gadget.end).
            if pos != window_end:
                rejected += 1
                continue
            gadget = classify(instructions)
            if gadget is None:
                rejected += 1
                continue
            gadgets.append(gadget)
            seen.add(start)
    metrics = get_metrics()
    metrics.counter("gadgets.offsets_scanned").inc(scanned)
    metrics.counter("gadgets.rejected").inc(rejected)
    metrics.counter("gadgets.accepted").inc(len(gadgets))
    gadgets.sort(key=lambda g: g.address)
    return gadgets


# ----------------------------------------------------------------------
# Caching and image-level entry points
# ----------------------------------------------------------------------


def find_gadgets_in_bytes_cached(
    data: bytes,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Content-addressed :func:`find_gadgets_in_bytes`.

    The key covers the exact section bytes, the base address and every
    finder knob (plus :data:`FINDER_VERSION`), so a one-byte change to
    the code — the very thing Parallax exists to detect — yields a
    different key and a fresh scan.  Gadget objects are shared between
    hits; the pipeline treats them as immutable.
    """
    from ..cache import content_key, get_cache

    cache = get_cache("gadgets")
    if cache is None:
        return find_gadgets_in_bytes(
            data, base=base, max_insns=max_insns, include_far=include_far
        )
    key = content_key(
        "find_gadgets", FINDER_VERSION, bytes(data), base, max_insns, include_far
    )
    return list(
        cache.get_or_compute(
            key,
            lambda: find_gadgets_in_bytes(
                data, base=base, max_insns=max_insns, include_far=include_far
            ),
        )
    )


def _scan_section_task(task: dict) -> dict:
    """Worker body for parallel per-section scans.

    Runs one section's cached scan under a private metrics registry so
    the parent can merge counter samples deterministically, in section
    order, regardless of worker completion order.
    """
    from ..telemetry import MetricsRegistry, suspend_context, task_telemetry

    registry = MetricsRegistry(enabled=True)
    # Thread-local override plus a suspended TelemetryContext: the
    # private registry receives the samples (even with scans running on
    # several threads at once) and the parent labels them once at merge
    # time, same as the protect-all pipeline.
    with task_telemetry(metrics=registry), suspend_context():
        gadgets = find_gadgets_in_bytes_cached(
            task["data"],
            base=task["base"],
            max_insns=task["max_insns"],
            include_far=task["include_far"],
        )
    return {"gadgets": gadgets, "metrics": registry.to_dict()}


def find_gadgets(
    image: BinaryImage,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
    jobs: int = 1,
) -> List[Gadget]:
    """Find all gadgets in every executable section of ``image``.

    Each section is looked up in the content-addressed gadget cache
    individually, so sections shared between runs (or untouched by a
    rewrite) are never re-scanned.

    ``jobs > 1`` fans per-section scans across the pipeline worker pool
    (:mod:`repro.pipeline.pool`); results merge in section order and
    per-worker telemetry counters merge in the same order, so parallel
    and serial runs produce identical gadget lists *and* identical
    metrics.  A single-section image always scans inline.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    with get_tracer().span("find_gadgets", image=image.name, jobs=jobs) as span:
        tasks = [
            {
                "data": bytes(section.data),
                "base": section.vaddr,
                "max_insns": max_insns,
                "include_far": include_far,
            }
            for section in image.executable_sections()
        ]
        gadgets: List[Gadget] = []
        if jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                gadgets.extend(
                    find_gadgets_in_bytes_cached(
                        task["data"],
                        base=task["base"],
                        max_insns=task["max_insns"],
                        include_far=task["include_far"],
                    )
                )
        else:
            from ..pipeline.pool import run_tasks

            metrics = get_metrics()
            for result in run_tasks(_scan_section_task, tasks, jobs=jobs):
                metrics.merge_samples(result["metrics"])
                gadgets.extend(result["gadgets"])
        span.set_attribute("found", len(gadgets))
        return gadgets
