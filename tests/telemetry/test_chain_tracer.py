"""Chain-execution tracing: pinpoint the corrupted gadget of a chain."""

import json

import pytest

from repro.attacks.patching import corrupt_byte
from repro.emu import Emulator
from repro.telemetry import ChainExecutionTracer, trace_chain_run


def _text_gadget(protected):
    """A chain gadget living in .text (tamperable program code)."""
    image = protected.image
    record = protected.report.chains[0]
    return next(
        addr
        for addr in record.gadget_addresses
        if image.section_at(addr).name == ".text"
    )


def test_clean_run_records_gadget_steps(protected_wget_cleartext):
    protected = protected_wget_cleartext
    record = protected.report.chains[0]
    result, tracer = trace_chain_run(protected.image, record)
    assert not result.crashed
    assert tracer.steps, "chain executed, steps must be recorded"
    recorded = {step.address for step in tracer.steps}
    assert recorded <= set(record.gadget_addresses)
    # every step carries its mnemonic sequence ending in a return
    for step in tracer.steps[:50]:
        assert step.mnemonics
        assert step.mnemonics[-1] in ("ret", "retf")
    assert tracer.summary()["steps_recorded"] == len(tracer.steps)


def test_tampered_chain_identifies_corrupted_gadget(protected_wget_cleartext):
    protected = protected_wget_cleartext
    record = protected.report.chains[0]
    target = _text_gadget(protected)

    tampered = protected.image.clone()
    corrupt_byte(tampered, target).apply(tampered)
    result, tracer = trace_chain_run(tampered, record)

    baseline = protected.run()
    malfunction = (
        result.crashed
        or result.stdout != baseline.stdout
        or result.exit_status != baseline.exit_status
    )
    assert malfunction, "tampering a chain gadget must break the chain"
    assert tracer.corrupted_gadget(result.fault) == target


def test_corrupted_gadget_via_fault_eip_and_spans():
    tracer = ChainExecutionTracer(
        gadget_addresses=[0x1000, 0x2000],
        gadget_spans={0x1000: 0x1005, 0x2000: 0x2003},
    )

    class FakeFault:
        eip = 0x2001  # inside the second gadget's body

    assert tracer.corrupted_gadget(FakeFault()) == 0x2000
    # outside any span, and no steps recorded -> unknown
    FakeFault.eip = 0x9999
    assert tracer.corrupted_gadget(FakeFault()) is None


def test_disabled_tracer_installs_nothing():
    emulator = Emulator()
    tracer = ChainExecutionTracer([0x1000], enabled=False)
    assert tracer.install(emulator) is False
    assert emulator.trace_hook is None


def test_install_chains_existing_hook():
    emulator = Emulator()
    seen = []
    emulator.trace_hook = lambda eip, insn: seen.append(eip)
    tracer = ChainExecutionTracer([0x1000])
    assert tracer.install(emulator) is True

    class FakeInsn:
        mnemonic = "ret"
        is_return = True

    emulator.trace_hook(0x1000, FakeInsn())
    assert seen == [0x1000]  # previous hook still called
    assert tracer.steps[0].address == 0x1000


def test_divergence_against_expected_sequence():
    tracer = ChainExecutionTracer([0x1, 0x2, 0x3])

    class FakeInsn:
        mnemonic = "ret"
        is_return = True

    for eip in (0x1, 0x2, 0x3):
        tracer.on_step(eip, FakeInsn())
    assert tracer.divergence([0x1, 0x2, 0x3]) is None
    assert tracer.divergence([0x1, 0x9, 0x3]) == 1
    assert tracer.divergence([0x1]) == 1  # executed more than expected


def test_steps_carry_monotonic_cycle_stamps(protected_wget_cleartext):
    """Every gadget dispatch is stamped with the emulator cycle counter,
    so a divergence can be located on the detection-latency axis."""
    protected = protected_wget_cleartext
    record = protected.report.chains[0]
    result, tracer = trace_chain_run(protected.image, record)
    assert not result.crashed
    stamps = [step.cycles for step in tracer.steps]
    assert all(c is not None for c in stamps)
    assert stamps == sorted(stamps)
    assert stamps[-1] <= result.cycles


def test_divergence_cycles_locates_first_divergent_dispatch():
    tracer = ChainExecutionTracer([0x1, 0x2, 0x3])

    class FakeInsn:
        mnemonic = "ret"
        is_return = True

    class FakeCpu:
        esp = 0

    class FakeEmulator:
        cpu = FakeCpu()
        cycles = 0

    emulator = FakeEmulator()
    tracer._emulator = emulator
    for cycles, eip in ((10, 0x1), (20, 0x2), (30, 0x3)):
        emulator.cycles = cycles
        tracer.on_step(eip, FakeInsn())
    assert tracer.divergence_cycles([0x1, 0x2, 0x3]) is None
    assert tracer.divergence_cycles([0x1, 0x9, 0x3]) == 20
    assert tracer.divergence_cycles([0x1]) == 20  # ran past expectations


def test_jsonl_export(tmp_path, protected_wget_cleartext):
    protected = protected_wget_cleartext
    record = protected.report.chains[0]
    result, tracer = trace_chain_run(protected.image, record)
    assert not result.crashed
    path = tmp_path / "chain.jsonl"
    tracer.write_jsonl(str(path))
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert events[-1]["type"] == "chain_trace"
    assert events[-1]["steps_recorded"] == len(tracer.steps)
    steps = [e for e in events if e["type"] == "chain_step"]
    assert steps and all("mnemonics" in e and "esp" in e for e in steps)
