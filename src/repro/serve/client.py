"""Clients for the serving layer.

:class:`ServeClient` is blocking (``http.client``, one keep-alive
connection) — used by tests, the CI smoke script, and anything
synchronous.  :class:`AsyncServeClient` speaks the same protocol over
``asyncio.open_connection`` — used by the load generator in
``benchmarks/bench_serve.py``, where hundreds of concurrent in-flight
requests need to be cheap.

Both return ``(status, headers, payload)`` triples; ``payload`` is the
decoded JSON body (or raw text for non-JSON responses like
``/metrics``).
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any, Dict, Optional, Tuple

from .http import parse_response

__all__ = ["ServeClient", "AsyncServeClient"]

Response = Tuple[int, Dict[str, str], Any]


def _decode_body(headers: Dict[str, str], body: bytes) -> Any:
    content_type = headers.get("content-type", "")
    if content_type.startswith("application/json") and body:
        return json.loads(body)
    return body.decode("utf-8", errors="replace")


class ServeClient:
    """Blocking keep-alive client (one connection, not thread-safe)."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> Response:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        except (http.client.HTTPException, OSError):
            # Stale keep-alive connection (server restarted / closed):
            # one reconnect attempt, then let the error propagate.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
        raw = response.read()
        resp_headers = {k.lower(): v for k, v in response.getheaders()}
        if resp_headers.get("connection", "").lower() == "close":
            self.close()
        return response.status, resp_headers, _decode_body(resp_headers, raw)

    def get(self, path: str) -> Response:
        return self.request("GET", path)

    def post(self, path: str, payload: dict) -> Response:
        return self.request("POST", path, payload)

    def job(self, kind: str, program: str, **fields) -> Response:
        """POST one job: ``client.job("protect", "gzip", seed=3)``."""
        return self.post(f"/{kind}", {"program": program, **fields})

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class AsyncServeClient:
    """Asyncio keep-alive client (one connection per instance).

    Not safe for concurrent use of a single instance — the load
    generator opens one per simulated client, which also exercises the
    server's per-connection handling realistically.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> Response:
        if self._writer is None:
            await self._connect()
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        raw_headers = await self._reader.readuntil(b"\r\n\r\n")
        status, headers = parse_response(raw_headers, b"")
        length = int(headers.get("content-length", "0"))
        raw_body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, _decode_body(headers, raw_body)

    async def get(self, path: str) -> Response:
        return await self.request("GET", path)

    async def post(self, path: str, payload: dict) -> Response:
        return await self.request("POST", path, payload)

    async def job(self, kind: str, program: str, **fields) -> Response:
        return await self.post(f"/{kind}", {"program": program, **fields})

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001 — teardown best-effort
                pass
            finally:
                self._reader = None
                self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> bool:
        await self.close()
        return False
