"""Stream ciphers vs known vectors."""

from repro.crypto import rc4_crypt, rc4_stream, xor_crypt_words, xorshift32


def test_rc4_known_vectors():
    # RFC 6229-adjacent classics
    assert rc4_crypt(b"Key", b"Plaintext").hex() == "bbf316e8d940af0ad3"
    assert rc4_crypt(b"Wiki", b"pedia").hex() == "1021bf0420"
    assert rc4_crypt(b"Secret", b"Attack at dawn").hex() == "45a01f645fc35b383552544b9bf5"


def test_rc4_symmetry():
    key, data = b"0123456789abcdef", bytes(range(100))
    assert rc4_crypt(key, rc4_crypt(key, data)) == data


def test_rc4_stream_prefix_property():
    key = b"k" * 16
    assert rc4_stream(key, 64)[:16] == rc4_stream(key, 16)


def test_xorshift32_period_sanity():
    seen = set()
    state = 1
    for _ in range(10_000):
        state = xorshift32(state)
        assert state != 0
        seen.add(state)
    assert len(seen) == 10_000


def test_xor_crypt_words_roundtrip():
    data = bytes(range(64))
    enc = xor_crypt_words(0xABCD, data)
    assert enc != data
    assert xor_crypt_words(0xABCD, enc) == data
