"""Instruction-level µ-chains (§V-C)."""

import pytest

from repro.core import MicrochainError, protect_microchains
from repro.emu import Emulator


@pytest.fixture(scope="module")
def micro(small_gzip):
    return protect_microchains(small_gzip, "digest_gzip")


def test_behaviour_preserved(small_gzip, micro):
    baseline = small_gzip.run()
    result = micro.run()
    assert not result.crashed
    assert result.stdout == baseline.stdout
    assert result.exit_status == baseline.exit_status


def test_one_chain_per_dataflow_op(small_gzip, micro):
    from repro.core.microchains import CHAIN_OPS
    function = small_gzip.functions["digest_gzip"]
    expected = sum(1 for op in function.body if isinstance(op, CHAIN_OPS))
    assert micro.chain_count == expected


def test_microchains_cost_more_than_function_chain(small_gzip, micro):
    from repro.core import Parallax, ProtectConfig

    func = Parallax(
        ProtectConfig(strategy="cleartext", verification_functions=["digest_gzip"])
    ).protect(small_gzip)

    def cost(image):
        emulator = Emulator(image, max_steps=10_000_000)
        before = emulator.cycles
        emulator.call_function(
            image.symbols["digest_gzip"].vaddr,
            [1, 2, small_gzip.data.addr("stats")],
        )
        return emulator.cycles - before

    assert cost(micro.image) > cost(func.image)


def test_tampering_microchain_gadget_detected(small_gzip, micro):
    baseline = small_gzip.run()
    image = micro.image.clone()
    # find a gadget address the µ-chains actually use: chain words that
    # point into an executable section
    section = image.section(".uchains")
    words = [
        int.from_bytes(section.data[i : i + 4], "little")
        for i in range(0, section.size, 4)
    ]
    target = next(
        w for w in words
        if image.section_at(w) is not None and image.section_at(w).executable
    )
    tampered_section = image.section_at(target)
    tampered_section.data[target - tampered_section.vaddr] ^= 0xFF
    from repro.emu import run_image
    result = run_image(image, max_steps=100_000_000)
    assert result.crashed or result.stdout != baseline.stdout


def test_scratch_conflict_rejected(small_gzip):
    # memcpy_words uses edi -> the default scratch collides
    with pytest.raises(MicrochainError):
        protect_microchains(small_gzip, "memcpy_words")


def test_non_leaf_rejected(small_gzip):
    with pytest.raises(MicrochainError):
        protect_microchains(small_gzip, "main")
