"""The decoded/encodable instruction representation."""

from __future__ import annotations

from typing import Optional, Tuple

from .operands import Imm, Mem, Rel
from .registers import Register

#: Mnemonics that terminate a basic block / gadget.
RETURNS = frozenset({"ret", "retf"})
#: Unconditional control transfers.
UNCONDITIONAL = frozenset({"jmp", "ret", "retf", "hlt", "int"})
#: Conditional jumps (all jcc mnemonics).
CONDITIONAL_JUMPS = frozenset(
    {
        "jo", "jno", "jb", "jae", "je", "jne", "jbe", "ja",
        "js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg",
    }
)
#: All control-flow mnemonics.
CONTROL_FLOW = (
    frozenset(
        {
            "jmp", "call", "ret", "retf", "hlt", "int",
            "callf", "jmpf", "iretd", "loopne", "loope", "loop", "jecxz",
        }
    )
    | CONDITIONAL_JUMPS
)


class Instruction:
    """A single decoded IA-32 instruction.

    Attributes:
        mnemonic: lower-case mnemonic string, e.g. ``"mov"``.
        operands: tuple of operand objects (Register / Imm / Mem / Rel).
        raw: the exact encoded bytes.
        address: address the instruction was decoded at, or ``None``.
        imm_offset: byte offset of the trailing immediate/displacement
            field inside ``raw`` (used by the immediate-rewriting rules),
            or ``None`` when the instruction has no such field.
    """

    __slots__ = ("mnemonic", "operands", "raw", "address", "imm_offset", "cycle_cost")

    def __init__(
        self,
        mnemonic: str,
        operands: Tuple = (),
        raw: bytes = b"",
        address: Optional[int] = None,
        imm_offset: Optional[int] = None,
    ):
        self.mnemonic = mnemonic
        self.operands = tuple(operands)
        self.raw = bytes(raw)
        self.address = address
        self.imm_offset = imm_offset
        #: filled in lazily by the emulator's cost model
        self.cycle_cost = None

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Encoded length in bytes."""
        return len(self.raw)

    @property
    def end(self) -> Optional[int]:
        """Address of the byte after this instruction."""
        if self.address is None:
            return None
        return self.address + self.length

    @property
    def is_return(self) -> bool:
        return self.mnemonic in RETURNS

    @property
    def is_control_flow(self) -> bool:
        return self.mnemonic in CONTROL_FLOW

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in CONDITIONAL_JUMPS

    @property
    def is_call(self) -> bool:
        return self.mnemonic == "call"

    def writes_memory(self) -> bool:
        """True if the first (destination) operand is a memory reference."""
        if self.mnemonic in ("push", "call", "pushad"):
            return True
        if self.mnemonic in ("cmp", "test"):
            return False
        return bool(self.operands) and isinstance(self.operands[0], Mem)

    def reads_memory(self) -> bool:
        if self.mnemonic in ("pop", "ret", "retf", "leave", "popad"):
            return True
        if self.mnemonic == "lea":
            return False
        return any(isinstance(op, Mem) for op in self.operands)

    def branch_target(self) -> Optional[int]:
        """Absolute target of a direct branch, if known."""
        for op in self.operands:
            if isinstance(op, Rel):
                return op.target
        return None

    def regs_written(self) -> tuple:
        """Registers this instruction (architecturally) writes."""
        m = self.mnemonic
        ops = self.operands
        out = []
        if m in ("mov", "add", "adc", "sub", "sbb", "and", "or", "xor", "lea",
                 "inc", "dec", "neg", "not", "shl", "shr", "sar", "movzx",
                 "movsx", "imul"):
            if ops and isinstance(ops[0], Register):
                out.append(ops[0])
        elif m == "pop" and ops and isinstance(ops[0], Register):
            out.append(ops[0])
        elif m == "xchg":
            out.extend(op for op in ops if isinstance(op, Register))
        elif m in ("mul", "div", "idiv", "cdq"):
            from .registers import EAX, EDX

            out.extend((EAX, EDX))
        elif m == "popad":
            from .registers import GP32

            out.extend(r for r in GP32 if r.name != "esp")
        return tuple(out)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Instruction)
            and self.mnemonic == other.mnemonic
            and self.operands == other.operands
        )

    def __hash__(self) -> int:
        return hash((self.mnemonic, self.operands))

    def __repr__(self) -> str:
        ops = ", ".join(repr(op) for op in self.operands)
        text = f"{self.mnemonic} {ops}".strip()
        if self.address is not None:
            return f"<{self.address:#x}: {text}>"
        return f"<{text}>"

    def text(self) -> str:
        """Disassembly text without address decoration."""
        ops = ", ".join(repr(op) for op in self.operands)
        return f"{self.mnemonic} {ops}".strip()
