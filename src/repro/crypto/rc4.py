"""RC4 stream cipher (reference implementation).

Used two ways: (1) as the Python-side encryptor when the pipeline
prepares RC4-protected chains, and (2) as the reference the emulated
RC4 decryptor (IR runtime support) is tested against.  RC4 is obsolete
as a cipher; the paper uses it purely as a tamper-analysis obstacle and
performance datapoint, and so do we.
"""

from __future__ import annotations


def rc4_ksa(key: bytes) -> list:
    """Key-scheduling algorithm: returns the initial permutation S."""
    if not key:
        raise ValueError("RC4 key must be non-empty")
    s = list(range(256))
    j = 0
    for i in range(256):
        j = (j + s[i] + key[i % len(key)]) & 0xFF
        s[i], s[j] = s[j], s[i]
    return s


def rc4_stream(key: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes."""
    s = rc4_ksa(key)
    out = bytearray()
    i = j = 0
    for _ in range(length):
        i = (i + 1) & 0xFF
        j = (j + s[i]) & 0xFF
        s[i], s[j] = s[j], s[i]
        out.append(s[(s[i] + s[j]) & 0xFF])
    return bytes(out)


def rc4_crypt(key: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt (RC4 is symmetric)."""
    stream = rc4_stream(key, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))
