"""Gadget finder throughput: memoized scanner vs. reference finder.

The gadget finder is the hot spot of every cold ``protect`` run, so its
rewrite (memoized suffix decoding, single-pass ret locate, batched
counters) is regression-gated like the emulator engines.  For every
corpus program's executable section this benchmark times

* ``reference_find_gadgets_in_bytes`` — the original exhaustive
  finder, kept in-tree forever as the equivalence oracle; and
* ``find_gadgets_in_bytes`` — the production memoized scanner,

and every measurement doubles as a differential check: the two gadget
sets must be *identical* (address, end, classification, stack shape),
and any difference is recorded and fails the run.

Emits ``BENCH_gadget_finder.json`` next to this file (override with
``--output`` or ``REPRO_BENCH_GADGET_FINDER``) and appends a
``gadget_finder`` entry to ``benchmarks/history/`` for
``check_regression.py``.  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_gadget_finder.py \
        --programs gzip lame --min-speedup 2.5

or under pytest-benchmark with the rest of the suite.
"""

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import _shared  # noqa: E402

from repro.gadgets import (  # noqa: E402
    find_gadgets_in_bytes,
    reference_find_gadgets_in_bytes,
)

DEFAULT_OUTPUT = os.environ.get(
    "REPRO_BENCH_GADGET_FINDER",
    os.path.join(os.path.dirname(__file__), "BENCH_gadget_finder.json"),
)

#: Timing repeats per (program, finder); the best run is kept, which is
#: the standard way to strip scheduler noise from CPU-bound loops.
REPEATS = 3


def gadget_fingerprint(gadgets):
    """Order-independent, semantics-complete fingerprint of a gadget set."""
    return sorted(
        (
            g.address,
            g.end,
            g.kind.key(),
            g.stack_words,
            g.far,
            g.ret_imm,
            tuple(i.raw.hex() for i in g.instructions),
        )
        for g in gadgets
    )


def _sections(name):
    image = _shared.program(name).image
    return [(bytes(s.data), s.vaddr) for s in image.executable_sections()]


def _time_scan(finder, sections, repeats=REPEATS):
    """Best-of-N wall time for scanning every section; returns
    (seconds, gadget list of the last run)."""
    best = math.inf
    gadgets = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        found = []
        for data, base in sections:
            found.extend(finder(data, base=base))
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
        gadgets = found
    return best, gadgets


def run_suite(programs, output=DEFAULT_OUTPUT, repeats=REPEATS):
    rows = {}
    mismatches = []
    for name in programs:
        sections = _sections(name)
        code_bytes = sum(len(data) for data, _base in sections)
        ref_s, ref_gadgets = _time_scan(
            reference_find_gadgets_in_bytes, sections, repeats
        )
        opt_s, opt_gadgets = _time_scan(find_gadgets_in_bytes, sections, repeats)
        identical = gadget_fingerprint(ref_gadgets) == gadget_fingerprint(opt_gadgets)
        if not identical:
            mismatches.append(
                {
                    "program": name,
                    "reference_count": len(ref_gadgets),
                    "optimized_count": len(opt_gadgets),
                }
            )
        rows[name] = {
            "code_bytes": code_bytes,
            "gadgets": len(ref_gadgets),
            "reference_ms": round(ref_s * 1e3, 2),
            "optimized_ms": round(opt_s * 1e3, 2),
            "reference_bytes_per_s": round(code_bytes / ref_s),
            "optimized_bytes_per_s": round(code_bytes / opt_s),
            "speedup": round(ref_s / opt_s, 2),
            "identical": identical,
        }

    speedups = [rows[n]["speedup"] for n in rows]
    payload = {
        "programs": rows,
        "speedup_geomean": round(
            math.exp(sum(math.log(v) for v in speedups) / len(speedups)), 2
        ),
        "mismatches": mismatches,
        "repeats": repeats,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=2)
    history = {}
    for name, row in rows.items():
        history[f"{name}.optimized_bytes_per_s"] = row["optimized_bytes_per_s"]
        history[f"{name}.speedup"] = row["speedup"]
    history["speedup_geomean"] = payload["speedup_geomean"]
    _shared.record_history("gadget_finder", history)
    return payload


def _print_report(payload):
    print(f"{'program':<8} {'bytes':>7} {'gadgets':>8} {'ref ms':>8} "
          f"{'opt ms':>8} {'opt B/s':>10} {'x':>6}")
    for name, row in payload["programs"].items():
        print(f"{name:<8} {row['code_bytes']:>7,} {row['gadgets']:>8,} "
              f"{row['reference_ms']:>8.1f} {row['optimized_ms']:>8.1f} "
              f"{row['optimized_bytes_per_s']:>10,} {row['speedup']:>5.2f}x")
    print(f"\ngeomean speedup {payload['speedup_geomean']}x; "
          f"{len(payload['mismatches'])} gadget-set mismatch(es)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", nargs="+",
                        default=list(_shared.PROGRAM_NAMES),
                        help="corpus programs to measure")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the geomean speedup of the "
                        "memoized scanner reaches this factor")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="timing repeats per finder (best run kept)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_gadget_finder.json")
    args = parser.parse_args(argv)

    payload = run_suite(args.programs, output=args.output, repeats=args.repeats)
    _print_report(payload)
    if payload["mismatches"]:
        print("ERROR: optimized finder diverged from the reference")
        return 1
    if payload["speedup_geomean"] < args.min_speedup:
        print(f"ERROR: geomean speedup {payload['speedup_geomean']}x "
              f"below required {args.min_speedup}x")
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_gadget_finder_throughput(benchmark):
    payload = benchmark.pedantic(
        lambda: run_suite(["gzip"]), rounds=1, iterations=1
    )
    _print_report(payload)
    assert not payload["mismatches"]
    assert payload["speedup_geomean"] >= 2.0


if __name__ == "__main__":
    sys.exit(main())
