"""Program analysis helpers: call graphs, CFGs, selection metrics."""

from .callgraph import CallGraph, callgraph_from_binary, callgraph_from_ir
from .cfg import BasicBlock, FunctionCFG, cfg_for_function

__all__ = [
    "CallGraph",
    "callgraph_from_binary",
    "callgraph_from_ir",
    "BasicBlock",
    "FunctionCFG",
    "cfg_for_function",
]
