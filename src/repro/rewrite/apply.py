"""Applying rewriting rules by IR recompilation (source-assisted mode).

The paper's prototype "uses source to simplify binary rewriting"; ours
does the same: instead of reflowing machine code in place (length
changes would cascade through every displacement), a rule application
transforms the owning function's IR and the binary is recompiled.  The
measurement rules in :mod:`repro.rewrite.rules` stay purely
binary-level, as a binary-only deployment would be.

:class:`ImmediateSplitter` implements §IV-B2 instruction splitting:
``Const(dst, K)`` becomes ``Const(dst, K'); AddConst(dst, K-K')`` with
``K'`` chosen so its imm32 encoding contains the ret opcode.  The
xor-compensation variant of the paper's Listing 3 is provided by
:func:`plant_ret_byte` for constant planning.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from ..ropc import ir

RET_BYTE = 0xC3


def plant_ret_byte(value: int, byte_index: int = 0) -> Tuple[int, int]:
    """Choose (K', D) with K' ^ D == value and byte ``byte_index`` of K'
    equal to the ret opcode — the xor-compensation form of Listing 3."""
    shift = 8 * byte_index
    target_byte = (value >> shift) & 0xFF
    diff = (target_byte ^ RET_BYTE) << shift
    return value ^ diff, diff


def plant_ret_byte_add(value: int, byte_index: int = 0) -> Tuple[int, int]:
    """Choose (K', C) with (K' + C) mod 2^32 == value and the chosen
    byte of K' equal to the ret opcode — the additive splitting form."""
    shift = 8 * byte_index
    planted = (value & ~(0xFF << shift)) | (RET_BYTE << shift)
    compensation = (value - planted) & 0xFFFFFFFF
    return planted & 0xFFFFFFFF, compensation


class ImmediateSplitter:
    """Rewrites Const ops so their immediates host return opcodes.

    Note the split makes the protected function a couple of cycles
    slower — the paper flags exactly this: "instruction splitting
    induces a small performance overhead on the protected code."
    """

    def __init__(self, byte_index: int = 0):
        if not 0 <= byte_index <= 3:
            raise ValueError("byte_index must be 0..3")
        self.byte_index = byte_index

    def eligible_indices(self, function: ir.IRFunction) -> List[int]:
        """Op positions whose Const can host a planted ret byte."""
        return [
            index
            for index, op in enumerate(function.body)
            if isinstance(op, ir.Const)
        ]

    def transform(
        self, function: ir.IRFunction, indices: Optional[List[int]] = None
    ) -> ir.IRFunction:
        """Return a copy of ``function`` with selected Consts split.

        Args:
            function: the IR to transform (left untouched).
            indices: positions of Const ops to split; every Const when
                omitted.
        """
        out = ir.IRFunction(function.name, function.params)
        for index, op in enumerate(function.body):
            if isinstance(op, ir.Const) and (indices is None or index in indices):
                planted, compensation = plant_ret_byte_add(op.value, self.byte_index)
                out.emit(ir.Const(op.dst, planted))
                out.emit(ir.AddConst(op.dst, compensation))
            else:
                out.emit(copy.copy(op))
        return out
