"""Rule 2: modified immediate operands (§IV-B2).

A partial gadget ending just before an immediate operand can be
completed by rewriting one byte of the immediate to a return opcode
(0xc3).  The semantic damage is repaired by *instruction splitting*:

* ``add/adc/sub/sbb r, K``  →  ``op r, K'`` followed by a compensating
  ``add/sub r, K-K'`` (K' chosen so its encoding contains 0xc3);
* ``mov r, K``  →  ``mov r, K^D; xor r, D`` (the paper's Listing 3);
* immediates that set a return value / exit status before ``ret`` may
  simply be changed, since such semantics usually only distinguish zero
  from non-zero.

Following §VII-A, the rule considers only add/adc/sub/sbb/mov.
Measurement is byte-accurate at the binary level; *application* is done
by recompiling the owning function from IR
(:class:`repro.rewrite.apply.ImmediateSplitter`), mirroring the paper's
source-assisted prototype.
"""

from __future__ import annotations

from typing import List, Optional

from ...binary.image import BinaryImage
from ...gadgets.types import Gadget
from ..fieldsearch import best_field_gadget, coverage_for_fields
from ...x86.decoder import decode_all
from ...x86.instruction import Instruction
from ...x86.opcodes import RET_OPCODE
from ...x86.operands import Imm
from ..report import ProtectabilityReport, RULE_IMM

#: Instruction families the rule applies to (§VII-A).
ELIGIBLE = frozenset({"add", "adc", "sub", "sbb", "mov"})


class ImmediateCandidate:
    """One way to craft a gadget inside an immediate field.

    Attributes:
        insn: the instruction whose immediate would be modified.
        byte_index: which byte of the immediate becomes 0xc3.
        gadget: the gadget that appears once the byte is patched
            (synthetic — it does not exist in the unmodified binary).
    """

    __slots__ = ("insn", "byte_index", "gadget")

    def __init__(self, insn: Instruction, byte_index: int, gadget: Gadget):
        self.insn = insn
        self.byte_index = byte_index
        self.gadget = gadget

    @property
    def patch_addr(self) -> int:
        return self.insn.address + self.insn.imm_offset + self.byte_index

    def __repr__(self) -> str:
        return (
            f"<ImmCandidate {self.insn!r} byte {self.byte_index} "
            f"-> gadget @{self.gadget.address:#x}>"
        )


def _eligible_instructions(data: bytes, base: int) -> List[Instruction]:
    instructions = decode_all(data, address=base, stop_on_error=True)
    out = []
    for insn in instructions:
        if insn.mnemonic not in ELIGIBLE or insn.imm_offset is None:
            continue
        if not insn.operands or not isinstance(insn.operands[-1], Imm):
            continue
        out.append(insn)
    return out


class ImmediateModificationRule:
    """Finds (and scores) immediate-modification gadget sites."""

    name = RULE_IMM

    def __init__(self, max_insns: int = 6):
        self.max_insns = max_insns

    def find(self, image: BinaryImage) -> List[ImmediateCandidate]:
        candidates: List[ImmediateCandidate] = []
        for section in image.executable_sections():
            data = bytes(section.data)
            base = section.vaddr
            for insn in _eligible_instructions(data, base):
                imm: Imm = insn.operands[-1]
                field_start = insn.address - base + insn.imm_offset
                crafted = best_field_gadget(
                    data, base, field_start, imm.width // 8, self.max_insns
                )
                if crafted is None:
                    continue
                crafted.gadget.provenance = "immediate_mod"
                ret_index = max(crafted.planted)
                candidates.append(
                    ImmediateCandidate(insn, ret_index, crafted.gadget)
                )
        return candidates

    def fields(self, data: bytes, base: int):
        """(offset, width) of every controllable immediate field."""
        out = []
        for insn in _eligible_instructions(data, base):
            imm: Imm = insn.operands[-1]
            out.append((insn.address - base + insn.imm_offset, imm.width // 8))
        return out

    def measure(
        self, image: BinaryImage, report: ProtectabilityReport
    ) -> List[ImmediateCandidate]:
        candidates = self.find(image)
        coverage = report.rule(self.name)
        for candidate in candidates:
            coverage.add_span(candidate.gadget.span(), candidate=candidate)
        # Field-composition coverage: gadgets chaining across several
        # controllable immediates (see fieldsearch.coverage_for_fields).
        for section in image.executable_sections():
            data = bytes(section.data)
            base = section.vaddr
            covered, spans = coverage_for_fields(
                data, base, self.fields(data, base), self.max_insns
            )
            coverage.bytes.update(base + off for off in covered)
            coverage.candidates.extend(spans)
        return candidates
