"""Overhead self-accounting: off-vs-on measurement and the 5% budget."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    get_metrics,
    measure_overhead,
    publish_overhead,
    self_accounting,
    telemetry_session,
)
from repro.telemetry.overhead import (
    BUDGET_ENV,
    DEFAULT_BUDGET,
    OverheadReport,
    configured_budget,
)


def test_report_fraction_and_verdict():
    report = OverheadReport(
        off_seconds=1.0, on_seconds=1.03, budget=0.05, repeats=3
    )
    assert report.fraction == pytest.approx(0.03)
    assert report.within_budget
    over = OverheadReport(
        off_seconds=1.0, on_seconds=1.2, budget=0.05, repeats=3
    )
    assert not over.within_budget
    assert "OVER" in str(over)
    # faster-with-telemetry noise clamps to zero, never negative
    noise = OverheadReport(
        off_seconds=1.0, on_seconds=0.9, budget=0.05, repeats=3
    )
    assert noise.fraction == 0.0


def test_budget_env_override(monkeypatch):
    assert configured_budget() == DEFAULT_BUDGET
    monkeypatch.setenv(BUDGET_ENV, "0.10")
    assert configured_budget() == pytest.approx(0.10)
    monkeypatch.setenv(BUDGET_ENV, "-1")
    with pytest.raises(ValueError):
        configured_budget()


def test_measure_overhead_runs_workload_both_ways():
    calls = {"n": 0, "enabled_seen": []}

    def workload():
        calls["n"] += 1
        calls["enabled_seen"].append(get_metrics().enabled)
        get_metrics().counter("w").inc()

    report = measure_overhead(workload, repeats=2, warmup=1, budget=0.05)
    # 1 warmup + 2 off + 2 on
    assert calls["n"] == 5
    assert calls["enabled_seen"][1:3] == [False, False]
    assert calls["enabled_seen"][3:] == [True, True]
    assert report.repeats == 2
    assert report.off_seconds > 0 and report.on_seconds > 0
    assert report.to_dict()["within_budget"] == report.within_budget


def test_publish_overhead_gauges():
    report = OverheadReport(
        off_seconds=1.0, on_seconds=1.02, budget=0.05, repeats=3,
        recorder_self_seconds=0.001,
    )
    registry = MetricsRegistry()
    publish_overhead(report, registry)
    samples = registry.to_dict()
    assert samples["telemetry.overhead.fraction"]["value"] == pytest.approx(
        0.02
    )
    assert samples["telemetry.overhead.budget"]["value"] == 0.05
    assert samples["telemetry.overhead.recorder_self_seconds"][
        "value"
    ] == pytest.approx(0.001)


def test_self_accounting_snapshots_recorder_cost():
    with telemetry_session(recorder=True) as (metrics, _tracer):
        from repro.telemetry import get_recorder

        for i in range(300):
            get_recorder().record("k", i=i)
        self_seconds = self_accounting(metrics)
        assert self_seconds > 0.0
        sample = metrics.to_dict()["telemetry.overhead.recorder_self_seconds"]
        assert sample["value"] == pytest.approx(self_seconds)
