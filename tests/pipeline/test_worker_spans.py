"""Worker span propagation: protect_all traces survive multiprocessing.

Workers run under private tracers and ship their finished spans back
with the result payload; the parent adopts them under its per-program
``pipeline.program`` span, so a ``jobs=N`` run traces like an inline
one instead of silently dropping worker spans.
"""

import pytest

from repro import telemetry
from repro.cache import cache_session
from repro.pipeline import protect_all

NAMES = ["wget", "gzip"]


def _spans_by_name(tracer):
    out = {}
    for span in tracer.spans:
        out.setdefault(span.name, []).append(span)
    return out


def _assert_worker_spans_adopted(tracer):
    spans = _spans_by_name(tracer)
    programs = spans["pipeline.program"]
    assert len(programs) == len(NAMES)
    program_ids = {s.span_id for s in programs}
    # each program's worker-side protect span hangs off its
    # pipeline.program span in the parent trace
    protects = spans["protect"]
    assert len(protects) == len(NAMES)
    assert {s.parent_id for s in protects} <= program_ids
    # and the worker-internal nesting came across intact
    protect_ids = {s.span_id for s in protects}
    for child_name in ("find_gadgets", "emit_chain"):
        for child in spans[child_name]:
            assert child.parent_id in protect_ids, child_name
    # ids stay unique after ingestion
    ids = [s.span_id for s in tracer.spans]
    assert len(ids) == len(set(ids))


def test_parallel_run_propagates_worker_spans():
    with cache_session(enabled=False):
        with telemetry.telemetry_session() as (_metrics, tracer):
            results = protect_all(names=NAMES, jobs=2, use_cache=False)
    assert len({r.worker_pid for r in results}) == 2
    _assert_worker_spans_adopted(tracer)


def test_inline_run_traces_identically_shaped():
    with cache_session(enabled=False):
        with telemetry.telemetry_session() as (_metrics, tracer):
            protect_all(names=NAMES, jobs=1, use_cache=False)
    _assert_worker_spans_adopted(tracer)


def test_disabled_tracer_ships_no_spans():
    # tracing off: workers must not pay for span capture, and nothing
    # is adopted in the parent
    tracer = telemetry.get_tracer()
    if tracer.enabled:
        pytest.skip("another component enabled the default tracer")
    before = len(tracer.spans)
    with cache_session(enabled=False):
        protect_all(names=["wget"], jobs=1, use_cache=False)
    assert len(tracer.spans) == before
