"""Operand types for IA-32 instructions.

Four operand kinds exist:

* :class:`~repro.x86.registers.Register` — a register operand.
* :class:`Imm` — an immediate constant, with an explicit encoded width.
* :class:`Mem` — a memory reference ``[base + index*scale + disp]``.
* :class:`Rel` — a relative branch displacement (``jmp``/``jcc``/``call``).
"""

from __future__ import annotations

from .registers import Register


def _mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret ``value`` as a ``width``-bit two's-complement integer."""
    value &= _mask(width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (two's complement encode)."""
    return value & _mask(width)


def fits_signed(value: int, width: int) -> bool:
    return -(1 << (width - 1)) <= value < (1 << (width - 1))


class Imm:
    """An immediate operand with a fixed encoded width in bits."""

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int = 32):
        if width not in (8, 16, 32):
            raise ValueError("immediate width must be 8, 16 or 32")
        self.value = to_unsigned(value, width)
        self.width = width

    @property
    def signed(self) -> int:
        return to_signed(self.value, self.width)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Imm)
            and self.value == other.value
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash(("imm", self.value, self.width))

    def __repr__(self) -> str:
        return f"0x{self.value:x}"


class Mem:
    """A memory operand ``width ptr [base + index*scale + disp]``.

    Any of ``base``/``index`` may be ``None``.  ``scale`` is 1, 2, 4 or 8.
    ``width`` is the access width in bits.
    """

    __slots__ = ("base", "index", "scale", "disp", "width")

    def __init__(
        self,
        base: Register = None,
        index: Register = None,
        scale: int = 1,
        disp: int = 0,
        width: int = 32,
    ):
        if scale not in (1, 2, 4, 8):
            raise ValueError("scale must be 1, 2, 4 or 8")
        if index is not None and index.name == "esp":
            raise ValueError("esp cannot be an index register")
        self.base = base
        self.index = index
        self.scale = scale
        self.disp = to_signed(disp, 32)
        self.width = width

    def __eq__(self, other) -> bool:
        return isinstance(other, Mem) and (
            (self.base, self.index, self.scale, self.disp, self.width)
            == (other.base, other.index, other.scale, other.disp, other.width)
        )

    def __hash__(self) -> int:
        return hash(("mem", self.base, self.index, self.scale, self.disp, self.width))

    def __repr__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        size = {8: "byte", 16: "word", 32: "dword"}[self.width]
        return f"{size} [" + "+".join(parts).replace("+-", "-") + "]"


class SegReg:
    """A segment register operand (decode-only; flat memory model)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other) -> bool:
        return isinstance(other, SegReg) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("seg", self.name))

    def __repr__(self) -> str:
        return self.name


class Rel:
    """A relative displacement operand for branches.

    ``offset`` is the signed displacement from the end of the instruction;
    ``target`` (if the instruction address is known) is the absolute
    destination address.
    """

    __slots__ = ("offset", "width", "target")

    def __init__(self, offset: int, width: int = 32, target: int = None):
        self.offset = to_signed(offset, width)
        self.width = width
        self.target = target

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rel)
            and self.offset == other.offset
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash(("rel", self.offset, self.width))

    def __repr__(self) -> str:
        if self.target is not None:
            return f"0x{self.target:x}"
        return f".{self.offset:+#x}"


def mem8(base=None, index=None, scale=1, disp=0) -> Mem:
    """Shorthand for a byte-sized memory operand."""
    return Mem(base, index, scale, disp, width=8)


def mem32(base=None, index=None, scale=1, disp=0) -> Mem:
    """Shorthand for a dword-sized memory operand."""
    return Mem(base, index, scale, disp, width=32)
