"""Protecting several verification functions at once."""

import pytest

from repro.core import Parallax, ProtectConfig


@pytest.fixture(scope="module")
def multi_protected(small_wget):
    config = ProtectConfig(
        strategy="xor",
        verification_functions=["digest_wget", "crc_step", "rotate_xor"],
    )
    return Parallax(config).protect(small_wget)


def test_behaviour_preserved(small_wget, small_wget_baseline, multi_protected):
    result = multi_protected.run()
    assert not result.crashed
    assert result.stdout == small_wget_baseline.stdout
    assert result.exit_status == small_wget_baseline.exit_status


def test_three_chains_three_stubs(multi_protected):
    report = multi_protected.report
    assert len(report.chains) == 3
    stubs = {record.stub_addr for record in report.chains}
    assert len(stubs) == 3
    chains = {record.chain_addr for record in report.chains}
    assert len(chains) == 3


def test_every_entry_redirected(multi_protected):
    image = multi_protected.image
    for name in ("digest_wget", "crc_step", "rotate_xor"):
        assert image.read(image.symbols[name].vaddr, 1) == b"\xe9"


def test_distinct_frame_cells(multi_protected):
    # each chain writes its own frame/resume cells; the ropdata section
    # must be big enough for all of them
    section = multi_protected.image.section(".ropdata")
    assert section.size >= 3 * 8
