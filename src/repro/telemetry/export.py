"""Exporters: Chrome trace-event JSON, Prometheus text, stats rendering.

Turns the in-memory telemetry objects (or their previously exported
artifacts) into the formats external tools speak:

* :func:`chrome_trace` — the Chrome trace-event format (``traceEvents``
  with ``ph``/``ts``/``dur``/``pid``/``tid``), loadable in Perfetto or
  ``chrome://tracing``, built from the span tracer;
* :func:`prometheus_text` — the Prometheus text exposition format from
  a metrics registry (counters as ``_total``, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``/``_stddev``);
* :func:`load_artifact` / :func:`render_stats` — sniff any exported
  artifact (metrics JSON, span JSONL, journal JSONL, Chrome trace) and
  render the human dashboard behind ``repro stats``.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry, _ensure_parent_dir
from .tracing import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "load_artifact",
    "render_stats",
    "ARTIFACT_KINDS",
]

#: Artifact kinds :func:`load_artifact` can sniff — the CLI names these
#: when a path holds none of them.
ARTIFACT_KINDS = ("metrics", "trace", "journal", "chrome", "coverage")


# ----------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------


def chrome_trace(
    spans: Iterable,
    pid: Optional[int] = None,
    process_name: str = "repro",
) -> dict:
    """Trace-event JSON from spans (``Span`` objects or exported dicts).

    Every span becomes one complete (``ph: "X"``) event with
    microsecond wall-clock ``ts`` and ``dur``, so nesting reconstructs
    visually from timing alone; span/parent ids ride along in ``args``.

    Spans carrying a ``worker_pid`` attribute (stamped by the parallel
    pipeline when it hoists pool-worker spans into the parent trace)
    are laned under that pid, with ``process_name``/``thread_name``
    metadata events per worker — in Perfetto each pool worker renders
    as its own named process track instead of piling onto the parent's.
    """
    pid = os.getpid() if pid is None else pid
    span_events: List[dict] = []
    worker_pids: List[int] = []
    for span in spans:
        record = span if isinstance(span, dict) else span.to_dict()
        args = dict(record.get("attributes") or {})
        args["span_id"] = record.get("span_id")
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        if record.get("status") not in (None, "ok"):
            args["status"] = record["status"]
        event_pid = pid
        worker_pid = args.get("worker_pid")
        if worker_pid is not None:
            try:
                event_pid = int(worker_pid)
            except (TypeError, ValueError):
                event_pid = pid
            if event_pid != pid and event_pid not in worker_pids:
                worker_pids.append(event_pid)
        span_events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(record.get("start_ts", 0.0) * 1e6, 3),
                "dur": round(record.get("duration_s", 0.0) * 1e6, 3),
                "pid": event_pid,
                "tid": 1,
                "args": args,
            }
        )
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": "spans"},
        },
    ]
    for worker_pid in worker_pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": worker_pid,
                "tid": 0,
                "args": {"name": f"{process_name} worker {worker_pid}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": worker_pid,
                "tid": 1,
                "args": {"name": "worker spans"},
            }
        )
    events.extend(span_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str, **kwargs) -> None:
    payload = chrome_trace(tracer.to_events(), **kwargs)
    _ensure_parent_dir(path)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_name(name: str) -> str:
    sanitized = _PROM_LABEL_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_value(value) -> str:
    # Escape order matters: backslashes first, else the escapes we add
    # for quotes/newlines would themselves get doubled.
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str], extra: Optional[List[Tuple[str, str]]] = None) -> str:
    """Render a ``{k="v",...}`` label block (empty string when bare)."""
    pairs = [
        (_prom_label_name(k), _prom_label_value(v)) for k, v in labels.items()
    ]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _sample_identity(key: str, sample: dict) -> Tuple[str, Dict[str, str]]:
    """Bare metric name + labels for one exported sample.

    Current exports carry ``name``/``labels`` fields; older artifacts
    only have the series key, where the bare name precedes any ``{``.
    """
    name = sample.get("name") or key.split("{", 1)[0]
    labels = sample.get("labels") or {}
    return name, labels


def prometheus_text(registry) -> str:
    """Prometheus text format from a registry or an exported samples dict.

    Labeled series render with a ``{key="value"}`` block — label values
    escaped per the exposition format (backslash, double-quote,
    newline) — and every family gets exactly one ``# TYPE`` line
    regardless of how many labeled series it holds.  Histogram buckets
    are converted from the registry's per-bucket counts to Prometheus's
    cumulative ``le`` series; ``sum_sq`` (when present) is surfaced as
    a ``_stddev`` gauge so dashboards get spread without a second
    scrape.
    """
    samples = (
        registry.to_dict() if isinstance(registry, MetricsRegistry) else registry
    )
    # Group series into families so one # TYPE line covers them all.
    families: Dict[str, List[Tuple[Dict[str, str], dict]]] = {}
    kinds: Dict[str, str] = {}
    for key in sorted(samples):
        sample = samples[key]
        name, labels = _sample_identity(key, sample)
        kind = sample.get("type")
        base = _prom_name(name)
        if kinds.setdefault(base, kind) != kind:
            raise ValueError(
                f"family {base!r} mixes sample types "
                f"({kinds[base]!r} and {kind!r})"
            )
        families.setdefault(base, []).append((labels, sample))
    lines: List[str] = []
    for base in sorted(families):
        kind = kinds[base]
        series = families[base]
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            for labels, sample in series:
                lines.append(
                    f"{base}_total{_prom_labels(labels)}"
                    f" {_prom_value(sample['value'])}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for labels, sample in series:
                lines.append(
                    f"{base}{_prom_labels(labels)}"
                    f" {_prom_value(sample['value'])}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            stddev_lines: List[str] = []
            for labels, sample in series:
                cumulative = 0
                for bucket in sample["buckets"]:
                    cumulative += bucket["count"]
                    le = bucket["le"]
                    le_text = le if le == "+Inf" else _prom_value(le)
                    lines.append(
                        f"{base}_bucket"
                        f"{_prom_labels(labels, extra=[('le', le_text)])}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{base}_sum{_prom_labels(labels)}"
                    f" {_prom_value(sample['sum'])}"
                )
                lines.append(
                    f"{base}_count{_prom_labels(labels)} {sample['count']}"
                )
                if sample.get("stddev") is not None:
                    stddev_lines.append(
                        f"{base}_stddev{_prom_labels(labels)}"
                        f" {_prom_value(sample['stddev'])}"
                    )
            if stddev_lines:
                lines.append(f"# TYPE {base}_stddev gauge")
                lines.extend(stddev_lines)
        else:
            raise ValueError(f"cannot export sample of type {kind!r}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry, path: str) -> None:
    _ensure_parent_dir(path)
    with open(path, "w") as fh:
        fh.write(prometheus_text(registry))


# ----------------------------------------------------------------------
# Artifact sniffing
# ----------------------------------------------------------------------


def load_artifact(path: str) -> Tuple[str, Any]:
    """Load any exported telemetry artifact; returns ``(kind, data)``.

    Kinds: ``metrics`` (samples dict), ``trace`` (span dicts),
    ``journal`` (event dicts), ``chrome`` (trace-event payload),
    ``coverage`` (``repro coverage --json`` output).
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty artifact")
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict):
            if "traceEvents" in payload:
                return "chrome", payload
            if payload.get("type") == "coverage":
                return "coverage", payload
            if all(isinstance(v, dict) and "type" in v for v in payload.values()):
                return "metrics", payload
    # JSONL: one object per line
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    types = {r.get("type") for r in records}
    if types <= {"span"}:
        return "trace", records
    if types <= {"event", "journal_summary"}:
        return "journal", records
    if types <= {"chain_step", "chain_trace"}:
        return "journal", records
    raise ValueError(f"{path}: unrecognized artifact (record types {sorted(types)})")


# ----------------------------------------------------------------------
# The `repro stats` dashboard
# ----------------------------------------------------------------------


def _counter(samples: Dict[str, dict], name: str) -> float:
    return samples.get(name, {}).get("value", 0)


def _sample_quantile(sample: dict, q: float) -> float:
    """Quantile estimate from an exported histogram sample dict —
    mirrors :meth:`repro.telemetry.metrics.Histogram.quantile`."""
    count = sample.get("count", 0)
    if not count:
        return 0.0
    lo = sample.get("min")
    hi = sample.get("max")
    if q == 0.0:
        return lo if lo is not None else 0.0
    target = q * count
    cumulative = 0
    previous_bound = lo if lo is not None else 0.0
    for bucket in sample.get("buckets", []):
        bound = bucket["le"]
        in_bucket = bucket["count"]
        if bound == "+Inf":
            break
        bound = float(bound)
        if cumulative + in_bucket >= target:
            lower = min(previous_bound, bound)
            fraction = (target - cumulative) / in_bucket
            estimate = lower + (bound - lower) * fraction
            if lo is not None:
                estimate = max(estimate, lo)
            if hi is not None:
                estimate = min(estimate, hi)
            return estimate
        cumulative += in_bucket
        previous_bound = bound
    return hi if hi is not None else previous_bound


def _fmt_rate(num: float, den: float) -> str:
    return f"{num / den:.2%}" if den else "n/a"


#: Label names carrying *dimension* cardinality (hot mnemonics, attack
#: cells, ...) rather than *request scope* — excluded when grouping
#: samples into per-context slices.
_DIMENSION_LABELS = frozenset(
    ("mnemonic", "addr", "head", "attack", "rule", "overflow", "le")
)


def _stats_context_slices(samples: Dict[str, dict]) -> List[str]:
    """Per-request-context rollup: one row per distinct label set.

    A slice is defined by the sample's request-scope labels (anything
    other than the known dimension labels).  For each slice, show a few
    headline totals so ``repro stats`` answers "who did what" when a
    run mixed labeled contexts.
    """
    slices: Dict[Tuple[Tuple[str, str], ...], Dict[str, float]] = {}
    for key, sample in samples.items():
        name, labels = _sample_identity(key, sample)
        scope = tuple(
            sorted(
                (k, v) for k, v in labels.items() if k not in _DIMENSION_LABELS
            )
        )
        if not scope:
            continue
        bucket = slices.setdefault(scope, {})
        if sample.get("type") in ("counter", "gauge"):
            bucket[name] = bucket.get(name, 0) + sample.get("value", 0)
        elif sample.get("type") == "histogram":
            bucket[name] = bucket.get(name, 0) + sample.get("count", 0)
    if not slices:
        return []
    lines = ["context slices"]
    headline = (
        ("protect.runs", "protects"),
        ("attacks.evaluated", "attacks"),
        ("emu.instructions", "instructions"),
        ("pipeline.tasks", "tasks"),
    )
    for scope in sorted(slices):
        rendered = ",".join(f"{k}={v}" for k, v in scope)
        totals = slices[scope]
        shown = [
            f"{label} {int(totals[name]):,}"
            for name, label in headline
            if name in totals
        ]
        if not shown:
            top = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
            shown = [f"{name} {int(value):,}" for name, value in top[:3]]
        lines.append(f"  {{{rendered}}}")
        lines.append(f"    {'  '.join(shown)}")
    return lines


def _stats_metrics(samples: Dict[str, dict]) -> List[str]:
    lines: List[str] = []

    # -- engine block cache -------------------------------------------
    compiled = _counter(samples, "emu.blocks.compiled")
    hits = _counter(samples, "emu.blocks.hits")
    epoch_hits = _counter(samples, "emu.blocks.epoch_hits")
    page_revals = _counter(samples, "emu.blocks.page_revalidations")
    invalidated = _counter(samples, "emu.blocks.invalidated")
    write_aborts = _counter(samples, "emu.blocks.write_aborts")
    if compiled or hits:
        lines.append("engine block cache")
        lines.append(f"  blocks compiled            {int(compiled):>12,}")
        lines.append(
            f"  block-cache hits           {int(hits):>12,}"
            f"   (hit rate {_fmt_rate(hits, hits + compiled)})"
        )
        lines.append(f"    tier-1 epoch fast-path   {int(epoch_hits):>12,}")
        lines.append(f"    tier-2 page revalidated  {int(page_revals):>12,}")
        lines.append("  invalidations")
        lines.append(f"    tier-2 page-version      {int(invalidated):>12,}")
        lines.append(f"    tier-3 in-block store    {int(write_aborts):>12,}")

    # -- memory fast/slow paths ---------------------------------------
    fast_loads = _counter(samples, "emu.mem.fast_loads")
    slow_loads = _counter(samples, "emu.mem.slow_loads")
    fast_stores = _counter(samples, "emu.mem.fast_stores")
    slow_stores = _counter(samples, "emu.mem.slow_stores")
    if fast_loads or slow_loads or fast_stores or slow_stores:
        lines.append("memory paths")
        lines.append(
            f"  loads  fast {int(fast_loads):>12,} / slow {int(slow_loads):>10,}"
            f"   (fast {_fmt_rate(fast_loads, fast_loads + slow_loads)})"
        )
        lines.append(
            f"  stores fast {int(fast_stores):>12,} / slow {int(slow_stores):>10,}"
            f"   (fast {_fmt_rate(fast_stores, fast_stores + slow_stores)})"
        )

    # -- chains & attacks ---------------------------------------------
    evaluated = _counter(samples, "attacks.evaluated")
    detected = _counter(samples, "attacks.detected")
    undetected = _counter(samples, "attacks.undetected")
    traced = _counter(samples, "chains.traced")
    attributed = _counter(samples, "chains.corruptions_attributed")
    if evaluated or traced:
        lines.append("chain corruption attribution")
        if evaluated:
            lines.append(
                f"  attacks evaluated          {int(evaluated):>12,}"
                f"   (detected {int(detected):,}, undetected {int(undetected):,})"
            )
        if traced:
            lines.append(
                f"  chain runs traced          {int(traced):>12,}"
                f"   (corruptions attributed {int(attributed):,})"
            )

    # -- detection latency --------------------------------------------
    latency_rows = []
    for name in ("attacks.cycles_to_corruption", "attacks.cycles_to_detection"):
        sample = samples.get(name)
        if sample is not None and sample.get("type") == "histogram":
            latency_rows.append((name.rsplit(".", 1)[-1], sample))
    # Per attack x rule cells: labeled series on the family (current),
    # with dotted-suffix names still understood for older artifacts.
    cell_rows = []
    for key, sample in samples.items():
        if sample.get("type") != "histogram":
            continue
        name, labels = _sample_identity(key, sample)
        if name == "attacks.cycles_to_detection" and "attack" in labels:
            cell_rows.append(
                (f"{labels['attack']}.{labels.get('rule', '?')}", sample)
            )
        elif key.startswith("attacks.cycles_to_detection.") and not labels:
            cell_rows.append(
                (key[len("attacks.cycles_to_detection."):], sample)
            )
    cells = sorted(cell_rows)
    if latency_rows or cells:
        lines.append("detection latency (emulated cycles from tamper)")
        for label, sample in latency_rows:
            lines.append(
                f"  {label:<22} n={sample['count']:<5}"
                f" mean={sample['mean']:>12,.0f}"
                f" p50={_sample_quantile(sample, 0.5):>12,.0f}"
                f" p90={_sample_quantile(sample, 0.9):>12,.0f}"
                f" max={sample['max'] or 0:>12,.0f}"
            )
        if cells:
            lines.append("  per attack x rule cell")
            for cell, sample in cells:
                lines.append(
                    f"    {cell:<28} n={sample['count']:<4}"
                    f" mean={sample['mean']:>12,.0f}"
                    f" max={sample['max'] or 0:>12,.0f}"
                )

    # -- hottest mnemonics --------------------------------------------
    def _hot_series(family: str, label: str, legacy_prefix: str):
        rows = []
        for key, sample in samples.items():
            if sample.get("type") != "counter":
                continue
            name, labels = _sample_identity(key, sample)
            if name == family and label in labels:
                rows.append((labels[label], sample["value"]))
            elif key.startswith(legacy_prefix) and not labels:
                rows.append((key[len(legacy_prefix):], sample["value"]))
        return sorted(rows, key=lambda pair: (-pair[1], pair[0]))

    hot = _hot_series("emu.hot.mnemonic", "mnemonic", "emu.hot.mnemonic.")
    if hot:
        total = sum(count for _, count in hot)
        lines.append("hottest mnemonics (top 10)")
        for mnemonic, count in hot[:10]:
            lines.append(
                f"  {mnemonic:<8} {int(count):>14,}   ({_fmt_rate(count, total)})"
            )
    hot_blocks = _hot_series("emu.hot.block", "addr", "emu.hot.block.")
    if hot_blocks:
        lines.append("hottest blocks (executions)")
        for addr, count in hot_blocks[:10]:
            lines.append(f"  {addr:<12} {int(count):>12,}")
    hot_traces = _hot_series("emu.hot.trace", "head", "emu.hot.trace.head.")
    if hot_traces:
        lines.append("hottest traces (dispatches)")
        for addr, count in hot_traces[:10]:
            lines.append(f"  {addr:<12} {int(count):>12,}")
    traces_compiled = _counter(samples, "emu.hot.trace.compiled")
    traces_retired = _counter(samples, "emu.hot.trace.retired")
    trace_fallbacks = _counter(samples, "emu.hot.trace.side_exit_fallbacks")
    if traces_compiled or traces_retired or trace_fallbacks:
        lines.append("trace engine")
        lines.append(
            f"  traces compiled            {int(traces_compiled):>12,}"
        )
        lines.append(
            f"  insns retired in traces    {int(traces_retired):>12,}"
        )
        lines.append(
            f"  cold side-exit fallbacks   {int(trace_fallbacks):>12,}"
        )

    # -- run totals ----------------------------------------------------
    instructions = _counter(samples, "emu.instructions")
    cycles = _counter(samples, "emu.cycles")
    if instructions:
        lines.append("run totals")
        lines.append(f"  emulated instructions      {int(instructions):>12,}")
        lines.append(f"  emulated cycles            {int(cycles):>12,}")
        mispredicts = _counter(samples, "emu.ret_mispredicts")
        lines.append(f"  return mispredicts         {int(mispredicts):>12,}")

    lines.extend(_stats_context_slices(samples))

    if not lines:
        lines.append(f"(no engine/chain samples among {len(samples)} instruments)")
    return lines


def _stats_spans(records: List[dict]) -> List[str]:
    by_name: Dict[str, List[float]] = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(
            record.get("duration_s", 0.0)
        )
    lines = [f"spans: {len(records)} across {len(by_name)} names"]
    ranked = sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    )
    lines.append(f"  {'name':<24} {'count':>7} {'total s':>10} {'mean s':>10}")
    for name, durations in ranked[:10]:
        total = sum(durations)
        lines.append(
            f"  {name:<24} {len(durations):>7} {total:>10.4f}"
            f" {total / len(durations):>10.6f}"
        )
    return lines


def _stats_journal(records: List[dict]) -> List[str]:
    events = [r for r in records if r.get("type") == "event"]
    summary = next(
        (r for r in records if r.get("type") == "journal_summary"), None
    )
    kinds: Dict[str, int] = {}
    for event in events:
        kinds[event.get("kind", "?")] = kinds.get(event.get("kind", "?"), 0) + 1
    lines = [f"journal: {len(events)} events retained"]
    if summary is not None:
        lines[0] += (
            f" ({summary.get('recorded', len(events))} recorded,"
            f" {summary.get('dropped', 0)} dropped)"
        )
    for kind in sorted(kinds, key=lambda k: (-kinds[k], k)):
        lines.append(f"  {kind:<18} {kinds[kind]:>8,}")
    if events:
        span = events[-1].get("ts", 0.0) - events[0].get("ts", 0.0)
        lines.append(f"  time span          {span:>8.3f}s")
    return lines


def _stats_chrome(payload: dict) -> List[str]:
    events = [e for e in payload.get("traceEvents", []) if e.get("ph") == "X"]
    spans = [
        {"name": e["name"], "duration_s": e.get("dur", 0.0) / 1e6}
        for e in events
    ]
    return [f"chrome trace: {len(events)} complete events"] + _stats_spans(spans)[1:]


def _stats_coverage(payload: dict) -> List[str]:
    lines = [
        f"coverage: {payload.get('program', '?')} "
        f"[{payload.get('strategy', '?')}]",
        f"  protected bytes   {payload.get('protected_bytes', 0):>12,}",
        f"  covered bytes     {payload.get('covered_bytes', 0):>12,}"
        f"   ({payload.get('coverage_fraction', 0.0):.1%})",
        f"  overlap density   {payload.get('overlap_density', 0.0):>12.2f}"
        f"   chains/byte",
        f"  SPOF bytes        {payload.get('spof_bytes', 0):>12,}",
        f"  uncovered bytes   {payload.get('uncovered_bytes', 0):>12,}"
        f"   in {len(payload.get('uncovered_regions', []))} region(s)",
    ]
    breakdown = payload.get("rule_breakdown") or {}
    for rule in sorted(breakdown):
        lines.append(f"    via {rule:<20} {breakdown[rule]:>8,} bytes")
    functions = payload.get("functions") or []
    if functions:
        ranked = sorted(functions, key=lambda f: f["coverage_fraction"])
        lines.append(
            f"  {len(functions)} function(s) with protected bytes;"
            f" least covered:"
        )
        for fc in ranked[:5]:
            lines.append(
                f"    {fc['name']:<20} {fc['coverage_fraction']:>7.1%}"
                f"   ({fc['covered_bytes']}/{fc['protected_bytes']} bytes,"
                f" {fc['spof_bytes']} SPOF)"
            )
    return lines


def render_stats(kind: str, data) -> str:
    """Human dashboard for one loaded artifact (see :func:`load_artifact`)."""
    if kind == "metrics":
        lines = _stats_metrics(data)
    elif kind == "trace":
        lines = _stats_spans(data)
    elif kind == "journal":
        lines = _stats_journal(data)
    elif kind == "chrome":
        lines = _stats_chrome(data)
    elif kind == "coverage":
        lines = _stats_coverage(data)
    else:
        raise ValueError(f"unknown artifact kind {kind!r}")
    return "\n".join(lines)
