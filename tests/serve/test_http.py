"""HTTP framing unit tests (no sockets: StreamReader fed directly)."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpError,
    MAX_BODY_BYTES,
    json_response,
    parse_response,
    read_request,
    response_bytes,
)


def read(raw: bytes):
    async def body():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(body())


def test_parses_post_with_body():
    payload = json.dumps({"program": "gzip"}).encode()
    raw = (
        b"POST /protect HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(payload)).encode() + b"\r\n\r\n"
    ) + payload
    request = read(raw)
    assert request.method == "POST"
    assert request.path == "/protect"
    assert request.json() == {"program": "gzip"}
    assert request.keep_alive


def test_parses_get_with_query():
    request = read(b"GET /journal?request=r1&tenant=acme HTTP/1.1\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/journal"
    assert request.query == {"request": "r1", "tenant": "acme"}
    assert request.json() == {}


def test_connection_close_header():
    request = read(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not request.keep_alive


def test_clean_eof_returns_none():
    assert read(b"") is None


def test_truncated_request_is_400():
    with pytest.raises(HttpError) as err:
        read(b"GET / HT")
    assert err.value.status == 400


def test_malformed_request_line_is_400():
    with pytest.raises(HttpError) as err:
        read(b"NONSENSE\r\n\r\n")
    assert err.value.status == 400


def test_malformed_header_is_400():
    with pytest.raises(HttpError) as err:
        read(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")
    assert err.value.status == 400


def test_oversized_body_is_413():
    raw = (
        b"POST /protect HTTP/1.1\r\nContent-Length: "
        + str(MAX_BODY_BYTES + 1).encode()
        + b"\r\n\r\n"
    )
    with pytest.raises(HttpError) as err:
        read(raw)
    assert err.value.status == 413


def test_negative_content_length_is_400():
    with pytest.raises(HttpError) as err:
        read(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
    assert err.value.status == 400


def test_invalid_json_body_is_400():
    raw = b"POST /protect HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot"
    request = read(raw)
    with pytest.raises(HttpError) as err:
        request.json()
    assert err.value.status == 400


def test_non_object_json_body_is_400():
    raw = b"POST /protect HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]"
    request = read(raw)
    with pytest.raises(HttpError) as err:
        request.json()
    assert err.value.status == 400


def test_response_roundtrip_through_client_parser():
    raw = json_response(
        429, {"error": "slow down"}, {"Retry-After": "3"}, keep_alive=False
    )
    head, _, body = raw.partition(b"\r\n\r\n")
    status, headers = parse_response(head + b"\r\n\r\n", body)
    assert status == 429
    assert headers["retry-after"] == "3"
    assert headers["connection"] == "close"
    assert int(headers["content-length"]) == len(body)
    assert json.loads(body) == {"error": "slow down"}


def test_response_bytes_content_length_is_exact():
    body = b"x" * 1234
    raw = response_bytes(200, body, "text/plain")
    head, _, got = raw.partition(b"\r\n\r\n")
    assert got == body
    assert b"Content-Length: 1234" in head
    assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
