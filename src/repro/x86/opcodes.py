"""Shared opcode tables used by both the encoder and the decoder.

Only the integer IA-32 subset emitted by our corpus generator (and needed
by the Parallax rewriting rules) is covered.  The tables follow the layout
of the Intel SDM one-byte and two-byte opcode maps.
"""

#: Group-1 arithmetic mnemonics indexed by opcode-block / modrm digit.
ARITH = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")

#: Condition-code suffix order for jcc/setcc, indexed by the low opcode nibble.
CC_NAMES = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)

JCC_MNEMONICS = tuple("j" + cc for cc in CC_NAMES)
SETCC_MNEMONICS = tuple("set" + cc for cc in CC_NAMES)

#: Shift-group digits (0xc0/0xc1/0xd0-0xd3 /digit).
SHIFT_DIGITS = {4: "shl", 5: "shr", 7: "sar"}
SHIFT_DIGIT_OF = {"shl": 4, "shr": 5, "sar": 7}

#: Group-3 (0xf6/0xf7) digits.
GRP3_DIGITS = {0: "test", 2: "not", 3: "neg", 4: "mul", 5: "imul", 6: "div", 7: "idiv"}
GRP3_DIGIT_OF = {v: k for k, v in GRP3_DIGITS.items() if v != "test"}

#: Group-5 (0xff) digits.
GRP5_DIGITS = {0: "inc", 1: "dec", 2: "call", 4: "jmp", 6: "push"}

#: Digit used when a group-1 mnemonic is encoded via 0x80/0x81/0x83.
ARITH_DIGIT_OF = {name: i for i, name in enumerate(ARITH)}

#: Single-byte opcodes with no operands.
SIMPLE = {
    0x27: "daa",
    0x2F: "das",
    0x37: "aaa",
    0x3F: "aas",
    0x60: "pushad",
    0x61: "popad",
    0x90: "nop",
    0x98: "cwde",
    0x99: "cdq",
    0x9B: "fwait",
    0x9C: "pushfd",
    0x9D: "popfd",
    0x9E: "sahf",
    0x9F: "lahf",
    0xA4: "movsb",
    0xA5: "movsd",
    0xA6: "cmpsb",
    0xA7: "cmpsd",
    0xAA: "stosb",
    0xAB: "stosd",
    0xAC: "lodsb",
    0xAD: "lodsd",
    0xAE: "scasb",
    0xAF: "scasd",
    0xC3: "ret",
    0xC9: "leave",
    0xCB: "retf",
    0xCC: "int3",
    0xCE: "into",
    0xF4: "hlt",
    0xF5: "cmc",
    0xF8: "clc",
    0xF9: "stc",
    0xFA: "cli",
    0xFB: "sti",
    0xFC: "cld",
    0xFD: "std",
}

#: push/pop of segment registers: opcode -> (mnemonic, segment name).
SEGMENT_OPS = {
    0x06: ("push", "es"),
    0x07: ("pop", "es"),
    0x0E: ("push", "cs"),
    0x16: ("push", "ss"),
    0x17: ("pop", "ss"),
    0x1E: ("push", "ds"),
    0x1F: ("pop", "ds"),
}

#: Mnemonics the decoder accepts but the emulator refuses to execute
#: (and the classifier treats as chain-unusable).  They exist so that
#: unaligned gadget discovery sees a realistically dense opcode map.
DECODE_ONLY = frozenset(
    {
        "daa", "das", "aaa", "aas", "cwde", "fwait", "pushfd", "popfd",
        "sahf", "lahf", "cmpsb", "cmpsd", "scasb", "scasd", "into",
        "cmc", "clc", "stc", "cli", "sti", "cld", "std",
        "fpu", "enter", "mov_seg", "push_seg", "pop_seg", "bound",
        "arpl", "loopne", "loope", "loop", "jecxz", "salc", "xlat",
        "les", "lds", "aam", "aad", "in", "out", "callf", "jmpf",
        "iretd", "bt", "bts", "btr", "btc", "shld", "shrd", "bswap",
        "cpuid", "rdtsc", "movsb", "movsd", "stosb", "stosd", "lodsb",
        "lodsd",
    }
)
SIMPLE_OF = {v: k for k, v in SIMPLE.items()}

#: Opcode byte values that matter to the rewriting rules.
RET_OPCODE = 0xC3
RETF_OPCODE = 0xCB
RET_IMM16_OPCODE = 0xC2
RETF_IMM16_OPCODE = 0xCA

#: All opcode bytes that can terminate a gadget.
GADGET_TERMINATORS = frozenset({RET_OPCODE, RETF_OPCODE, RET_IMM16_OPCODE, RETF_IMM16_OPCODE})
