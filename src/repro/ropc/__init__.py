"""ROP compiler substrate: IR, native backend, chains, ROP backend."""

from . import ir
from .chain import (
    ChainError,
    ChainLabel,
    ConstWord,
    DeltaWord,
    FAR_PAD,
    KindWord,
    LabelWord,
    MissingGadget,
    RopChain,
)
from .compiler import ARG_BASE_OFFSET, PUSHAD_EAX_OFFSET, RopCompileError, RopCompiler
from .interpreter import Interpreter, InterpreterError, IRMemory
from .nativegen import CodegenOptions, NativeCompiler, compile_functions
from .standard import StandardGadgetError, emit_standard_gadgets

__all__ = [
    "ir",
    "ChainError", "ChainLabel", "ConstWord", "DeltaWord", "FAR_PAD",
    "KindWord", "LabelWord", "MissingGadget", "RopChain",
    "ARG_BASE_OFFSET", "PUSHAD_EAX_OFFSET", "RopCompileError", "RopCompiler",
    "Interpreter", "InterpreterError", "IRMemory",
    "CodegenOptions", "NativeCompiler", "compile_functions",
    "StandardGadgetError", "emit_standard_gadgets",
]
