"""§VI-C chain guards — the paper's proposed future work, implemented.

Verification chains live in data memory, so they can be protected by
traditional checksumming *without* exposure to the Wurster attack (the
attack splits the I-view from the D-view; the guarded bytes are only
ever read as data).
"""

import pytest

from repro.attacks import run_with_icache_patches
from repro.binary import Patch
from repro.core import Parallax, ProtectConfig


@pytest.fixture(scope="module", params=["cleartext", "xor", "rc4", "linear"])
def guarded(request, small_wget):
    config = ProtectConfig(
        strategy=request.param,
        verification_functions=["digest_wget"],
        guard_chains=True,
    )
    return Parallax(config).protect(small_wget)


def _chain_blob_section(image):
    return (
        image.section(".ropcenc")
        if image.has_section(".ropcenc")
        else image.section(".ropchains")
    )


def test_guarded_behaviour_preserved(guarded, small_wget_baseline):
    result = guarded.run()
    assert not result.crashed
    assert result.stdout == small_wget_baseline.stdout


def test_guard_detects_chain_tampering(guarded):
    image = guarded.image.clone()
    section = _chain_blob_section(image)
    section.data[3] ^= 0xFF
    result = guarded.run(image=image)
    assert result.exit_status == 66  # the guard's tamper response


def test_guard_detects_decryptor_tampering(guarded):
    image = guarded.image.clone()
    section = image.section(".parallaxrt")
    section.data[40] ^= 0xFF
    result = guarded.run(image=image)
    assert result.crashed or result.exit_status == 66


def test_guard_immune_to_wurster(guarded):
    """The point of §VI-C: an I-view patch of the guarded DATA bytes is
    irrelevant — the data view (what the guard reads AND what the
    decryptor consumes) is untouched, so the program runs correctly."""
    image = guarded.image
    section = _chain_blob_section(image)
    old = image.read(section.vaddr + 3, 1)
    patch = Patch(section.vaddr + 3, old, bytes([old[0] ^ 0xFF]))
    run = run_with_icache_patches(image, [patch])
    assert not run.crashed
    assert run.exit_status != 66


def test_guard_note_in_report(guarded):
    assert any("VI-C" in note for note in guarded.report.notes)
