"""Checksumming and oblivious-hashing baselines."""

import pytest

from repro.attacks import evaluate_patch_attack, run_with_icache_patches, stub_out_function
from repro.baselines import ChecksummedProgram, OHProgram


@pytest.fixture(scope="module")
def gzip_small():
    from repro.corpus import build_gzip
    return build_gzip(blocks=2, positions=6)


@pytest.fixture(scope="module")
def gzip_baseline(gzip_small):
    return gzip_small.run()


@pytest.fixture(scope="module")
def checksummed(gzip_small):
    return ChecksummedProgram(gzip_small, guards=3)


def test_checksummed_behaviour_preserved(checksummed, gzip_baseline):
    result = checksummed.run()
    assert not result.crashed
    assert result.stdout == gzip_baseline.stdout


def test_checksumming_detects_static_tamper(checksummed, gzip_baseline):
    patch = stub_out_function(checksummed.image, "checksum_words", 0)
    outcome = evaluate_patch_attack(checksummed.image, [patch], gzip_baseline, "static")
    assert outcome.detected
    assert outcome.run.exit_status == 66  # the guard fired


def test_wurster_defeats_checksumming(checksummed, gzip_baseline):
    """The headline negative result: i-cache tampering sails through."""
    patch = stub_out_function(checksummed.image, "lz_match_len", 0)
    run = run_with_icache_patches(checksummed.image, [patch])
    assert not run.crashed
    assert run.exit_status != 66          # guards never fire
    assert run.stdout != gzip_baseline.stdout  # yet tampered code ran


@pytest.fixture(scope="module")
def oh_protected(gzip_small):
    return OHProgram(gzip_small, instrument=["checksum_words"])


def test_oh_behaviour_preserved(oh_protected, gzip_baseline):
    result = oh_protected.run()
    assert not result.crashed
    assert result.stdout == gzip_baseline.stdout
    assert result.exit_status == gzip_baseline.exit_status


def test_oh_detects_tampering(oh_protected, gzip_baseline):
    patch = stub_out_function(oh_protected.image, "checksum_words", 0)
    outcome = evaluate_patch_attack(oh_protected.image, [patch], gzip_baseline, "oh")
    assert outcome.detected
    assert outcome.run.exit_status == 66


def test_oh_survives_wurster(oh_protected, gzip_baseline):
    """OH hashes execution state, so the i-cache attack IS caught."""
    patch = stub_out_function(oh_protected.image, "checksum_words", 0)
    run = run_with_icache_patches(oh_protected.image, [patch])
    assert run.exit_status == 66


def test_oh_cannot_protect_nondeterministic_code():
    """Instrumenting ptrace_detect makes the hash depend on the
    debugger: the check false-positives on the honest traced run —
    the exact limitation Parallax does not have (§VII/§IX)."""
    from repro.corpus import build_wget
    program = build_wget(blocks=1, chunks=2)
    oh = OHProgram(program, instrument=["ptrace_detect"])
    clean = oh.run()
    assert clean.exit_status == program.run().exit_status  # trained path fine
    traced = oh.run(debugger_attached=True)
    assert traced.exit_status == 66       # false positive: untampered abort
