"""Single-flight semantics: the invariants the serving layer rests on."""

import asyncio

import pytest

from repro.serve.singleflight import FOLLOWER, LEADER, SingleFlight


def run(coro):
    return asyncio.run(coro)


def test_concurrent_identical_requests_compute_exactly_once():
    async def body():
        sf = SingleFlight()
        calls = []

        async def compute():
            calls.append(1)
            await asyncio.sleep(0.01)
            return {"value": 42}

        results = await asyncio.gather(
            *(sf.run("key", compute) for _ in range(25))
        )
        return calls, results, sf

    calls, results, sf = run(body())
    assert len(calls) == 1
    roles = [role for _value, role in results]
    assert roles.count(LEADER) == 1
    assert roles.count(FOLLOWER) == 24
    # Everyone gets the leader's object — literally the same one.
    values = [value for value, _role in results]
    assert all(value is values[0] for value in values)
    assert sf.leaders == 1 and sf.followers == 24
    assert len(sf) == 0


def test_sequential_requests_each_lead():
    async def body():
        sf = SingleFlight()
        calls = []

        async def compute():
            calls.append(1)
            return len(calls)

        first = await sf.run("key", compute)
        second = await sf.run("key", compute)
        return calls, first, second

    calls, first, second = run(body())
    assert len(calls) == 2
    assert first == (1, LEADER)
    assert second == (2, LEADER)


def test_distinct_keys_do_not_coalesce():
    async def body():
        sf = SingleFlight()
        calls = []

        async def compute_for(key):
            calls.append(key)
            await asyncio.sleep(0.01)
            return key

        results = await asyncio.gather(
            *(sf.run(f"k{i}", lambda i=i: compute_for(f"k{i}")) for i in range(5))
        )
        return calls, results

    calls, results = run(body())
    assert sorted(calls) == [f"k{i}" for i in range(5)]
    assert all(role == LEADER for _value, role in results)


def test_leader_failure_propagates_and_does_not_poison():
    async def body():
        sf = SingleFlight()
        attempts = []

        async def failing():
            attempts.append(1)
            await asyncio.sleep(0.01)
            raise RuntimeError("boom")

        outcomes = await asyncio.gather(
            *(sf.run("key", failing) for _ in range(8)),
            return_exceptions=True,
        )
        # Every waiter — leader and followers — sees the same failure.
        assert len(attempts) == 1
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert len(sf) == 0  # key removed: the table is not poisoned

        async def healthy():
            return "recovered"

        value, role = await sf.run("key", healthy)
        return value, role

    value, role = run(body())
    assert (value, role) == ("recovered", LEADER)


def test_cancelled_follower_does_not_tear_down_shared_work():
    async def body():
        sf = SingleFlight()
        started = asyncio.Event()

        async def compute():
            started.set()
            await asyncio.sleep(0.05)
            return "done"

        leader_task = asyncio.ensure_future(sf.run("key", compute))
        await started.wait()
        follower_task = asyncio.ensure_future(sf.run("key", compute))
        await asyncio.sleep(0.01)
        follower_task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await follower_task
        return await leader_task

    assert run(body()) == ("done", LEADER)


def test_cancelled_leader_waiter_still_serves_followers():
    """Even the *leader's request* dying must not kill the computation:
    it runs in its own task and followers depend on it."""

    async def body():
        sf = SingleFlight()
        started = asyncio.Event()

        async def compute():
            started.set()
            await asyncio.sleep(0.05)
            return "survived"

        leader_task = asyncio.ensure_future(sf.run("key", compute))
        await started.wait()
        follower_task = asyncio.ensure_future(sf.run("key", compute))
        await asyncio.sleep(0.01)
        leader_task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await leader_task
        return await follower_task

    assert run(body()) == ("survived", FOLLOWER)


def test_is_inflight_tracks_lifecycle():
    async def body():
        sf = SingleFlight()
        release = asyncio.Event()

        async def compute():
            await release.wait()
            return 1

        task = asyncio.ensure_future(sf.run("key", compute))
        await asyncio.sleep(0.01)
        assert sf.is_inflight("key")
        release.set()
        await task
        assert not sf.is_inflight("key")

    run(body())
