"""Metrics registry: counters, gauges, histograms, wall-clock timers.

The registry is the machine-readable counterpart of the ad-hoc
``summary()``/``report()`` strings scattered through the pipeline.  All
instruments are cheap dictionaries of plain numbers; exporting them is
a single JSON dump, so every benchmark and CLI run can leave a metrics
artifact behind.

Design constraints (see DESIGN.md §Observability):

* **No-op fast path.**  A disabled registry hands out shared null
  instruments whose methods do nothing, so instrumented code pays one
  attribute call and nothing else.  The process-wide default registry
  starts *disabled*; :func:`configure` switches it on.
* **Monotonic timing.**  Timers use :func:`time.perf_counter`, never
  wall-clock time, so measured durations cannot go backwards.
* **Explicit buckets.**  Histograms take explicit upper bounds
  (``le`` semantics, like Prometheus): an observation lands in the
  first bucket whose bound is >= the value, else in the +Inf overflow.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMER",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_CYCLE_BUCKETS",
]

#: Default histogram buckets for durations in seconds (1µs .. 30s).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Default buckets for size-ish quantities (words, bytes, counts).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)

#: Default buckets for emulated-cycle latencies (detection latency
#: spans from "next gadget dispatch" to "most of the run").
DEFAULT_CYCLE_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)


def _ensure_parent_dir(path: str) -> None:
    """Create the parent directory of ``path`` if it is missing, so a
    long run never fails at export time over an absent output dir."""
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Distribution with explicit bucket upper bounds (``le`` semantics).

    ``le`` semantics means each bound is an *inclusive upper* bound,
    exactly like Prometheus: an observation ``v`` lands in the first
    bucket with ``v <= bound``.  Unlike Prometheus exports, the
    internal ``counts`` are **not cumulative** — ``counts[i]`` holds
    only observations that fit ``buckets[i]`` and no earlier bound,
    and the final extra slot is the +Inf overflow.  (Exporters that
    need Prometheus's cumulative series build a running sum.)

    Alongside ``sum`` the histogram tracks ``sum_sq`` (the sum of
    squared observations) so exports can derive a streaming standard
    deviation without retaining samples.
    """

    __slots__ = (
        "name",
        "help",
        "buckets",
        "counts",
        "count",
        "sum",
        "sum_sq",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
        help: str = "",
    ):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.sum_sq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation from the streaming moments."""
        if not self.count:
            return 0.0
        mean = self.sum / self.count
        variance = self.sum_sq / self.count - mean * mean
        # Floating-point cancellation can push tiny variances negative.
        return variance ** 0.5 if variance > 0.0 else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from bucket counts.

        Linear interpolation inside the bucket that holds the target
        rank, like Prometheus's ``histogram_quantile``: observations
        are assumed uniform between a bucket's lower and upper bound.
        The +Inf overflow bucket and the extreme buckets are clamped
        to the tracked ``min``/``max``, so estimates never leave the
        observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min if self.min is not None else 0.0
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            in_bucket = self.counts[index]
            if cumulative + in_bucket >= target:
                lower = self.buckets[index - 1] if index else (
                    self.min if self.min is not None else 0.0
                )
                lower = min(lower, bound)
                fraction = (target - cumulative) / in_bucket
                estimate = lower + (bound - lower) * fraction
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += in_bucket
        # Target rank lies in the +Inf overflow: the best bound we have
        # is the largest observation.
        return self.max if self.max is not None else self.buckets[-1]

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) pairs; the last bound is +Inf."""
        pairs = list(zip(self.buckets, self.counts))
        pairs.append((float("inf"), self.counts[-1]))
        return pairs

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "sum_sq": self.sum_sq,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "stddev": self.stddev,
            "buckets": [
                {"le": bound if bound != float("inf") else "+Inf", "count": n}
                for bound, n in self.bucket_counts()
            ],
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class Timer:
    """Wall-clock timer over a histogram of seconds.

    Usable three ways::

        with registry.timer("protect.duration"):
            ...
        @registry.timer("find_gadgets.duration")
        def find(...): ...
        t = registry.timer("x"); handle = t.start(); ... ; handle.stop()

    All measurements use the monotonic :func:`time.perf_counter`.
    """

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._start: Optional[float] = None

    @property
    def name(self) -> str:
        return self.histogram.name

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"timer {self.name} was never started")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.histogram.observe(elapsed)
        return elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __call__(self, func: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                self.histogram.observe(time.perf_counter() - start)

        wrapper.__name__ = getattr(func, "__name__", "wrapped")
        wrapper.__doc__ = func.__doc__
        return wrapper


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def start(self) -> "Timer":
        return self

    def stop(self) -> float:
        return 0.0

    def __call__(self, func: Callable) -> Callable:
        return func


#: Shared no-op instruments handed out by disabled registries.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", buckets=(1.0,))
NULL_TIMER = _NullTimer(NULL_HISTOGRAM)


class MetricsRegistry:
    """Names -> instruments, with JSON/JSONL export.

    Instruments are created on first use and aggregated for the life of
    the registry; re-requesting a name returns the same instrument.
    A disabled registry returns the shared null instruments and records
    nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Counter(name, help)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Counter):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Gauge(name, help)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Gauge):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
        help: str = "",
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, buckets=buckets, help=help)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def timer(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
    ) -> Timer:
        if not self.enabled:
            return NULL_TIMER
        return Timer(self.histogram(name, buckets=buckets))

    # -- export ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str):
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        self._instruments.clear()

    def to_dict(self) -> dict:
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    # -- merging (parallel pipeline workers) ---------------------------

    def merge_samples(self, samples: Dict[str, dict]) -> None:
        """Fold exported samples (another registry's :meth:`to_dict`)
        into this registry.

        Used by the parallel protection pipeline to combine per-worker
        registries into one: counters add, gauges take the incoming
        value (workers are merged in deterministic input order, so the
        result is reproducible), histograms add per-bucket counts.
        A disabled registry ignores merges, matching its accessors.
        """
        if not self.enabled:
            return
        for name, sample in samples.items():
            kind = sample.get("type")
            if kind == "counter":
                self.counter(name).inc(int(sample["value"]))
            elif kind == "gauge":
                self.gauge(name).set(sample["value"])
            elif kind == "histogram":
                bounds = tuple(
                    float(b["le"]) for b in sample["buckets"] if b["le"] != "+Inf"
                )
                histogram = self.histogram(name, buckets=bounds or (1.0,))
                if histogram.buckets != bounds:
                    raise ValueError(
                        f"histogram {name}: bucket bounds differ, cannot merge"
                    )
                for index, bucket in enumerate(sample["buckets"]):
                    histogram.counts[index] += bucket["count"]
                histogram.count += sample["count"]
                histogram.sum += sample["sum"]
                histogram.sum_sq += sample.get("sum_sq", 0.0)
                for attr in ("min", "max"):
                    incoming = sample.get(attr)
                    if incoming is None:
                        continue
                    current = getattr(histogram, attr)
                    if current is None:
                        setattr(histogram, attr, incoming)
                    elif attr == "min":
                        setattr(histogram, attr, min(current, incoming))
                    else:
                        setattr(histogram, attr, max(current, incoming))
            else:
                raise ValueError(f"cannot merge sample of type {kind!r}")

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def iter_samples(self) -> Iterable[dict]:
        for name in sorted(self._instruments):
            yield self._instruments[name].to_dict()

    def write_jsonl(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            for sample in self.iter_samples():
                fh.write(json.dumps(sample, sort_keys=True))
                fh.write("\n")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state}, {len(self._instruments)} instruments>"
