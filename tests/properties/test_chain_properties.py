"""Property: random straight-line IR -> ROP chain == interpreter."""

from hypothesis import given, settings, strategies as st

from repro.binary import BinaryImage, Perm, Section
from repro.core.stubs import build_loader_stub
from repro.emu import Emulator
from repro.gadgets import GadgetCatalog
from repro.ropc import RopCompiler, emit_standard_gadgets, ir
from repro.ropc.interpreter import Interpreter
from repro.x86 import EAX, EBX, ECX, EDX

REGS = (EAX, EBX, ECX, EDX)
FRAME, RESUME, CHAIN, GADGETS, STUB = (
    0x8090000, 0x8090004, 0x8091000, 0x8060000, 0x8070000,
)

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("const"), st.sampled_from(REGS), st.integers(0, 0xFFFFFFFF)),
        st.tuples(st.just("mov"), st.sampled_from(REGS), st.sampled_from(REGS)),
        st.tuples(
            st.just("binop"),
            st.sampled_from(["add", "sub", "xor", "and", "or", "mul"]),
            st.sampled_from(REGS),
            st.sampled_from(REGS),
        ),
        st.tuples(st.just("shift"), st.sampled_from(["shl", "shr", "sar"]),
                  st.sampled_from(REGS), st.integers(0, 31)),
        st.tuples(st.just("unop"), st.sampled_from(["neg", "not"]), st.sampled_from(REGS)),
    ),
    min_size=1,
    max_size=12,
)


def build_function(spec):
    f = ir.IRFunction("f", params=1)
    f.emit(ir.Param(EBX, 0))
    for op in spec:
        if op[0] == "const":
            f.emit(ir.Const(op[1], op[2]))
        elif op[0] == "mov":
            f.emit(ir.Mov(op[1], op[2]))
        elif op[0] == "binop":
            f.emit(ir.BinOp(op[1], op[2], op[3]))
        elif op[0] == "shift":
            f.emit(ir.Shift(op[1], op[2], op[3]))
        elif op[0] == "unop":
            f.emit(ir.Neg(op[2]) if op[1] == "neg" else ir.Not(op[2]))
    f.emit(ir.Ret())
    return f


@settings(max_examples=30, deadline=None)
@given(ops_strategy, st.integers(0, 0xFFFFFFFF))
def test_chain_equals_interpreter(spec, arg):
    function = build_function(spec)
    expected = Interpreter().run(function, [arg])

    chain = RopCompiler(FRAME, RESUME).compile(function)
    gcode, gadgets = emit_standard_gadgets(chain.required_kinds(), base=GADGETS)
    payload = chain.resolve(GadgetCatalog(gadgets)).to_bytes(CHAIN)
    stub = build_loader_stub(STUB, FRAME, RESUME, CHAIN)

    img = BinaryImage("t")
    img.add_section(Section(".gadgets", GADGETS, gcode, Perm.RX))
    img.add_section(Section(".stub", STUB, stub.code, Perm.RX))
    img.add_section(Section(".ropdata", 0x8090000, bytes(64), Perm.RW))
    img.add_section(Section(".ropchains", CHAIN, payload, Perm.RW))
    emu = Emulator(img, max_steps=200_000)
    assert emu.call_function(STUB, [arg]) == expected
