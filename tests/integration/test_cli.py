"""The command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("wget", "gcc", "lame"):
        assert name in out


def test_run_gzip(capsys):
    assert main(["run", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "exit" in out and "cycles" in out


def test_run_with_debugger_refused(capsys):
    # wget refuses to run under a debugger (exit 99, still a clean exit)
    assert main(["run", "wget", "--debugger"]) == 0
    assert "99" in capsys.readouterr().out


def test_analyze(capsys):
    assert main(["analyze", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "near-ret%" in out and "gzip" in out


def test_unknown_program_rejected():
    with pytest.raises(SystemExit):
        main(["run", "notaprogram"])


@pytest.fixture
def cli_small_wget(monkeypatch, small_wget):
    """Route the CLI's program builder at the fast test corpus."""
    monkeypatch.setattr("repro.cli.build_program", lambda name: small_wget)


def test_protect_json_and_telemetry_files(capsys, tmp_path, cli_small_wget):
    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.jsonl"
    assert main([
        "protect", "wget", "--json",
        "--metrics", str(metrics_path), "--trace", str(trace_path),
    ]) == 0

    report = json.loads(capsys.readouterr().out)
    assert report["program"] == "wget"
    assert report["behaviour_preserved"] is True
    assert report["chains"] and report["chains"][0]["word_count"] > 0
    assert report["chains"][0]["gadget_addresses"]

    metrics = json.loads(metrics_path.read_text())
    assert metrics["gadgets.offsets_scanned"]["value"] > 0
    assert metrics["protect.chain_words"]["type"] == "histogram"
    assert metrics["protect.chain_words"]["count"] >= 1

    events = [json.loads(l) for l in trace_path.read_text().splitlines()]
    by_name = {e["name"]: e for e in events}
    assert {"protect", "find_gadgets", "compile_chain", "emit_chain"} <= set(by_name)
    # find_gadgets and emit_chain nest under protect
    assert by_name["find_gadgets"]["parent_id"] == by_name["protect"]["span_id"]
    assert by_name["emit_chain"]["parent_id"] == by_name["protect"]["span_id"]


def test_protect_metrics_to_stdout(capsys, cli_small_wget):
    assert main(["protect", "wget", "--metrics", "-"]) == 0
    out = capsys.readouterr().out
    # summary text first, then the metrics JSON object
    payload = json.loads(out[out.index("\n{") :])
    assert "protect.chains_emitted" in payload


def test_profile_prints_cycle_table(capsys, cli_small_wget):
    assert main(["profile", "wget"]) == 0
    out = capsys.readouterr().out
    assert "function" in out and "cycles" in out
    assert "checksum_words" in out
    # the engine hot-spot table rides along with the function table
    assert "engine hot spots" in out
    assert "mnemonic" in out


def test_protect_trace_to_stdout(capsys, cli_small_wget):
    assert main(["protect", "wget", "--trace", "-"]) == 0
    out = capsys.readouterr().out
    spans = []
    for line in out.splitlines():
        if line.startswith("{"):
            record = json.loads(line)
            assert record["type"] == "span"
            spans.append(record)
    names = {s["name"] for s in spans}
    assert {"protect", "find_gadgets", "emit_chain"} <= names
    assert all(s["duration_s"] >= 0 for s in spans)


def test_run_chrome_trace_is_valid_trace_event_json(tmp_path, capsys):
    path = tmp_path / "t.json"
    assert main(["run", "gzip", "--chrome-trace", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert events, "trace must not be empty"
    for event in events:
        assert "ph" in event and "pid" in event and "tid" in event
    complete = [e for e in events if e["ph"] == "X"]
    assert complete
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
    assert "emulate" in {e["name"] for e in complete}


def test_protect_journal_and_prom_files(tmp_path, capsys, cli_small_wget):
    journal_path = tmp_path / "j.jsonl"
    prom_path = tmp_path / "m.prom"
    assert main([
        "protect", "wget",
        "--journal", str(journal_path), "--prom", str(prom_path),
    ]) == 0
    capsys.readouterr()

    records = [json.loads(l) for l in journal_path.read_text().splitlines()]
    summaries = [r for r in records if r["type"] == "journal_summary"]
    assert len(summaries) == 1 and summaries[0]["recorded"] >= 1
    kinds = {r["kind"] for r in records if r["type"] == "event"}
    assert "protect" in kinds

    prom = prom_path.read_text()
    assert "# TYPE" in prom
    assert "emu_instructions_total" in prom
    assert '_bucket{le="+Inf"}' in prom


def test_stats_dashboard_over_metrics(tmp_path, capsys, cli_small_wget):
    metrics_path = tmp_path / "m.json"
    assert main(["protect", "wget", "--metrics", str(metrics_path)]) == 0
    capsys.readouterr()
    assert main(["stats", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert f"{metrics_path} [metrics]" in out
    assert "engine block cache" in out
    assert "hit rate" in out
    assert "tier-2 page-version" in out and "tier-3 in-block store" in out
    assert "hottest mnemonics (top 10)" in out
    assert "run totals" in out


def test_stats_rejects_unrecognized_artifacts_with_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("")
    missing = tmp_path / "missing.json"
    assert main(["stats", str(bad), str(missing)]) == 2
    err = capsys.readouterr().err
    # one line per artifact, naming the path and the expected kinds
    lines = [l for l in err.splitlines() if "not a recognized" in l]
    assert len(lines) == 2
    assert str(bad) in lines[0] and str(missing) in lines[1]
    for line in lines:
        for kind in ("metrics", "trace", "journal", "chrome", "coverage"):
            assert kind in line


def test_stats_good_artifact_still_renders_after_bad_one(
    tmp_path, capsys, cli_small_wget
):
    metrics_path = tmp_path / "m.json"
    assert main(["protect", "wget", "--metrics", str(metrics_path)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    assert main(["stats", str(bad), str(metrics_path)]) == 2
    captured = capsys.readouterr()
    assert f"{metrics_path} [metrics]" in captured.out
    assert str(bad) in captured.err


def test_coverage_human_output(capsys, cli_small_wget):
    assert main(["coverage", "wget"]) == 0
    out = capsys.readouterr().out
    assert "Coverage map: wget" in out
    assert "protected bytes" in out
    assert "covered bytes" in out
    assert "!SPOF" in out or "!UNCOVERED" in out
    assert "digest_wget" in out


def test_coverage_json_artifact_round_trips_through_stats(
    tmp_path, capsys, cli_small_wget
):
    out_path = tmp_path / "nested" / "dirs" / "coverage.json"
    assert main(["coverage", "wget", "--json", "--out", str(out_path)]) == 0
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(out_path.read_text())  # parent dirs created
    assert stdout_payload == file_payload
    assert file_payload["type"] == "coverage"
    assert file_payload["program"] == "wget"
    assert file_payload["covered_bytes"] > 0
    assert 0.0 < file_payload["coverage_fraction"] <= 1.0
    assert file_payload["byte_map"]

    assert main(["stats", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert f"{out_path} [coverage]" in out
    assert "protected bytes" in out


def test_export_flags_create_parent_directories(tmp_path, capsys, cli_small_wget):
    base = tmp_path / "deep"
    metrics_path = base / "a" / "m.json"
    journal_path = base / "b" / "j.jsonl"
    chrome_path = base / "c" / "t.json"
    prom_path = base / "d" / "m.prom"
    trace_path = base / "e" / "t.jsonl"
    assert main([
        "protect", "wget",
        "--metrics", str(metrics_path), "--journal", str(journal_path),
        "--chrome-trace", str(chrome_path), "--prom", str(prom_path),
        "--trace", str(trace_path),
    ]) == 0
    capsys.readouterr()
    for path in (metrics_path, journal_path, chrome_path, prom_path, trace_path):
        assert path.exists(), path
        assert path.stat().st_size > 0, path


def test_journal_written_even_when_the_command_dies(tmp_path, monkeypatch, capsys):
    def explode(_name):
        raise RuntimeError("synthetic crash")

    monkeypatch.setattr("repro.cli.build_program", explode)
    journal_path = tmp_path / "crash.jsonl"
    with pytest.raises(RuntimeError):
        main(["run", "gzip", "--journal", str(journal_path)])
    capsys.readouterr()
    # the crash dump still landed: events (possibly none) + summary
    records = [json.loads(l) for l in journal_path.read_text().splitlines()]
    assert records[-1]["type"] == "journal_summary"
