"""Builder-assembler: labels, fixups, alignment."""

import pytest

from repro.x86 import (
    Assembler, AssemblerError, EAX, EBX, ECX, Imm, decode_all,
)


def test_forward_and_backward_labels():
    a = Assembler(base=0x100)
    a.label("start")
    a.mov(EAX, 1)
    a.jmp("end")
    a.label("mid")
    a.add(EAX, 1)
    a.jmp("start")
    a.label("end")
    a.je("mid")
    a.ret()
    code = a.assemble()
    insns = decode_all(code, address=0x100)
    targets = [i.branch_target() for i in insns if i.branch_target() is not None]
    assert a.address_of("end") in targets
    assert a.address_of("start") in targets
    assert a.address_of("mid") in targets


def test_duplicate_label_rejected():
    a = Assembler()
    a.label("x")
    with pytest.raises(AssemblerError):
        a.label("x")


def test_undefined_label_rejected():
    a = Assembler()
    a.jmp("nowhere")
    with pytest.raises(AssemblerError):
        a.assemble()


def test_align_pads_with_nops():
    a = Assembler(base=0)
    a.ret()
    a.align(16)
    assert a.offset == 16
    assert a.assemble()[1:] == b"\x90" * 15


def test_int_coercion_picks_width():
    a = Assembler()
    a.add(EAX, 5)          # imm8 form
    a.add(EBX, 0x12345)    # imm32 form
    insns = decode_all(a.assemble())
    assert insns[0].raw[0] == 0x83
    assert insns[1].raw[0] == 0x81


def test_raw_and_pad_to():
    a = Assembler()
    a.raw(b"\xc3")
    a.pad_to(8, fill=0xCC)
    assert len(a.assemble()) == 8


def test_reserved_word_helpers():
    a = Assembler()
    a.and_(EAX, EBX)
    a.or_(EAX, ECX)
    a.not_(EAX)
    insns = decode_all(a.assemble())
    assert [i.mnemonic for i in insns] == ["and", "or", "not"]
