"""Per-function cycle attribution and dynamic call-graph recording.

The verification-function selection algorithm of the paper's §VII-B needs
(1) how often each function is called, (2) the share of total execution
time it accounts for.  The profiler gathers both by hooking the
emulator's per-step trace callback.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional

from ..binary.image import BinaryImage
from .emulator import CYCLE_COSTS, Emulator
from ..x86.operands import Mem


class FunctionProfile:
    """Aggregated statistics for one function."""

    __slots__ = ("name", "calls", "cycles", "steps")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.cycles = 0
        self.steps = 0

    def __repr__(self) -> str:
        return (
            f"<FunctionProfile {self.name} calls={self.calls} "
            f"cycles={self.cycles}>"
        )


class Profiler:
    """Attributes executed cycles to the function covering each eip."""

    def __init__(self, image: BinaryImage):
        self.image = image
        self.profiles: Dict[str, FunctionProfile] = {}
        self.call_edges: Counter = Counter()
        self.total_cycles = 0
        self._current: Optional[str] = None

    def attach(self, emulator: Emulator) -> None:
        emulator.trace_hook = self._on_step

    def _profile_for(self, name: str) -> FunctionProfile:
        prof = self.profiles.get(name)
        if prof is None:
            prof = FunctionProfile(name)
            self.profiles[name] = prof
        return prof

    def _on_step(self, eip: int, insn) -> None:
        symbol = self.image.symbols.at(eip)
        name = symbol.name if symbol is not None else "<unknown>"
        cost = CYCLE_COSTS.get(insn.mnemonic, 1)
        for op in insn.operands:
            if isinstance(op, Mem):
                cost += 1
        prof = self._profile_for(name)
        prof.cycles += cost
        prof.steps += 1
        self.total_cycles += cost

        if insn.mnemonic == "call":
            target = insn.branch_target()
            if target is not None:
                # Calls into symbol-less code (stubs, inserted sections)
                # still count — attributed to <unknown> rather than
                # silently dropped, so call totals match reality.
                callee = self.image.symbols.at(target)
                callee_name = callee.name if callee is not None else "<unknown>"
                self._profile_for(callee_name).calls += 1
                self.call_edges[(name, callee_name)] += 1
        self._current = name

    # ------------------------------------------------------------------
    # Queries used by the selection algorithm
    # ------------------------------------------------------------------

    def time_fraction(self, name: str) -> float:
        """Fraction of total cycles spent inside ``name``."""
        if self.total_cycles == 0:
            return 0.0
        prof = self.profiles.get(name)
        return prof.cycles / self.total_cycles if prof else 0.0

    def call_count(self, name: str) -> int:
        prof = self.profiles.get(name)
        return prof.calls if prof else 0

    def callers_of(self, name: str) -> int:
        """Number of distinct calling functions observed."""
        return len({caller for (caller, callee) in self.call_edges if callee == name})

    def report(self) -> str:
        lines = [f"{'function':<28} {'calls':>8} {'cycles':>12} {'share':>8}"]
        for prof in sorted(
            self.profiles.values(), key=lambda p: -p.cycles
        ):
            share = self.time_fraction(prof.name)
            lines.append(
                f"{prof.name:<28} {prof.calls:>8} {prof.cycles:>12} {share:>7.1%}"
            )
        return "\n".join(lines)


def profile_run(
    image: BinaryImage,
    stdin: bytes = b"",
    max_steps: int = 5_000_000,
    debugger_attached: bool = False,
    hotspots=None,
    engine: str = "step",
):
    """Run ``image`` under the profiler; returns (RunResult, Profiler).

    Pass a :class:`repro.emu.hotspots.HotspotProfiler` as ``hotspots``
    to also collect hot-spot samples.  The function profiler itself
    always forces the step engine (its per-instruction trace hook is
    how cycles get attributed), so with ``engine="step"`` the hot-spot
    samples come from that same run.  Any other ``engine`` triggers a
    second, hook-free run under that engine so the profiler can record
    engine-level samples too — superblock executions for ``block``,
    trace dispatches (``emu.hot.trace.*``) for ``trace``.
    """
    from .syscalls import OperatingSystem

    os = OperatingSystem(stdin=stdin, debugger_attached=debugger_attached)
    emulator = Emulator(image, os=os, max_steps=max_steps)
    if hotspots is not None and engine == "step":
        emulator.hotspots = hotspots
    profiler = Profiler(image)
    profiler.attach(emulator)
    result = emulator.run()
    if hotspots is not None and engine != "step":
        os2 = OperatingSystem(stdin=stdin, debugger_attached=debugger_attached)
        sampler = Emulator(image, os=os2, max_steps=max_steps, engine=engine)
        sampler.hotspots = hotspots
        sampler.run()
    return result, profiler
