"""Attack simulations: static patching, Wurster I-cache, restore, replace."""

from .harness import AttackOutcome, evaluate_patch_attack, score_run
from .patching import (
    AttackError,
    corrupt_byte,
    find_branches_in_function,
    force_branch,
    invert_branch,
    nop_out,
    nop_out_instruction,
    stub_out_function,
)
from .replace import (
    garbage_chain_patch,
    reconstruct_function_patch,
    wipe_chain_patch,
)
from .restore import evaluate_restore_attack, run_with_restore_attack
from .wurster import evaluate_wurster_attack, run_with_icache_patches

__all__ = [
    "AttackOutcome", "evaluate_patch_attack", "score_run",
    "AttackError", "corrupt_byte", "find_branches_in_function", "force_branch",
    "invert_branch", "nop_out", "nop_out_instruction", "stub_out_function",
    "garbage_chain_patch", "reconstruct_function_patch", "wipe_chain_patch",
    "evaluate_restore_attack", "run_with_restore_attack",
    "evaluate_wurster_attack", "run_with_icache_patches",
]
