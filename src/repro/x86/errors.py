"""Errors raised by the x86 encoder and decoder."""


class X86Error(Exception):
    """Base class for all x86 ISA errors."""


class DecodeError(X86Error):
    """Raised when a byte sequence cannot be decoded as an instruction.

    The gadget finder relies on this error to reject unaligned byte
    sequences that do not form valid instruction streams.
    """

    def __init__(self, message, offset=None):
        super().__init__(message)
        self.offset = offset


class EncodeError(X86Error):
    """Raised when an instruction cannot be encoded (bad operand combo)."""


class AssemblerError(X86Error):
    """Raised for assembler-level problems (unknown labels, range errors)."""
