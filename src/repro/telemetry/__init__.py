"""Telemetry: metrics registry, structured tracing, chain introspection.

Process-wide accessors::

    from repro.telemetry import get_metrics, get_tracer, configure

    configure(metrics=True, tracing=True)   # both start disabled
    with get_tracer().span("protect", program="wget"):
        get_metrics().counter("protect.runs").inc()

The default registry, tracer, and flight recorder start **disabled**:
every instrument accessor returns a shared null object, every span is
the shared null span, and :meth:`FlightRecorder.record` returns
immediately — so instrumented code costs one function call on the cold
paths and literally nothing on the emulator's per-step hot path (hooks
are only installed when a tracer is enabled).  :func:`configure` flips
any side on; :func:`telemetry_session` scopes that to a ``with`` block
and restores the previous state afterwards.

Exporters live in :mod:`repro.telemetry.export`: Chrome trace-event
JSON from the tracer, Prometheus text from the registry, and the
``repro stats`` dashboard over any exported artifact.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .chains import ChainExecutionTracer, ChainStep, trace_chain_run
from .export import (
    ARTIFACT_KINDS,
    chrome_trace,
    load_artifact,
    prometheus_text,
    render_stats,
    write_chrome_trace,
    write_prometheus,
)
from .metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .recorder import FlightRecorder, get_recorder, set_recorder
from .tracing import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "Span", "Tracer",
    "FlightRecorder", "get_recorder", "set_recorder",
    "ChainStep", "ChainExecutionTracer", "trace_chain_run",
    "chrome_trace", "write_chrome_trace",
    "prometheus_text", "write_prometheus",
    "ARTIFACT_KINDS", "load_artifact", "render_stats",
    "get_metrics", "set_metrics", "get_tracer", "set_tracer",
    "configure", "disable", "telemetry_session",
]

_metrics = MetricsRegistry(enabled=False)
_tracer = Tracer(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry (disabled until configured)."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    global _metrics
    previous, _metrics = _metrics, registry
    return previous


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until configured)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def configure(
    metrics: Optional[bool] = None,
    tracing: Optional[bool] = None,
    recorder: Optional[bool] = None,
) -> None:
    """Enable/disable the process-wide telemetry objects in place.

    ``None`` leaves that side untouched.  Enabling an already-populated
    registry keeps its instruments; use ``get_metrics().reset()`` for a
    clean slate (likewise ``get_recorder().clear()``).
    """
    if metrics is not None:
        _metrics.enabled = metrics
    if tracing is not None:
        _tracer.enabled = tracing
    if recorder is not None:
        get_recorder().enabled = recorder


def disable() -> None:
    configure(metrics=False, tracing=False, recorder=False)


@contextmanager
def telemetry_session(
    metrics: bool = True, tracing: bool = True, recorder: bool = False
):
    """Fresh, enabled registry + tracer (+ optional flight recorder)
    for the duration of the block.

    Yields ``(MetricsRegistry, Tracer)``; the previous process-wide
    objects (and their enabled state) are restored on exit.  When
    ``recorder`` is true a fresh :class:`FlightRecorder` is installed
    for the block too — fetch it with :func:`get_recorder`.
    """
    new_metrics = MetricsRegistry(enabled=metrics)
    new_tracer = Tracer(enabled=tracing)
    old_metrics = set_metrics(new_metrics)
    old_tracer = set_tracer(new_tracer)
    old_recorder = (
        set_recorder(FlightRecorder(enabled=True)) if recorder else None
    )
    try:
        yield new_metrics, new_tracer
    finally:
        set_metrics(old_metrics)
        set_tracer(old_tracer)
        if old_recorder is not None:
            set_recorder(old_recorder)
