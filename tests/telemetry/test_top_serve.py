"""The `repro top` serve lane: renders role mix, gauges, tenants and
backpressure from a serve journal."""

from repro.telemetry.top import TopDashboard


def serve_event(seq, ts, role="leader", tenant="acme", seconds=0.05,
                in_flight=2, queued=1, **extra):
    event = {
        "type": "event",
        "seq": seq,
        "ts": ts,
        "kind": "serve.request",
        "route": "/protect",
        "program": "gzip",
        "strategy": "cleartext",
        "seconds": seconds,
        "status": 200,
        "singleflight": role,
        "in_flight": in_flight,
        "queued": queued,
        "ctx": {"tenant": tenant},
    }
    event.update(extra)
    return event


def reject_event(seq, ts, reason="queue"):
    return {
        "type": "event",
        "seq": seq,
        "ts": ts,
        "kind": "serve.reject",
        "route": "/protect",
        "reason": reason,
    }


def test_serve_lane_absent_without_serve_events():
    dash = TopDashboard()
    dash.feed({"type": "event", "seq": 1, "ts": 0.1, "kind": "protect"})
    assert "serve" not in dash.render()


def test_serve_lane_roles_and_coalesce_rate():
    dash = TopDashboard()
    seq = 0
    for role, count in (("leader", 2), ("follower", 5), ("cache-hit", 3)):
        for _ in range(count):
            seq += 1
            dash.feed(serve_event(seq, 0.1 * seq, role=role))
    frame = dash.render()
    assert "serve" in frame
    assert "10" in frame  # total requests
    assert "leader 2" in frame
    assert "follower 5" in frame
    assert "cache-hit 3" in frame
    # 8 of 10 coalesced (everything that wasn't a leader).
    assert "80.0%" in frame


def test_serve_lane_gauges_track_latest_event():
    dash = TopDashboard()
    dash.feed(serve_event(1, 0.1, in_flight=7, queued=3))
    dash.feed(serve_event(2, 0.2, in_flight=4, queued=0))
    frame = dash.render()
    assert "in flight 4" in frame
    assert "queued 0" in frame


def test_serve_lane_rejections_by_reason():
    dash = TopDashboard()
    dash.feed(serve_event(1, 0.1))
    dash.feed(reject_event(2, 0.2, reason="queue"))
    dash.feed(reject_event(3, 0.3, reason="queue"))
    dash.feed(reject_event(4, 0.4, reason="quota"))
    frame = dash.render()
    assert "rejected 3" in frame
    assert "queue 2" in frame
    assert "quota 1" in frame


def test_serve_lane_rejections_render_even_without_successes():
    dash = TopDashboard()
    dash.feed(reject_event(1, 0.1, reason="draining"))
    frame = dash.render()
    assert "rejected 1" in frame
    assert "draining 1" in frame


def test_serve_lane_per_tenant_throughput():
    dash = TopDashboard(window_seconds=30.0)
    seq = 0
    for i in range(8):
        seq += 1
        dash.feed(serve_event(seq, 0.1 * seq, tenant="acme", seconds=0.02))
    for i in range(3):
        seq += 1
        dash.feed(serve_event(seq, 0.1 * seq, tenant="beta", seconds=0.5))
    frame = dash.render()
    assert "tenants" in frame
    acme_line = next(l for l in frame.splitlines() if "acme" in l)
    beta_line = next(l for l in frame.splitlines() if "beta" in l)
    assert "8 req" in acme_line
    assert "3 req" in beta_line
    # Latency percentiles ride along per tenant.
    assert "p95" in acme_line


def test_serve_lane_latency_from_throughput_table():
    """serve.request also shows in the generic throughput table with
    its p50/p95 columns (fed by the `seconds` field)."""
    dash = TopDashboard()
    for seq in range(1, 6):
        dash.feed(serve_event(seq, 0.1 * seq, seconds=0.1))
    frame = dash.render()
    line = next(
        l for l in frame.splitlines() if l.strip().startswith("serve.request")
    )
    assert "p50" in line and "100.00ms" in line
