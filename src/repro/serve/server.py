"""The ``repro serve`` daemon: admission → single-flight → pool → cache.

One asyncio event loop fronts the existing protection pipeline:

* **Admission** — per-tenant token-bucket quotas
  (:class:`~repro.serve.quota.QuotaManager`) and a bounded pending-job
  budget; past either bound the request gets ``429`` with a
  ``Retry-After`` hint instead of queueing unboundedly.
* **Single-flight** — requests that reduce to the same content key
  (:func:`~repro.serve.jobs.job_key`) coalesce onto one execution
  (:class:`~repro.serve.singleflight.SingleFlight`); the leader's
  payload fans out to every waiter byte-identically.
* **Batched pool scheduling** — admitted jobs land on an asyncio queue
  drained by a scheduler task that greedily packs up to ``batch_max``
  ready jobs into one :func:`~repro.serve.jobs.execute_batch` pool
  dispatch (``run_in_executor``), amortizing IPC/pickle overhead when
  the queue is deep while adding zero latency when it is not (a lone
  job ships immediately).
* **Sharded cache** — completed payloads persist in the ``serve``
  namespace of the content-addressed cache (:mod:`repro.cache`, now
  key-space sharded in memory and on disk), so a warm request never
  touches the pool at all.
* **Observability** — every request runs under a
  :class:`~repro.telemetry.TelemetryContext` labeled ``tenant=`` (and
  ``request=`` when the client names one); ``/metrics`` serves the
  live Prometheus text export, ``/stats`` the rolling-window
  throughput/latency snapshot, and ``/journal`` per-request
  flight-recorder dumps.  ``--journal-follow`` NDJSON feeds
  ``repro top``'s serve lane.
* **Graceful drain** — SIGTERM/SIGINT stop the listener, let in-flight
  requests finish (bounded by ``drain_timeout``), retire the scheduler
  and pool, and leave telemetry export to the CLI's normal exit path,
  so a killed daemon still ships its journal.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import socket
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..cache import cache_manager, configure_cache, get_cache, DEFAULT_SHARDS
from ..pipeline.pool import mp_context, worker_init
from ..telemetry import TelemetryContext, WindowSet, get_metrics
from .http import HttpError, Request, json_response, read_request, response_bytes
from .jobs import (
    DEFAULT_MAX_STEPS,
    JobValidationError,
    execute_batch,
    job_key,
    make_task,
)
from .quota import QuotaManager
from .singleflight import FOLLOWER, SingleFlight

__all__ = [
    "ServeConfig",
    "ProtectionServer",
    "ServerThread",
    "build_executor",
    "serve",
]

#: POST route -> job kind.
JOB_ROUTES = {
    "/protect": "protect",
    "/verify": "verify",
    "/attack-matrix": "attack-matrix",
}


class BusyError(Exception):
    """Admission refused: the pending-job budget is exhausted."""

    def __init__(self, detail: str, retry_after: float = 1.0):
        super().__init__(detail)
        self.detail = detail
        self.retry_after = retry_after


class ServeConfig:
    """Knobs for one server instance (all have serving-sane defaults)."""

    __slots__ = (
        "host",
        "port",
        "jobs",
        "executor",
        "cache_dir",
        "shards",
        "queue_depth",
        "batch_max",
        "quota_rate",
        "quota_burst",
        "window_seconds",
        "max_steps",
        "drain_timeout",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8437,
        jobs: int = 2,
        executor: str = "process",
        cache_dir: Optional[str] = None,
        shards: int = DEFAULT_SHARDS,
        queue_depth: int = 64,
        batch_max: int = 4,
        quota_rate: float = 0.0,
        quota_burst: Optional[float] = None,
        window_seconds: float = 30.0,
        max_steps: int = DEFAULT_MAX_STEPS,
        drain_timeout: float = 30.0,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if executor not in ("process", "thread"):
            raise ValueError("executor must be 'process' or 'thread'")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.executor = executor
        self.cache_dir = cache_dir
        self.shards = shards
        self.queue_depth = queue_depth
        self.batch_max = batch_max
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.window_seconds = window_seconds
        self.max_steps = max_steps
        self.drain_timeout = drain_timeout


def _configure_serving_cache(config: ServeConfig):
    """Serving requires a live cache manager; reuse or build one.

    Honors an already-configured manager pointing at the requested
    directory; otherwise replaces it.  Also migrates any pre-shard
    flat-layout entries eagerly, so an old cache dir serves at full
    speed from the first request.
    """
    manager = cache_manager()
    if config.cache_dir is not None:
        if manager.cache_dir != config.cache_dir or not manager.enabled:
            manager = configure_cache(
                cache_dir=config.cache_dir, shards=config.shards
            )
    elif not manager.enabled:
        # Memory-only serving cache: still coalesces and serves warm
        # hits, just doesn't survive a restart.
        manager = configure_cache(cache_dir=None, shards=config.shards)
    migrated = 0
    if manager.disk is not None:
        try:
            namespaces = sorted(os.listdir(manager.disk.root))
        except OSError:
            namespaces = []
        for namespace in namespaces:
            if os.path.isdir(os.path.join(manager.disk.root, namespace)):
                migrated += manager.disk.migrate_namespace(namespace)
    return manager, migrated


def build_executor(config: ServeConfig, cache_dir: Optional[str]) -> Executor:
    """The worker pool the asyncio front-end feeds via run_in_executor.

    ``process`` (default) forks a :class:`ProcessPoolExecutor` whose
    workers mirror the parent's cache configuration and run telemetry-
    silent (the existing pipeline ``worker_init``); ``thread`` uses a
    :class:`ThreadPoolExecutor` in-process — no fork, used by tests
    and environments without usable multiprocessing.
    """
    if config.executor == "thread":
        return ThreadPoolExecutor(
            max_workers=config.jobs, thread_name_prefix="serve-worker"
        )
    return ProcessPoolExecutor(
        max_workers=config.jobs,
        mp_context=mp_context(),
        initializer=worker_init,
        initargs=(cache_dir, True),
    )


def _prewarm(executor: Executor, jobs: int) -> None:
    """Fork/start every worker now, before the event loop owns threads.

    ``ProcessPoolExecutor`` spawns workers lazily on first submit; with
    a ``fork`` start method that would fork a process that already runs
    the asyncio loop thread.  Forcing worker creation from the main
    thread keeps the forks clean.
    """
    list(executor.map(_noop, range(jobs)))


def _noop(_i: int) -> None:
    return None


class ProtectionServer:
    """One serving instance; see the module docstring for the flow."""

    def __init__(self, config: ServeConfig, executor: Optional[Executor] = None):
        self.config = config
        self._executor = executor
        self._owns_executor = executor is None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._singleflight = SingleFlight()
        self._quota = QuotaManager(config.quota_rate, config.quota_burst)
        self._queue: Optional[asyncio.Queue] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._batch_tasks: set = set()
        self._client_tasks: set = set()
        self._windows: Optional[WindowSet] = None
        self._pending = 0
        self._requests_inflight = 0
        self._draining = False
        self._shutdown_event: Optional[asyncio.Event] = None
        self._started = time.time()
        self.port: Optional[int] = None
        self.migrated_entries = 0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        manager, self.migrated_entries = _configure_serving_cache(config)
        telemetry.configure(metrics=True, recorder=True)
        if self._executor is None:
            self._executor = build_executor(config, manager.cache_dir)
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._shutdown_event = asyncio.Event()
        self._windows = WindowSet(
            window_seconds=config.window_seconds
        ).subscribe_to(telemetry.get_recorder())
        self._scheduler_task = self._loop.create_task(self._scheduler())
        self._server = await asyncio.start_server(
            self._handle_client, config.host, config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        metrics = get_metrics()
        metrics.gauge("serve.jobs").set(config.jobs)
        metrics.gauge("serve.queue.capacity").set(config.queue_depth)
        if self.migrated_entries:
            metrics.counter("serve.cache.migrated").inc(self.migrated_entries)

    def install_signal_handlers(self) -> None:
        """Graceful drain on SIGTERM/SIGINT (event-loop signal handling
        replaces the CLI's export-and-die handler while the loop runs;
        the CLI's normal exit path still exports afterwards)."""
        import signal

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    sig, self.request_shutdown, signal.Signals(sig).name
                )
            except (NotImplementedError, RuntimeError):
                pass

    def request_shutdown(self, reason: str = "shutdown") -> None:
        """Thread-safe-ish entry: flip draining and wake the runner."""
        if self._draining:
            return
        self._draining = True
        recorder = telemetry.get_recorder()
        if recorder.enabled:
            recorder.record("serve.drain", reason=reason)
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def run_until_shutdown(self) -> None:
        await self._shutdown_event.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, retire the pool."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout
        while self._requests_inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._queue is not None:
            self._queue.put_nowait(None)
        if self._scheduler_task is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._scheduler_task
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        if self._windows is not None:
            self._windows.close()
        if self._owns_executor and self._executor is not None:
            await self._loop.run_in_executor(None, self._executor.shutdown)
        recorder = telemetry.get_recorder()
        if recorder.enabled:
            recorder.record(
                "serve.drained",
                pending=self._pending,
                uptime=round(time.time() - self._started, 3),
            )

    # -- batched pool scheduling ---------------------------------------

    async def _scheduler(self) -> None:
        """Drain the admission queue into batched pool dispatches.

        Greedy, latency-free batching: whatever is ready right now (up
        to ``batch_max``) ships as one ``execute_batch`` call; a lone
        job never waits for company.  Dispatches are not awaited here —
        the pool's own queue provides depth — so the scheduler keeps
        the pool saturated under thousands of in-flight requests.
        """
        metrics = get_metrics()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            while len(batch) < self.config.batch_max:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    # Shutdown sentinel mid-drain: ship this batch,
                    # then exit on the re-queued sentinel.
                    self._queue.put_nowait(None)
                    break
                batch.append(extra)
            metrics.counter("serve.batches").inc()
            metrics.histogram(
                "serve.batch.size", buckets=(1, 2, 4, 8, 16, 32)
            ).observe(len(batch))
            exec_future = self._loop.run_in_executor(
                self._executor, execute_batch, [task for task, _f in batch]
            )
            task = self._loop.create_task(self._complete(batch, exec_future))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _complete(self, batch: List[Tuple[dict, asyncio.Future]], exec_future) -> None:
        try:
            payloads = await exec_future
        except BaseException as exc:  # noqa: BLE001 — fan out to waiters
            for _task, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        metrics = get_metrics()
        metrics.counter("serve.jobs.executed").inc(len(payloads))
        for (_task, future), payload in zip(batch, payloads):
            if not future.done():
                future.set_result(payload)

    # -- job execution (the single-flight leader's path) ---------------

    async def _execute(self, task: dict, key: str) -> Tuple[dict, str]:
        """Serve-cache lookup, then admission + pool execution.

        Returns ``(payload, source)`` with source ``"hit"`` (cache) or
        ``"computed"`` (pool).  Only single-flight leaders run this, so
        under a thundering herd the cache is probed once and the
        pipeline executes once.
        """
        cache = get_cache("serve")
        if cache is not None:
            hit, payload = cache.get(key)
            if hit:
                return payload, "hit"
        if self._pending >= self.config.queue_depth:
            get_metrics().counter(
                "serve.rejections", labels={"reason": "queue"}
            ).inc()
            raise BusyError(
                f"admission queue full ({self.config.queue_depth} pending)"
            )
        self._pending += 1
        get_metrics().gauge("serve.queue.depth").set(self._pending)
        future = self._loop.create_future()
        self._queue.put_nowait((task, future))
        try:
            payload = await future
        finally:
            self._pending -= 1
            get_metrics().gauge("serve.queue.depth").set(self._pending)
        if cache is not None and "error" not in payload:
            cache.put(key, payload)
        return payload, "computed"

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._client_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        json_response(
                            exc.status,
                            {"error": exc.detail},
                            exc.headers,
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                response = await self._handle_request(request)
                writer.write(response)
                try:
                    await writer.drain()
                except ConnectionError:
                    return
                if not request.keep_alive:
                    return
        except asyncio.CancelledError:
            pass
        finally:
            self._client_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_request(self, request: Request) -> bytes:
        try:
            if request.method == "GET":
                return self._handle_get(request)
            if request.method == "POST":
                if request.path not in JOB_ROUTES:
                    raise HttpError(404, f"no such route: {request.path}")
                if self._draining:
                    self._record_reject(request.path, "draining")
                    raise HttpError(
                        503, "server is draining", {"Retry-After": "1"}
                    )
                return await self._handle_job(request)
            raise HttpError(405, f"method {request.method} not allowed")
        except HttpError as exc:
            get_metrics().counter(
                "serve.requests",
                labels={"route": request.path, "status": str(exc.status)},
            ).inc()
            return json_response(
                exc.status,
                {"error": exc.detail},
                exc.headers,
                keep_alive=request.keep_alive,
            )
        except Exception as exc:  # noqa: BLE001 — a bug must answer 500
            get_metrics().counter(
                "serve.requests",
                labels={"route": request.path, "status": "500"},
            ).inc()
            return json_response(
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=request.keep_alive,
            )

    # -- job requests ---------------------------------------------------

    async def _handle_job(self, request: Request) -> bytes:
        kind = JOB_ROUTES[request.path]
        body = request.json()
        tenant = str(body.get("tenant") or "anon")
        request_id = body.get("request")
        try:
            task = make_task(
                kind,
                body.get("program", ""),
                strategy=body.get("strategy", "cleartext"),
                seed=body.get("seed", 0),
                guard_chains=body.get("guard_chains", False),
                max_steps=body.get("max_steps", self.config.max_steps),
            )
        except JobValidationError as exc:
            raise HttpError(400, str(exc)) from exc
        wait = self._quota.try_acquire(tenant)
        if wait > 0:
            get_metrics().counter(
                "serve.rejections", labels={"reason": "quota"}
            ).inc()
            self._record_reject(request.path, "quota", tenant=tenant)
            raise HttpError(
                429,
                f"tenant {tenant!r} over quota",
                {"Retry-After": self._quota.retry_after_header(wait)},
            )
        key = job_key(task)
        labels = {"tenant": tenant}
        if request_id is not None:
            labels["request"] = str(request_id)

        self._requests_inflight += 1
        metrics = get_metrics()
        metrics.gauge("serve.inflight").set(self._requests_inflight)
        started = time.perf_counter()
        status = 200
        role = "leader"
        try:
            with TelemetryContext(labels):
                try:
                    (payload, source), sf_role = await self._singleflight.run(
                        key, lambda: self._execute(task, key)
                    )
                except BusyError as exc:
                    self._record_reject(request.path, "queue", tenant=tenant)
                    raise HttpError(
                        429,
                        exc.detail,
                        {
                            "Retry-After": self._quota.retry_after_header(
                                exc.retry_after
                            )
                        },
                    ) from exc
                role = (
                    FOLLOWER
                    if sf_role == FOLLOWER
                    else ("cache-hit" if source == "hit" else "leader")
                )
                if "error" in payload:
                    status = 500
                elapsed = time.perf_counter() - started
                ctx_metrics = get_metrics()
                ctx_metrics.counter(
                    "serve.requests",
                    labels={"route": request.path, "status": str(status)},
                ).inc()
                ctx_metrics.counter(
                    f"serve.singleflight.{'follower' if role == FOLLOWER else 'leader'}"
                ).inc()
                ctx_metrics.histogram(
                    "serve.request.seconds",
                    buckets=(
                        0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60,
                    ),
                    labels={"route": request.path},
                ).observe(elapsed)
                recorder = telemetry.get_recorder()
                if recorder.enabled:
                    event = {
                        "route": request.path,
                        "program": task["program"],
                        "strategy": task["strategy"],
                        "seconds": round(elapsed, 6),
                        "status": status,
                        "singleflight": role,
                        "in_flight": self._requests_inflight,
                        "queued": self._pending,
                    }
                    if request_id is not None:
                        event["request"] = str(request_id)
                    recorder.record("serve.request", **event)
        finally:
            self._requests_inflight -= 1
            metrics.gauge("serve.inflight").set(self._requests_inflight)
        headers = {"X-Singleflight": role, "X-Content-Key": key}
        return json_response(
            status, payload, headers, keep_alive=request.keep_alive
        )

    def _record_reject(self, route: str, reason: str, **fields) -> None:
        recorder = telemetry.get_recorder()
        if recorder.enabled:
            recorder.record("serve.reject", route=route, reason=reason, **fields)

    # -- introspection requests -----------------------------------------

    def _handle_get(self, request: Request) -> bytes:
        if request.path == "/metrics":
            body = telemetry.prometheus_text(get_metrics()).encode("utf-8")
            return response_bytes(
                200,
                body,
                "text/plain; version=0.0.4",
                keep_alive=request.keep_alive,
            )
        if request.path == "/healthz":
            return json_response(
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "in_flight": self._requests_inflight,
                    "queued": self._pending,
                    "jobs": self.config.jobs,
                    "executor": self.config.executor,
                    "uptime_seconds": round(time.time() - self._started, 3),
                },
                keep_alive=request.keep_alive,
            )
        if request.path == "/stats":
            return json_response(
                200,
                {
                    "windows": self._windows.snapshot() if self._windows else {},
                    "in_flight": self._requests_inflight,
                    "queued": self._pending,
                    "singleflight": {
                        "leaders": self._singleflight.leaders,
                        "followers": self._singleflight.followers,
                        "in_flight": len(self._singleflight),
                    },
                    "tenants": self._quota.tenants(),
                },
                keep_alive=request.keep_alive,
            )
        if request.path == "/journal":
            return self._handle_journal(request)
        raise HttpError(404, f"no such route: {request.path}")

    def _handle_journal(self, request: Request) -> bytes:
        """Per-request flight-recorder dump (NDJSON), filterable by the
        ``request=`` / ``tenant=`` context labels."""
        from ..telemetry.recorder import _recorder

        want_request = request.query.get("request")
        want_tenant = request.query.get("tenant")
        lines = []
        for event in _recorder.iter_events():
            ctx = event.get("ctx") or {}
            if want_request is not None and ctx.get("request") != want_request:
                continue
            if want_tenant is not None and ctx.get("tenant") != want_tenant:
                continue
            lines.append(json.dumps(event, sort_keys=True))
        body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
        return response_bytes(
            200, body, "application/x-ndjson", keep_alive=request.keep_alive
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


async def _serve_async(
    config: ServeConfig,
    executor: Optional[Executor],
    install_signals: bool,
    announce,
) -> None:
    server = ProtectionServer(config, executor=executor)
    await server.start()
    if install_signals:
        server.install_signal_handlers()
    if announce is not None:
        announce(server)
    await server.run_until_shutdown()


def serve(config: ServeConfig, announce=None) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns 0 on clean drain.

    The worker pool is built (and pre-warmed, so ``fork`` happens
    before the event loop owns threads) here in the main thread.
    """
    manager, _migrated = _configure_serving_cache(config)
    executor = build_executor(config, manager.cache_dir)
    _prewarm(executor, config.jobs)
    try:
        asyncio.run(
            _serve_async(
                config, executor, install_signals=True, announce=announce
            )
        )
    finally:
        executor.shutdown(wait=True)
    return 0


class ServerThread:
    """An in-process server on a background thread (tests, benchmarks).

    ::

        with ServerThread(ServeConfig(port=0, executor="thread")) as srv:
            client = ServeClient("127.0.0.1", srv.port)
            ...

    ``port=0`` binds an ephemeral port; the bound port is available as
    ``.port`` once the context is entered.  ``stop()`` performs the
    same graceful drain a SIGTERM would.
    """

    def __init__(self, config: ServeConfig, executor: Optional[Executor] = None):
        self.config = config
        self._external_executor = executor
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._server: Optional[ProtectionServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self.port: Optional[int] = None

    def __enter__(self) -> "ServerThread":
        if self.config.executor == "process" and self._external_executor is None:
            # Fork workers from this (pre-loop) thread for cleanliness.
            manager, _ = _configure_serving_cache(self.config)
            self._external_executor = build_executor(
                self.config, manager.cache_dir
            )
            _prewarm(self._external_executor, self.config.jobs)
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def _main(self) -> None:
        async def body():
            self._server = ProtectionServer(
                self.config, executor=self._external_executor
            )
            try:
                await self._server.start()
            except BaseException as exc:  # noqa: BLE001 — surfaced in enter
                self._error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self.port = self._server.port
            self._ready.set()
            await self._server.run_until_shutdown()

        try:
            asyncio.run(body())
        except BaseException:  # noqa: BLE001 — thread must not die silent
            if not self._ready.is_set():
                self._ready.set()

    def stop(self) -> None:
        if self._loop is not None and self._server is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(
                    self._server.request_shutdown, "stop"
                )
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __exit__(self, *exc) -> bool:
        self.stop()
        if self._external_executor is not None:
            self._external_executor.shutdown(wait=True)
        return False

    @property
    def server(self) -> Optional[ProtectionServer]:
        return self._server
