"""Exhaustive gadget discovery over executable sections.

ROP gadgets need not start on instruction boundaries: any byte offset
whose decode reaches a return within the length bound is a gadget
(§II-A: "gadgets ... can also be unaligned instruction sequences
embedded in the normal instruction stream").  The finder therefore scans
*every* return opcode in executable sections and walks backwards over
all candidate start offsets.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..binary.image import BinaryImage
from ..x86.decoder import decode
from ..x86.errors import DecodeError
from ..x86.opcodes import (
    RET_IMM16_OPCODE,
    RET_OPCODE,
    RETF_IMM16_OPCODE,
    RETF_OPCODE,
)
from ..telemetry import get_metrics, get_tracer
from .semantics import classify
from .types import Gadget

#: Paper §VII-A: "we limited the length of the considered gadgets to six
#: instructions, as longer gadgets are difficult to use in practical ROP
#: chains."
MAX_GADGET_INSNS = 6

#: How far before a return we look for gadget start offsets.  Six
#: instructions of at most ~7 bytes each is generous at 40.
MAX_LOOKBACK_BYTES = 40

#: Bump when discovery or classification semantics change, so cached
#: finder output from an older algorithm can never be replayed.
FINDER_VERSION = 1

_NEAR_RETS = (RET_OPCODE, RET_IMM16_OPCODE)
_FAR_RETS = (RETF_OPCODE, RETF_IMM16_OPCODE)


def decode_gadget_at(
    data: bytes,
    offset: int,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
) -> Optional[Gadget]:
    """Try to decode a gadget starting at ``offset`` in ``data``.

    The decode must reach a return instruction within ``max_insns``
    instructions; the sequence is then classified.  Returns ``None`` if
    no valid gadget starts here.
    """
    instructions = []
    pos = offset
    for _ in range(max_insns):
        try:
            insn = decode(data, pos, address=base + pos)
        except DecodeError:
            return None
        instructions.append(insn)
        pos += insn.length
        if insn.is_return:
            return classify(instructions)
        if insn.is_control_flow:
            return None
        if pos > len(data):
            return None
    return None


def find_gadgets_in_bytes(
    data: bytes,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Find all gadgets in a flat code buffer.

    Scans for return opcodes and tries every start offset within
    :data:`MAX_LOOKBACK_BYTES` before each; keeps sequences that decode
    cleanly to the return and classify as gadgets.  One gadget is
    reported per (start, return) pair — nested suffixes of a long gadget
    are separate gadgets, as in real gadget finders.
    """
    metrics = get_metrics()
    scanned = metrics.counter("gadgets.offsets_scanned")
    accepted = metrics.counter("gadgets.accepted")
    rejected = metrics.counter("gadgets.rejected")
    terminators = _NEAR_RETS + (_FAR_RETS if include_far else ())
    gadgets: List[Gadget] = []
    seen = set()
    for ret_pos, byte in enumerate(data):
        if byte not in terminators:
            continue
        lo = max(0, ret_pos - MAX_LOOKBACK_BYTES)
        for start in range(ret_pos, lo - 1, -1):
            if start in seen:
                continue
            scanned.inc()
            gadget = decode_gadget_at(data, start, base=base, max_insns=max_insns)
            if gadget is None:
                rejected.inc()
                continue
            # Only keep it if this decode actually terminates at ret_pos
            # (an earlier return could satisfy a longer window).
            if gadget.end != base + ret_pos + _ret_length(data, ret_pos):
                rejected.inc()
                continue
            gadgets.append(gadget)
            seen.add(start)
    accepted.inc(len(gadgets))
    gadgets.sort(key=lambda g: g.address)
    return gadgets


def _ret_length(data: bytes, ret_pos: int) -> int:
    """Encoded length of the return instruction at ``ret_pos``."""
    return 3 if data[ret_pos] in (RET_IMM16_OPCODE, RETF_IMM16_OPCODE) else 1


def find_gadgets_in_bytes_cached(
    data: bytes,
    base: int = 0,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Content-addressed :func:`find_gadgets_in_bytes`.

    The key covers the exact section bytes, the base address and every
    finder knob (plus :data:`FINDER_VERSION`), so a one-byte change to
    the code — the very thing Parallax exists to detect — yields a
    different key and a fresh scan.  Gadget objects are shared between
    hits; the pipeline treats them as immutable.
    """
    from ..cache import content_key, get_cache

    cache = get_cache("gadgets")
    if cache is None:
        return find_gadgets_in_bytes(
            data, base=base, max_insns=max_insns, include_far=include_far
        )
    key = content_key(
        "find_gadgets", FINDER_VERSION, bytes(data), base, max_insns, include_far
    )
    return list(
        cache.get_or_compute(
            key,
            lambda: find_gadgets_in_bytes(
                data, base=base, max_insns=max_insns, include_far=include_far
            ),
        )
    )


def find_gadgets(
    image: BinaryImage,
    max_insns: int = MAX_GADGET_INSNS,
    include_far: bool = True,
) -> List[Gadget]:
    """Find all gadgets in every executable section of ``image``.

    Each section is looked up in the content-addressed gadget cache
    individually, so sections shared between runs (or untouched by a
    rewrite) are never re-scanned.
    """
    with get_tracer().span("find_gadgets", image=image.name) as span:
        gadgets: List[Gadget] = []
        for section in image.executable_sections():
            gadgets.extend(
                find_gadgets_in_bytes_cached(
                    bytes(section.data),
                    base=section.vaddr,
                    max_insns=max_insns,
                    include_far=include_far,
                )
            )
        span.set_attribute("found", len(gadgets))
        return gadgets
