"""Corpus programs: determinism, structure, runnability."""

import pytest

from repro.corpus import PROGRAM_NAMES, build_program, build_wget
from repro.corpus.generator import FunctionGenerator, MixProfile


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_small_variant_runs_clean(name):
    kwargs = {"blocks": 2}
    program = __import__("repro.corpus.programs", fromlist=[f"build_{name}"]).__dict__[
        f"build_{name}"
    ](**kwargs)
    result = program.run(max_steps=20_000_000)
    assert not result.crashed, result.fault
    assert result.exit_status is not None
    assert len(result.stdout) == 8  # hex digest


def test_program_is_deterministic():
    r1 = build_wget(blocks=1, chunks=2).run()
    r2 = build_wget(blocks=1, chunks=2).run()
    assert r1.stdout == r2.stdout
    assert r1.exit_status == r2.exit_status
    assert r1.cycles == r2.cycles


def test_symbols_cover_functions(small_wget):
    image = small_wget.image
    for name in small_wget.functions:
        symbol = image.symbols[name]
        assert symbol.size > 0
        assert symbol.ir is small_wget.functions[name]


def test_antidebug_refuses_debugger(small_wget):
    traced = small_wget.run(debugger_attached=True)
    assert traced.exit_status == 99
    clean = small_wget.run()
    assert clean.exit_status != 99


def test_candidates_are_translatable(small_wget):
    from repro.core import is_chain_translatable
    for name in small_wget.candidates:
        assert is_chain_translatable(small_wget.functions[name]), name


def test_generator_determinism_and_validity():
    profile = MixProfile(functions=10)
    fns1 = FunctionGenerator(profile, 0x8090000, seed=5).generate("f")
    fns2 = FunctionGenerator(profile, 0x8090000, seed=5).generate("f")
    assert [f.name for f in fns1] == [f.name for f in fns2]
    for f1, f2 in zip(fns1, fns2):
        f1.validate()
        assert len(f1.body) == len(f2.body)
    fns3 = FunctionGenerator(profile, 0x8090000, seed=6).generate("f")
    assert any(len(a.body) != len(b.body) for a, b in zip(fns1, fns3))


def test_generated_functions_execute():
    from repro.ropc.interpreter import Interpreter, IRMemory
    profile = MixProfile(functions=6, call_density=0.5)
    functions = FunctionGenerator(profile, 0x8090000, seed=9).generate("g")
    table = {f.name: f for f in functions}
    interp = Interpreter(table, IRMemory(), max_ops=500_000)
    for f in functions:
        interp.run(f, [12345])  # must terminate without fault
