"""Operand helpers and representations."""

import pytest

from repro.x86 import (
    AH, AL, EAX, EBP, ECX, ESP, Imm, Mem, fits_signed, mem32,
    to_signed, to_unsigned,
)
from repro.x86.registers import Register


def test_signed_unsigned_conversions():
    assert to_signed(0xFF, 8) == -1
    assert to_signed(0x7F, 8) == 127
    assert to_unsigned(-1, 8) == 0xFF
    assert to_unsigned(-1, 32) == 0xFFFFFFFF
    assert fits_signed(127, 8) and not fits_signed(128, 8)
    assert fits_signed(-128, 8) and not fits_signed(-129, 8)


def test_imm_equality_and_width():
    assert Imm(5, 8) == Imm(5, 8)
    assert Imm(5, 8) != Imm(5, 32)
    assert Imm(-1, 8).value == 0xFF
    assert Imm(-1, 8).signed == -1
    with pytest.raises(ValueError):
        Imm(1, 12)


def test_mem_validation():
    with pytest.raises(ValueError):
        Mem(base=EAX, index=ESP)  # esp cannot index
    with pytest.raises(ValueError):
        Mem(base=EAX, index=ECX, scale=3)


def test_register_aliasing():
    assert AL.full() is EAX
    assert AH.full() is EAX
    assert Register.by_name("eax") is EAX


def test_mem_repr_readable():
    assert "ebp" in repr(mem32(EBP, disp=8))
    assert "dword" in repr(mem32(EAX))
