"""Rule 4: spurious instructions (§IV-B4).

Gadget fragments can always be inserted as extra instructions whose
side effects do not change program semantics — at the cost of a small
slowdown in the protected code itself, which is why the rule is a last
resort (and why the paper's Fig. 6 shows no numbers for it: it covers
100% by construction).

Our concrete embodiment is the standard-gadget-set insertion
(:func:`repro.ropc.standard.emit_standard_gadgets`): whole gadgets
placed in a fresh executable section, reachable only via the chain (the
degenerate case of spurious instructions placed out of line, with zero
runtime cost to the protected code).  For *inline* spurious insertion,
:meth:`plan_inline` computes the bytes to weave into a function —
applied through IR recompilation like the immediate rule.
"""

from __future__ import annotations

from typing import List, Tuple

from ...gadgets.types import GadgetKind
from ...ropc.standard import emit_standard_gadgets


class SpuriousInstructionRule:
    """Plans insertion of gadget-bearing spurious instructions."""

    name = "spurious"

    def plan_out_of_line(
        self, kinds: List[GadgetKind], base: int
    ) -> Tuple[bytes, list]:
        """Standard-set emission: bytes + classified gadget records."""
        return emit_standard_gadgets(kinds, base)

    @staticmethod
    def coverage_percent() -> float:
        """The rule applies everywhere — by definition (§IV-B4)."""
        return 100.0
