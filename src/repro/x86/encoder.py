"""IA-32 instruction encoder.

``assemble(mnemonic, *operands)`` returns the encoded bytes for one
instruction.  The encoder emits exactly the forms the decoder understands;
:mod:`repro.x86.asm` round-trips every emitted instruction through the
decoder to guarantee agreement.
"""

from __future__ import annotations

import struct

from .errors import EncodeError
from .opcodes import (
    ARITH_DIGIT_OF,
    CC_NAMES,
    GRP3_DIGIT_OF,
    SHIFT_DIGIT_OF,
    SIMPLE_OF,
)
from .operands import Imm, Mem, Rel, fits_signed, to_unsigned
from .registers import Register

_P8 = struct.Struct("<B")
_P16 = struct.Struct("<H")
_P32 = struct.Struct("<I")


def _u8(value: int) -> bytes:
    return _P8.pack(to_unsigned(value, 8))


def _u16(value: int) -> bytes:
    return _P16.pack(to_unsigned(value, 16))


def _u32(value: int) -> bytes:
    return _P32.pack(to_unsigned(value, 32))


def _imm_bytes(imm: Imm) -> bytes:
    if imm.width == 8:
        return _u8(imm.value)
    if imm.width == 16:
        return _u16(imm.value)
    return _u32(imm.value)


def _modrm(mod: int, reg: int, rm: int) -> int:
    return (mod << 6) | (reg << 3) | rm


def _sib(scale: int, index: int, base: int) -> int:
    return ({1: 0, 2: 1, 4: 2, 8: 3}[scale] << 6) | (index << 3) | base


def encode_modrm(reg_field: int, rm) -> bytes:
    """Encode the modrm (+sib +disp) bytes for operand ``rm``.

    ``rm`` is a :class:`Register` (mod=3) or a :class:`Mem`.
    """
    if isinstance(rm, Register):
        return bytes([_modrm(3, reg_field, rm.code)])
    if not isinstance(rm, Mem):
        raise EncodeError(f"cannot encode {rm!r} as r/m")

    base, index, scale, disp = rm.base, rm.index, rm.scale, rm.disp

    # Absolute address: mod=00, rm=101, disp32.
    if base is None and index is None:
        return bytes([_modrm(0, reg_field, 5)]) + _u32(disp)

    needs_sib = index is not None or (base is not None and base.code == 4)

    if base is None:
        # Index without base: SIB with base=101 and mandatory disp32.
        sib = _sib(scale, index.code, 5)
        return bytes([_modrm(0, reg_field, 4), sib]) + _u32(disp)

    # Pick displacement size.  ebp as base with mod=00 means "disp32 only",
    # so a zero displacement on ebp still needs the disp8 form.
    if disp == 0 and base.code != 5:
        mod, disp_bytes = 0, b""
    elif fits_signed(disp, 8):
        mod, disp_bytes = 1, _u8(disp)
    else:
        mod, disp_bytes = 2, _u32(disp)

    if needs_sib:
        idx_code = index.code if index is not None else 4
        sib = _sib(scale, idx_code, base.code)
        return bytes([_modrm(mod, reg_field, 4), sib]) + disp_bytes
    return bytes([_modrm(mod, reg_field, base.code)]) + disp_bytes


def _is_reg(op, width=None) -> bool:
    return isinstance(op, Register) and (width is None or op.width == width)


def _is_rm(op, width) -> bool:
    if isinstance(op, Register):
        return op.width == width
    return isinstance(op, Mem) and op.width == width


def _encode_arith(mnemonic: str, dst, src, prefer_imm8: bool = True) -> bytes:
    base = ARITH_DIGIT_OF[mnemonic] << 3
    if isinstance(src, Imm):
        digit = ARITH_DIGIT_OF[mnemonic]
        if _is_rm(dst, 8):
            if src.width != 8:
                raise EncodeError("8-bit arith needs an 8-bit immediate")
            if _is_reg(dst, 8) and dst.code == 0:
                return bytes([base + 4]) + _imm_bytes(src)
            return b"\x80" + encode_modrm(digit, dst) + _imm_bytes(src)
        if _is_rm(dst, 32):
            if src.width == 8 and prefer_imm8:
                return b"\x83" + encode_modrm(digit, dst) + _imm_bytes(src)
            imm = Imm(src.signed, 32) if src.width == 8 else src
            if _is_reg(dst, 32) and dst.code == 0:
                return bytes([base + 5]) + _imm_bytes(imm)
            return b"\x81" + encode_modrm(digit, dst) + _imm_bytes(imm)
        raise EncodeError(f"bad arith destination {dst!r}")
    if _is_reg(src, 8) and _is_rm(dst, 8):
        return bytes([base + 0]) + encode_modrm(src.code, dst)
    if _is_reg(src, 32) and _is_rm(dst, 32):
        return bytes([base + 1]) + encode_modrm(src.code, dst)
    if _is_reg(dst, 8) and isinstance(src, Mem) and src.width == 8:
        return bytes([base + 2]) + encode_modrm(dst.code, src)
    if _is_reg(dst, 32) and isinstance(src, Mem) and src.width == 32:
        return bytes([base + 3]) + encode_modrm(dst.code, src)
    raise EncodeError(f"bad operands for {mnemonic}: {dst!r}, {src!r}")


def _encode_mov(dst, src, rm_imm_form: bool = False) -> bytes:
    if isinstance(src, Imm):
        if _is_reg(dst, 32) and not rm_imm_form:
            imm = Imm(src.signed, 32) if src.width != 32 else src
            return bytes([0xB8 + dst.code]) + _imm_bytes(imm)
        if _is_reg(dst, 8) and not rm_imm_form:
            if src.width != 8:
                raise EncodeError("mov r8 needs an 8-bit immediate")
            return bytes([0xB0 + dst.code]) + _imm_bytes(src)
        if _is_rm(dst, 8):
            return b"\xc6" + encode_modrm(0, dst) + _imm_bytes(Imm(src.signed, 8))
        if _is_rm(dst, 32):
            imm = Imm(src.signed, 32) if src.width != 32 else src
            return b"\xc7" + encode_modrm(0, dst) + _imm_bytes(imm)
        raise EncodeError(f"bad mov destination {dst!r}")
    if _is_reg(src, 8) and _is_rm(dst, 8):
        return b"\x88" + encode_modrm(src.code, dst)
    if _is_reg(src, 32) and _is_rm(dst, 32):
        return b"\x89" + encode_modrm(src.code, dst)
    if _is_reg(dst, 8) and isinstance(src, Mem) and src.width == 8:
        return b"\x8a" + encode_modrm(dst.code, src)
    if _is_reg(dst, 32) and isinstance(src, Mem) and src.width == 32:
        return b"\x8b" + encode_modrm(dst.code, src)
    raise EncodeError(f"bad operands for mov: {dst!r}, {src!r}")


def _encode_shift(mnemonic: str, dst, count) -> bytes:
    digit = SHIFT_DIGIT_OF[mnemonic]
    if isinstance(count, Register):
        if count.name != "cl":
            raise EncodeError("shift count register must be cl")
        opcode = 0xD2 if _is_rm(dst, 8) else 0xD3
        return bytes([opcode]) + encode_modrm(digit, dst)
    if not isinstance(count, Imm):
        raise EncodeError(f"bad shift count {count!r}")
    if count.value == 1:
        opcode = 0xD0 if _is_rm(dst, 8) else 0xD1
        return bytes([opcode]) + encode_modrm(digit, dst)
    opcode = 0xC0 if _is_rm(dst, 8) else 0xC1
    return bytes([opcode]) + encode_modrm(digit, dst) + _u8(count.value)


def _encode_test(dst, src) -> bytes:
    if isinstance(src, Imm):
        if _is_reg(dst, 8) and dst.code == 0:
            return b"\xa8" + _imm_bytes(Imm(src.signed, 8))
        if _is_reg(dst, 32) and dst.code == 0:
            return b"\xa9" + _imm_bytes(Imm(src.signed, 32))
        if _is_rm(dst, 8):
            return b"\xf6" + encode_modrm(0, dst) + _imm_bytes(Imm(src.signed, 8))
        return b"\xf7" + encode_modrm(0, dst) + _imm_bytes(Imm(src.signed, 32))
    if _is_reg(src, 8) and _is_rm(dst, 8):
        return b"\x84" + encode_modrm(src.code, dst)
    if _is_reg(src, 32) and _is_rm(dst, 32):
        return b"\x85" + encode_modrm(src.code, dst)
    raise EncodeError(f"bad operands for test: {dst!r}, {src!r}")


def assemble(mnemonic: str, *ops, **options) -> bytes:
    """Encode one instruction; returns its bytes.

    Options:
        prefer_imm8: for group-1 arithmetic with a small immediate, use
            the sign-extended imm8 form (default True, matches gcc).
        rm_imm_form: for ``mov reg, imm``, force the 0xc6/0xc7 r/m form
            instead of 0xb0+r/0xb8+r.
    """
    m = mnemonic.lower()

    if m in SIMPLE_OF and not ops:
        return bytes([SIMPLE_OF[m]])

    if m in ARITH_DIGIT_OF:
        return _encode_arith(m, ops[0], ops[1], options.get("prefer_imm8", True))
    if m == "mov":
        return _encode_mov(ops[0], ops[1], options.get("rm_imm_form", False))
    if m == "lea":
        dst, src = ops
        if not (_is_reg(dst, 32) and isinstance(src, Mem)):
            raise EncodeError("lea needs reg32, mem")
        return b"\x8d" + encode_modrm(dst.code, src)
    if m == "test":
        return _encode_test(ops[0], ops[1])
    if m == "xchg":
        a, b = ops
        if _is_reg(a, 32) and _is_reg(b, 32) and a.code == 0 and b.code != 0:
            return bytes([0x90 + b.code])
        if _is_reg(b, 8) and _is_rm(a, 8):
            return b"\x86" + encode_modrm(b.code, a)
        if _is_reg(b, 32) and _is_rm(a, 32):
            return b"\x87" + encode_modrm(b.code, a)
        if _is_reg(a, 32) and isinstance(b, Mem):
            return b"\x87" + encode_modrm(a.code, b)
        raise EncodeError(f"bad operands for xchg: {a!r}, {b!r}")
    if m in SHIFT_DIGIT_OF:
        return _encode_shift(m, ops[0], ops[1])

    if m == "push":
        (op,) = ops
        if _is_reg(op, 32):
            return bytes([0x50 + op.code])
        if isinstance(op, Imm):
            if op.width == 8:
                return b"\x6a" + _imm_bytes(op)
            return b"\x68" + _imm_bytes(Imm(op.signed, 32))
        if isinstance(op, Mem):
            return b"\xff" + encode_modrm(6, op)
        raise EncodeError(f"bad push operand {op!r}")
    if m == "pop":
        (op,) = ops
        if _is_reg(op, 32):
            return bytes([0x58 + op.code])
        if isinstance(op, Mem):
            return b"\x8f" + encode_modrm(0, op)
        raise EncodeError(f"bad pop operand {op!r}")
    if m == "inc":
        (op,) = ops
        if _is_reg(op, 32):
            return bytes([0x40 + op.code])
        opcode, width = (b"\xfe", 8) if _is_rm(op, 8) else (b"\xff", 32)
        return opcode + encode_modrm(0, op)
    if m == "dec":
        (op,) = ops
        if _is_reg(op, 32):
            return bytes([0x48 + op.code])
        opcode = b"\xfe" if _is_rm(op, 8) else b"\xff"
        return opcode + encode_modrm(1, op)

    if m in GRP3_DIGIT_OF:  # not/neg/mul/imul/div/idiv one-operand forms
        if m == "imul" and len(ops) >= 2:
            dst, src = ops[0], ops[1]
            if len(ops) == 3:
                imm = ops[2]
                opcode = b"\x6b" if imm.width == 8 else b"\x69"
                return opcode + encode_modrm(dst.code, src) + _imm_bytes(imm)
            return b"\x0f\xaf" + encode_modrm(dst.code, src)
        (op,) = ops
        opcode = b"\xf6" if _is_rm(op, 8) else b"\xf7"
        return opcode + encode_modrm(GRP3_DIGIT_OF[m], op)

    if m == "ret":
        if ops:
            return b"\xc2" + _u16(ops[0].value)
        return b"\xc3"
    if m == "retf":
        if ops:
            return b"\xca" + _u16(ops[0].value)
        return b"\xcb"
    if m == "int":
        return b"\xcd" + _u8(ops[0].value)

    if m == "call":
        (op,) = ops
        if isinstance(op, Rel):
            return b"\xe8" + _u32(op.offset)
        if isinstance(op, (Register, Mem)):
            return b"\xff" + encode_modrm(2, op)
        raise EncodeError(f"bad call operand {op!r}")
    if m == "jmp":
        (op,) = ops
        if isinstance(op, Rel):
            if op.width == 8:
                return b"\xeb" + _u8(op.offset)
            return b"\xe9" + _u32(op.offset)
        if isinstance(op, (Register, Mem)):
            return b"\xff" + encode_modrm(4, op)
        raise EncodeError(f"bad jmp operand {op!r}")
    if m.startswith("j") and m[1:] in CC_NAMES:
        (op,) = ops
        cc = CC_NAMES.index(m[1:])
        if op.width == 8:
            return bytes([0x70 + cc]) + _u8(op.offset)
        return bytes([0x0F, 0x80 + cc]) + _u32(op.offset)
    if m.startswith("set") and m[3:] in CC_NAMES:
        (op,) = ops
        cc = CC_NAMES.index(m[3:])
        return bytes([0x0F, 0x90 + cc]) + encode_modrm(0, op)
    if m == "movzx":
        dst, src = ops
        return b"\x0f\xb6" + encode_modrm(dst.code, src)
    if m == "movsx":
        dst, src = ops
        return b"\x0f\xbe" + encode_modrm(dst.code, src)

    raise EncodeError(f"unsupported mnemonic {mnemonic!r}")
