"""The Parallax pipeline end to end (small workloads)."""

import pytest

from repro.core import Parallax, ProtectConfig, ProtectError
from repro.core.protector import GADGETS_BASE, STUBS_BASE


@pytest.mark.parametrize("strategy", ["cleartext", "xor", "rc4", "linear"])
def test_behaviour_preserved(small_wget, small_wget_baseline, strategy):
    config = ProtectConfig(strategy=strategy, verification_functions=["digest_wget"])
    protected = Parallax(config).protect(small_wget)
    result = protected.run()
    assert not result.crashed, result.fault
    assert result.stdout == small_wget_baseline.stdout
    assert result.exit_status == small_wget_baseline.exit_status


def test_protection_overhead_is_confined(small_wget, small_wget_baseline,
                                          protected_wget_cleartext):
    result = protected_wget_cleartext.run()
    # overhead exists but is bounded (tiny workload -> generous cap)
    assert small_wget_baseline.cycles < result.cycles
    assert result.cycles < small_wget_baseline.cycles * 2


def test_report_contents(protected_wget_cleartext):
    report = protected_wget_cleartext.report
    assert report.existing_gadgets > 0
    assert len(report.chains) == 1
    record = report.chains[0]
    assert record.function == "digest_wget"
    assert record.word_count > 10
    assert record.stub_addr == STUBS_BASE
    assert "digest_wget" in report.summary()


def test_report_carries_coverage_inputs(protected_wget_cleartext):
    """The report must record what was protected and which bytes each
    chain's gadgets span — the inputs the coverage map is built from."""
    report = protected_wget_cleartext.report
    assert report.protected_addresses
    assert report.protected_addresses == sorted(set(report.protected_addresses))
    record = report.chains[0]
    assert record.gadget_spans
    assert set(record.gadget_spans) <= set(record.gadget_addresses)
    for address, end in record.gadget_spans.items():
        assert end > address
    assert set(record.guarded_bytes()) == {
        b for a, e in record.gadget_spans.items() for b in range(a, e)
    }
    payload = report.to_dict()
    assert payload["protected_ranges"]
    assert payload["chains"][0]["gadget_spans"]


def test_chain_prefers_overlapping_gadgets(protected_wget_cleartext):
    record = protected_wget_cleartext.report.chains[0]
    assert record.overlapping_used > 0


def test_entry_redirected(small_wget, protected_wget_cleartext):
    image = protected_wget_cleartext.image
    entry = image.read(image.symbols["digest_wget"].vaddr, 1)
    assert entry == b"\xe9"  # jmp to the stub


def test_sections_added(protected_wget_rc4):
    image = protected_wget_rc4.image
    for name in (".stubs", ".ropdata", ".ropchains", ".ropcenc", ".parallaxrt"):
        assert image.has_section(name), name


def test_unknown_function_rejected(small_wget):
    config = ProtectConfig(verification_functions=["no_such_fn"])
    with pytest.raises(ProtectError):
        Parallax(config).protect(small_wget)


def test_auto_selection_path(small_wget, small_wget_baseline):
    protected = Parallax(ProtectConfig(strategy="cleartext")).protect(small_wget)
    assert protected.report.chains[0].function == "digest_wget"
    result = protected.run()
    assert result.stdout == small_wget_baseline.stdout


def test_linear_strategy_probabilistic(protected_wget_linear, small_wget_baseline):
    # several runs regenerate different variants but always compute right
    for _ in range(3):
        result = protected_wget_linear.run()
        assert not result.crashed
        assert result.stdout == small_wget_baseline.stdout
    record = protected_wget_linear.report.chains[0]
    assert record.variants == 4


def test_config_validation():
    with pytest.raises(ValueError):
        ProtectConfig(strategy="rot13")
    with pytest.raises(ValueError):
        ProtectConfig(n_variants=3)
