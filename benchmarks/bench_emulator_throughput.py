"""Emulator throughput: step vs. block vs. trace engines.

Measures instructions/sec for all three execution engines on the two
workload shapes the paper's evaluation leans on:

* **chain** — repeated verification-function calls on a protected
  image (fig. 5a's workload: ROP-chain heavy, ret-dominated);
* **program** — whole corpus-program runs (fig. 5b's workload).

Every measurement doubles as a differential check: steps, cycles and
observable outputs must match across engines exactly, and any
mismatch is recorded (and fails the run).

Methodology: every engine gets the same warmup (enough calls for the
trace engine to promote, record and compile its hot paths — see
``CHAIN_WARMUP``), then the timed batches are *interleaved* across
engines and the best of ``CHAIN_ROUNDS`` batches is kept per engine.
Interleaving keeps a transient machine-load spike from landing
entirely on one engine's number.

Emits ``BENCH_emulator.json`` next to this file (override with
``--output`` or ``REPRO_BENCH_EMULATOR``).  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_emulator_throughput.py \
        --programs gzip nginx bzip2 --min-trace-speedup 1.5

or under pytest-benchmark with the rest of the suite.
"""

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import _shared  # noqa: E402

from repro.emu import Emulator, run_image  # noqa: E402

DEFAULT_OUTPUT = os.environ.get(
    "REPRO_BENCH_EMULATOR",
    os.path.join(os.path.dirname(__file__), "BENCH_emulator.json"),
)

ENGINES = ("step", "block", "trace")

#: Warmup verification calls per engine before any timing.  The trace
#: engine needs ``TRACE_HOT_THRESHOLD`` executions to promote a head,
#: one recording pass per trace, and the deferred-compile confirmation
#: dispatches; 32 calls reach steady state on every corpus chain.
#: Step and block get the identical warmup so no engine amortizes
#: compile work into another's timed region.
CHAIN_WARMUP = 32

#: Verification calls per timed batch (steady-state: all caches warm).
CHAIN_REPEATS = 40

#: Timed batches per engine; the best (minimum time) is kept.
CHAIN_ROUNDS = 5


def _digest_args(name):
    prog = _shared.program(name)
    image = _shared.protected(name, "cleartext").image
    return image, image.symbols[f"digest_{name}"].vaddr, [
        12345, 7, prog.data.addr("stats"),
    ]


def _chain_setup(name, engine):
    """Warmed emulator + call target for one engine; returns the warmup
    signature so engines can be differentially compared."""
    image, vaddr, args = _digest_args(name)
    emulator = Emulator(image, max_steps=200_000_000, engine=engine)
    signature = []
    for _ in range(CHAIN_WARMUP):
        eax = emulator.call_function(vaddr, args)
        signature.append((eax, emulator.steps, emulator.cycles))
    return emulator, vaddr, args, tuple(signature)


def _chain_batch(emulator, vaddr, args):
    """One timed batch; returns (elapsed seconds, steps executed)."""
    start_steps = emulator.steps
    t0 = time.perf_counter()
    for _ in range(CHAIN_REPEATS):
        emulator.call_function(vaddr, args)
    return time.perf_counter() - t0, emulator.steps - start_steps


def measure_chain(name):
    """Chain throughput for every engine; returns ({engine: ips},
    {engine: signature})."""
    setups = {engine: _chain_setup(name, engine) for engine in ENGINES}
    best = {engine: float("inf") for engine in ENGINES}
    steps = {}
    for _ in range(CHAIN_ROUNDS):
        for engine in ENGINES:
            emulator, vaddr, args, _ = setups[engine]
            elapsed, batch_steps = _chain_batch(emulator, vaddr, args)
            best[engine] = min(best[engine], elapsed)
            steps[engine] = batch_steps
    ips = {engine: steps[engine] / best[engine] for engine in ENGINES}
    sigs = {engine: setups[engine][3] for engine in ENGINES}
    return ips, sigs


def measure_program(name):
    """One whole-program run per engine; returns ({engine: ips},
    {engine: full RunResult signature})."""
    image = _shared.program(name).image
    ips, sigs = {}, {}
    for engine in ENGINES:
        t0 = time.perf_counter()
        result = run_image(image, max_steps=_shared.MAX_STEPS, engine=engine)
        elapsed = time.perf_counter() - t0
        sigs[engine] = (
            result.exit_status, result.steps, result.cycles,
            result.stdout.hex(), repr(result.fault),
        )
        ips[engine] = result.steps / elapsed
    return ips, sigs


def run_suite(programs, output=DEFAULT_OUTPUT):
    rows = {}
    mismatches = []
    for name in programs:
        row = {}
        for kind, measure in (("chain", measure_chain),
                              ("program", measure_program)):
            ips, sigs = measure(name)
            identical = sigs["step"] == sigs["block"] == sigs["trace"]
            if not identical:
                mismatches.append({
                    "program": name, "workload": kind,
                    **{e: repr(sigs[e]) for e in ENGINES},
                })
            row[kind] = {
                "step_ips": round(ips["step"]),
                "block_ips": round(ips["block"]),
                "trace_ips": round(ips["trace"]),
                "speedup": round(ips["block"] / ips["step"], 2),
                "trace_speedup": round(ips["trace"] / ips["block"], 2),
                "identical": identical,
            }
        rows[name] = row

    def geomean(kind, key):
        vals = [rows[n][kind][key] for n in rows]
        return round(math.exp(sum(math.log(v) for v in vals) / len(vals)), 2)

    payload = {
        "programs": rows,
        "chain_speedup_geomean": geomean("chain", "speedup"),
        "program_speedup_geomean": geomean("program", "speedup"),
        "chain_trace_speedup_geomean": geomean("chain", "trace_speedup"),
        "program_trace_speedup_geomean": geomean("program", "trace_speedup"),
        "mismatches": mismatches,
        "chain_repeats": CHAIN_REPEATS,
        "chain_warmup": CHAIN_WARMUP,
        "chain_rounds": CHAIN_ROUNDS,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=2)
    history = {}
    for name, row in rows.items():
        for kind in ("chain", "program"):
            for engine in ENGINES:
                history[f"{name}.{kind}.{engine}_ips"] = \
                    row[kind][f"{engine}_ips"]
    history["chain_speedup_geomean"] = payload["chain_speedup_geomean"]
    history["program_speedup_geomean"] = payload["program_speedup_geomean"]
    history["chain_trace_speedup_geomean"] = \
        payload["chain_trace_speedup_geomean"]
    history["program_trace_speedup_geomean"] = \
        payload["program_trace_speedup_geomean"]
    _shared.record_history("emulator", history)
    return payload


def _print_report(payload):
    print(f"{'program':<8} {'workload':<8} {'step':>11} {'block':>12}"
          f" {'trace':>12} {'blk/step':>9} {'trc/blk':>8}")
    for name, row in payload["programs"].items():
        for kind in ("chain", "program"):
            r = row[kind]
            print(f"{name:<8} {kind:<8} {r['step_ips']:>11,}"
                  f" {r['block_ips']:>12,} {r['trace_ips']:>12,}"
                  f" {r['speedup']:>8.1f}x {r['trace_speedup']:>7.2f}x")
    print(f"\ngeomean block/step: chain {payload['chain_speedup_geomean']}x, "
          f"program {payload['program_speedup_geomean']}x")
    print(f"geomean trace/block: chain "
          f"{payload['chain_trace_speedup_geomean']}x, "
          f"program {payload['program_trace_speedup_geomean']}x; "
          f"{len(payload['mismatches'])} differential mismatch(es)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", nargs="+",
                        default=["wget", "nginx", "bzip2", "gzip"],
                        help="corpus programs to measure (default: the "
                        "four with substantial verification chains; gcc "
                        "and lame have sub-300-step chains dominated by "
                        "per-call setup)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the chain-workload block/step "
                        "geomean speedup reaches this factor")
    parser.add_argument("--min-trace-speedup", type=float, default=0.0,
                        help="fail unless the chain-workload trace/block "
                        "geomean speedup reaches this factor")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_emulator.json")
    args = parser.parse_args(argv)

    payload = run_suite(args.programs, output=args.output)
    _print_report(payload)
    if payload["mismatches"]:
        print("ERROR: engines diverged")
        return 1
    if payload["chain_speedup_geomean"] < args.min_speedup:
        print(f"ERROR: chain block/step speedup "
              f"{payload['chain_speedup_geomean']}x "
              f"below required {args.min_speedup}x")
        return 1
    if payload["chain_trace_speedup_geomean"] < args.min_trace_speedup:
        print(f"ERROR: chain trace/block speedup "
              f"{payload['chain_trace_speedup_geomean']}x "
              f"below required {args.min_trace_speedup}x")
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_emulator_throughput(benchmark):
    payload = benchmark.pedantic(
        lambda: run_suite(["gzip"]), rounds=1, iterations=1
    )
    _print_report(payload)
    assert not payload["mismatches"]
    assert payload["chain_speedup_geomean"] >= 2.0
    assert payload["program_speedup_geomean"] >= 2.0
    assert payload["chain_trace_speedup_geomean"] >= 1.2


if __name__ == "__main__":
    sys.exit(main())
