"""Native backend vs interpreter on the whole builder library."""

import pytest

from repro.binary import BinaryImage, Perm, Section
from repro.corpus import builders
from repro.emu import Emulator
from repro.ropc import compile_functions
from repro.ropc.interpreter import Interpreter, IRMemory

DATA = 0x8090000


def native_call(functions, name, args, blobs=()):
    code, spans, _ = compile_functions(functions, base=0x8048000, entry_main=None)
    img = BinaryImage("t")
    img.add_section(Section(".text", 0x8048000, code, Perm.RX))
    img.add_section(Section(".data", DATA, bytes(0x4000), Perm.RW))
    emu = Emulator(img, max_steps=2_000_000)
    for addr, data in blobs:
        emu.memory.write(addr, data)
    start = 0x8048000 + spans[name][0]
    return emu.call_function(start, args), emu


def interp_call(functions, name, args, blobs=()):
    mem = IRMemory()
    for addr, data in blobs:
        mem.load_blob(addr, data)
    table = {f.name: f for f in functions}
    return Interpreter(table, mem).run(table[name], args)


@pytest.mark.parametrize(
    "builder,args,blobs",
    [
        (builders.mix32, [0xDEADBEEF], []),
        (builders.checksum_words, [DATA + 0x100, 8], [(DATA + 0x100, bytes(range(32)))]),
        (builders.adler_words, [DATA + 0x100, 8], [(DATA + 0x100, bytes(range(32)))]),
        (builders.crc_step, [0xFFFFFFFF, 0xA5], []),
        (builders.hash_string, [DATA + 0x200, 10], [(DATA + 0x200, b"hello there")]),
        (builders.parse_uint, [DATA + 0x200, 4], [(DATA + 0x200, b"1234")]),
        (builders.popcount, [0x12345678], []),
        (builders.bit_reverse, [0x12345678], []),
        (builders.abs32, [(-123) & 0xFFFFFFFF], []),
        (builders.quantize, [5000, 700, 16], []),
        (builders.clip, [500, 0, 100], []),
        (builders.range_sum, [1, 100], []),
        (builders.lz_match_len, [DATA + 0x300, DATA + 0x310, 8],
         [(DATA + 0x300, b"abcabcab"), (DATA + 0x310, b"abcxbcab")]),
        (builders.token_kind, [ord("q")], []),
    ],
    ids=lambda v: getattr(v, "__name__", ""),
)
def test_native_matches_interpreter(builder, args, blobs):
    function = builder()
    native, _ = native_call([function], function.name, args, blobs)
    reference = interp_call([function], function.name, args, blobs)
    assert native == reference


def test_calls_and_callee_saved_regs():
    from repro.ropc import ir
    from repro.x86 import EAX, EBX, ESI
    callee = builders.mix32()
    caller = ir.IRFunction("caller", params=1)
    caller.emit(ir.Param(ESI, 0))
    caller.emit(ir.Mov(EBX, ESI))
    caller.emit(ir.Call(EAX, "mix32", (EBX,)))
    caller.emit(ir.BinOp("add", EAX, ESI))   # esi must have survived
    caller.emit(ir.Ret())
    native, _ = native_call([callee, caller], "caller", [7])
    assert native == interp_call([callee, caller], "caller", [7])


def test_digest_functions_native():
    for spec in (("d1", 8, True, False), ("d2", 0, False, True), ("d3", 4, True, True)):
        f = builders.make_digest(*spec)
        native, _ = native_call([f], spec[0], [111, 222, DATA + 0x400])
        assert native == interp_call([f], spec[0], [111, 222, DATA + 0x400])


def test_entry_stub_runs_main():
    from repro.ropc import ir
    from repro.x86 import EAX
    main = ir.IRFunction("main", 0)
    main.emit(ir.Const(EAX, 42))
    main.emit(ir.Ret())
    code, spans, entry = compile_functions([main], base=0x8048000)
    img = BinaryImage("t")
    img.add_section(Section(".text", 0x8048000, code, Perm.RX))
    img.entry = 0x8048000 + entry
    from repro.emu import run_image
    assert run_image(img).exit_status == 42
