"""Differential property: generated filler functions behave identically
under the IR interpreter and compiled to native code in the emulator.

This covers the whole native backend (every op lowering, the ABI, the
frame layout) against the reference semantics, over randomized op mixes.
"""

from hypothesis import given, settings, strategies as st

from repro.binary import BinaryImage, Perm, Section
from repro.corpus.generator import FunctionGenerator, MixProfile
from repro.emu import Emulator
from repro.ropc import compile_functions
from repro.ropc.interpreter import Interpreter, IRMemory

SCRATCH = 0x8090000


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31), st.integers(0, 0xFFFFFFFF))
def test_generated_functions_native_equals_interpreter(seed, arg):
    profile = MixProfile(functions=3, call_density=0.5)
    functions = FunctionGenerator(profile, SCRATCH, seed).generate("p")

    table = {f.name: f for f in functions}
    mem = IRMemory()
    interp = Interpreter(table, mem, max_ops=500_000)
    expected = [interp.run(f, [arg]) for f in functions]

    code, spans, _ = compile_functions(functions, base=0x8048000, entry_main=None)
    image = BinaryImage("t")
    image.add_section(Section(".text", 0x8048000, code, Perm.RX))
    image.add_section(Section(".data", SCRATCH, bytes(0x1000), Perm.RW))
    got = []
    for f in functions:
        emulator = Emulator(image, max_steps=2_000_000)
        # replay earlier functions so shared scratch state matches the
        # interpreter's sequential runs
        for g in functions:
            value = emulator.call_function(0x8048000 + spans[g.name][0], [arg])
            if g.name == f.name:
                got.append(value)
                break
    assert got == expected
