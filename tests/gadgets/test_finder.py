"""Gadget discovery including unaligned decodes."""

from repro.gadgets import GadgetCatalog, GadgetKind, GadgetOp, find_gadgets_in_bytes
from repro.x86 import Assembler, EAX, EBX, ECX, Imm


def test_finds_aligned_and_unaligned():
    a = Assembler()
    # mov eax, 0x58c3xxxx hides "pop eax; ret" in the immediate
    a.mov(EAX, Imm(0x0000C358, 32))
    a.ret()
    code = a.assemble()
    gadgets = find_gadgets_in_bytes(code, base=0)
    kinds = {(g.address, g.kind.op) for g in gadgets}
    assert (1, GadgetOp.LOAD_CONST) in kinds  # unaligned pop eax; ret inside imm


def test_six_instruction_limit():
    a = Assembler()
    for _ in range(8):
        a.nop()
    a.ret()
    gadgets = find_gadgets_in_bytes(a.assemble(), base=0, max_insns=6)
    starts = {g.address for g in gadgets}
    assert 3 in starts      # 5 nops + ret = 6 insns
    assert 0 not in starts  # 8 nops + ret > 6 insns


def test_far_gadgets_optional():
    a = Assembler()
    a.pop(EAX); a.retf()
    code = a.assemble()
    assert any(g.far for g in find_gadgets_in_bytes(code, base=0))
    assert not any(g.far for g in find_gadgets_in_bytes(code, base=0, include_far=False))


def test_catalog_prefers_overlapping():
    a = Assembler()
    a.label("g1"); a.pop(EAX); a.ret()
    a.label("g2"); a.pop(EAX); a.ret()
    code = a.assemble()
    catalog = GadgetCatalog(find_gadgets_in_bytes(code, base=0x100))
    kind = GadgetKind(GadgetOp.LOAD_CONST, dst=EAX)
    assert len(catalog.of_kind(kind)) == 2
    catalog.mark_preferred(0x102)  # the second one overlaps a target
    assert catalog.best(kind).address == 0x102


def test_catalog_capabilities():
    a = Assembler()
    a.pop(EAX); a.ret()
    a.pop(EBX); a.ret()
    a.mov(EBX, EAX); a.ret()
    catalog = GadgetCatalog(find_gadgets_in_bytes(a.assemble(), base=0))
    regs = {r.name for r in catalog.load_const_regs()}
    assert {"eax", "ebx"} <= regs
    assert catalog.has(GadgetKind(GadgetOp.MOV_REG, dst=EBX, src=EAX))
    assert not catalog.has(GadgetKind(GadgetOp.MOV_REG, dst=EAX, src=EBX))
    assert catalog.count_by_op()[GadgetOp.LOAD_CONST] >= 2
