"""Oblivious hashing baseline (Chen et al.).

OH intersperses hash-update instructions with the protected code: the
hash accumulates intermediate *execution state* (assigned values and
taken branches), and a check compares it against a known-good value.
Tampering changes the computation and hence the hash — without ever
reading code as data, so the Wurster attack does not apply.

The two limitations the paper holds against OH are both reproducible
here:

* instrumenting a function whose state depends on non-deterministic
  input (``ptrace_detect``) gives a run-dependent hash — the check
  must either be dropped (no protection) or it false-positives;
* the expected hash comes from concrete (test) executions, so only
  exercised paths are protected.

The instrumented code is also slower — OH pays its overhead in the
protected code itself, unlike Parallax (§IX).
"""

from __future__ import annotations

import copy
from typing import Iterable, List, Optional

from ..corpus.program import Program
from ..ropc import ir
from ..x86.registers import EAX, EBX, ECX, EDI, EDX

EXIT_TAMPERED = 66

#: Marker immediate replaced by the recorded expected hash.
EXPECTED_MARKER = 0x0B1141C5


def instrument_function(function: ir.IRFunction, cell: int) -> ir.IRFunction:
    """Insert hash updates after every register assignment and at every
    basic-block label (path hashing)."""
    out = ir.IRFunction(function.name, function.params)
    for index, op in enumerate(function.body):
        out.emit(copy.copy(op))
        if isinstance(op, ir.Label):
            out.emit(ir.OHMark(0x9E3779B9 ^ index, cell))
        dst = getattr(op, "dst", None)
        if dst is not None and isinstance(
            op, (ir.Const, ir.Mov, ir.BinOp, ir.Load, ir.Shift, ir.Param, ir.AddConst)
        ):
            out.emit(ir.OHUpdate(dst, cell))
    return out


class OHProgram:
    """A corpus program with oblivious hashing over selected functions."""

    def __init__(
        self,
        program: Program,
        instrument: Iterable[str],
        check: bool = True,
        expected: Optional[int] = None,
    ):
        self.original = program
        self.instrumented = list(instrument)
        cell = program.data.addr("stats") if "stats" in program.data.names else None
        if cell is None:
            raise ValueError("program lacks a stats cell for the OH state")
        self.cell = cell + 4  # second word of the stats blob
        if expected is None and check:
            # Training run: build without the check, record the hash.
            trainer = self._build(program, check=False)
            result = trainer.run()
            if result.crashed:
                raise RuntimeError(f"training run crashed: {result.fault}")
            expected = self._read_hash(trainer)
        self.expected = expected
        self.program = self._build(program, check=check, expected=expected)
        self.image = self.program.image

    def _read_hash(self, built: Program) -> int:
        # The emulator's final memory is gone; re-run and capture.
        from ..emu import Emulator, OperatingSystem
        from ..emu.syscalls import ExitProgram

        emulator = Emulator(built.image, max_steps=200_000_000)
        try:
            while True:
                emulator.step()
        except ExitProgram:
            pass
        return emulator.memory.read_u32(self.cell)

    def _build(self, program: Program, check: bool, expected: Optional[int] = None) -> Program:
        functions: List[ir.IRFunction] = []
        for name, function in program.functions.items():
            if name in self.instrumented:
                functions.append(instrument_function(function, self.cell))
            elif name == "main" and check:
                functions.append(
                    self._main_with_check(function, expected if expected is not None else EXPECTED_MARKER)
                )
            else:
                functions.append(
                    ir.IRFunction(name, function.params, [copy.copy(op) for op in function.body])
                )
        return Program(
            program.name + "+oh",
            functions,
            program.rodata,
            program.data,
            options=program.options,
            candidates=program.candidates,
        )

    def _main_with_check(self, main: ir.IRFunction, expected: int) -> ir.IRFunction:
        """Insert the hash check before every Ret of main."""
        out = ir.IRFunction("main", main.params)
        counter = 0
        for op in main.body:
            if isinstance(op, ir.Ret):
                ok = f"__oh_ok_{counter}"
                counter += 1
                # EDI is free at main's exits; preserve the return value
                # around the clobbering check sequence.
                out.emit(ir.Mov(EDI, EAX))
                out.emit(ir.Const(EDX, self.cell))
                out.emit(ir.Load(ECX, EDX, 0))
                out.emit(ir.Branch("eq", ECX, expected, ok))
                out.emit(ir.Const(EAX, 1))
                out.emit(ir.Const(EBX, EXIT_TAMPERED))
                out.emit(ir.Syscall())
                out.emit(ir.Label(ok))
                out.emit(ir.Mov(EAX, EDI))
            out.emit(copy.copy(op))
        return out

    def run(self, **kwargs):
        return self.program.run(**kwargs)
