"""Protection-as-a-service: the ``repro serve`` asyncio daemon.

The ROADMAP's traffic story needs a long-running server, not a CLI:
protection is referentially transparent (every ``protect`` is a pure
function of bytes + config + seed), so a serving layer can amortize the
offline step across clients the way the per-process cache already does
within one.  This package supplies that layer, stdlib-only:

* :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio
  streams (keep-alive, bounded headers/body, no dependencies);
* :mod:`repro.serve.singleflight` — concurrent identical requests
  coalesce onto one in-flight execution whose result fans out to every
  waiter (``serve.singleflight.{leader,follower}`` metrics);
* :mod:`repro.serve.quota` — per-tenant token-bucket admission;
* :mod:`repro.serve.jobs` — the picklable job bodies executed on the
  worker pool, batched to amortize per-task dispatch;
* :mod:`repro.serve.server` — admission → single-flight → batched pool
  → sharded cache, plus ``/metrics``, ``/stats``, ``/journal``,
  graceful SIGTERM drain;
* :mod:`repro.serve.client` — blocking and asyncio clients used by the
  tests, the CI smoke job, and the load generator
  (``benchmarks/bench_serve.py``).
"""

from .client import AsyncServeClient, ServeClient
from .jobs import JOB_KINDS, execute_batch, execute_job, job_key, make_task
from .quota import QuotaManager, TokenBucket
from .server import ProtectionServer, ServeConfig, ServerThread, serve
from .singleflight import SingleFlight

__all__ = [
    "AsyncServeClient",
    "ServeClient",
    "JOB_KINDS",
    "execute_batch",
    "execute_job",
    "job_key",
    "make_task",
    "QuotaManager",
    "TokenBucket",
    "ProtectionServer",
    "ServeConfig",
    "ServerThread",
    "serve",
    "SingleFlight",
]
