"""Reference IR interpreter.

Executes IR functions directly over a byte-addressed memory, providing
the ground-truth semantics both backends must match.  Tests compare
native-backend and ROP-backend runs against this interpreter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..x86.registers import EAX, Register
from . import ir

MASK32 = 0xFFFFFFFF


class InterpreterError(Exception):
    pass


class IRMemory:
    """Flat sparse byte memory for the interpreter."""

    def __init__(self):
        self._bytes: Dict[int, int] = {}

    def read8(self, addr: int) -> int:
        return self._bytes.get(addr & MASK32, 0)

    def write8(self, addr: int, value: int) -> None:
        self._bytes[addr & MASK32] = value & 0xFF

    def read32(self, addr: int) -> int:
        return (
            self.read8(addr)
            | (self.read8(addr + 1) << 8)
            | (self.read8(addr + 2) << 16)
            | (self.read8(addr + 3) << 24)
        )

    def write32(self, addr: int, value: int) -> None:
        for i in range(4):
            self.write8(addr + i, (value >> (8 * i)) & 0xFF)

    def load_blob(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.write8(addr + i, byte)

    def read_blob(self, addr: int, length: int) -> bytes:
        return bytes(self.read8(addr + i) for i in range(length))


def _signed(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def _condition(cond: str, a: int, b: int) -> bool:
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    if cond == "ult":
        return a < b
    if cond == "uge":
        return a >= b
    sa, sb = _signed(a), _signed(b)
    if cond == "lt":
        return sa < sb
    if cond == "le":
        return sa <= sb
    if cond == "gt":
        return sa > sb
    if cond == "ge":
        return sa >= sb
    raise InterpreterError(f"bad condition {cond!r}")


class Interpreter:
    """Executes IR functions.

    Args:
        functions: name -> IRFunction map (for Call resolution).
        memory: shared :class:`IRMemory`.
        syscall_handler: callable(regs_dict) -> eax value, invoked on
            Syscall ops; defaults to raising.
    """

    def __init__(
        self,
        functions: Optional[Dict[str, ir.IRFunction]] = None,
        memory: Optional[IRMemory] = None,
        syscall_handler: Optional[Callable] = None,
        max_ops: int = 1_000_000,
    ):
        self.functions = functions or {}
        self.memory = memory if memory is not None else IRMemory()
        self.syscall_handler = syscall_handler
        self.max_ops = max_ops
        self.ops_executed = 0

    def run(self, function: ir.IRFunction, args: List[int] = ()) -> int:
        """Execute ``function``; returns the value of eax at Ret."""
        regs: Dict[str, int] = {r.name: 0 for r in ir.IR_REGS}
        labels = function.labels()
        pc = 0
        body = function.body

        while pc < len(body):
            self.ops_executed += 1
            if self.ops_executed > self.max_ops:
                raise InterpreterError("op budget exhausted (infinite loop?)")
            op = body[pc]
            pc += 1

            if isinstance(op, ir.Label):
                continue
            if isinstance(op, ir.Const):
                regs[op.dst.name] = op.value
            elif isinstance(op, ir.AddConst):
                regs[op.dst.name] = (regs[op.dst.name] + op.value) & MASK32
            elif isinstance(op, ir.OHUpdate):
                self.memory.write32(
                    op.cell,
                    (self.memory.read32(op.cell) + regs[op.src.name]) & MASK32,
                )
            elif isinstance(op, ir.OHMark):
                self.memory.write32(
                    op.cell, (self.memory.read32(op.cell) + op.value) & MASK32
                )
            elif isinstance(op, ir.Mov):
                regs[op.dst.name] = regs[op.src.name]
            elif isinstance(op, ir.BinOp):
                a, b = regs[op.dst.name], regs[op.src.name]
                if op.op == "add":
                    regs[op.dst.name] = (a + b) & MASK32
                elif op.op == "sub":
                    regs[op.dst.name] = (a - b) & MASK32
                elif op.op == "and":
                    regs[op.dst.name] = a & b
                elif op.op == "or":
                    regs[op.dst.name] = a | b
                elif op.op == "xor":
                    regs[op.dst.name] = a ^ b
                elif op.op == "mul":
                    regs[op.dst.name] = (a * b) & MASK32
            elif isinstance(op, ir.Neg):
                regs[op.dst.name] = (-regs[op.dst.name]) & MASK32
            elif isinstance(op, ir.Not):
                regs[op.dst.name] = (~regs[op.dst.name]) & MASK32
            elif isinstance(op, ir.Shift):
                value = regs[op.dst.name]
                if op.op == "shl":
                    regs[op.dst.name] = (value << op.amount) & MASK32
                elif op.op == "shr":
                    regs[op.dst.name] = value >> op.amount
                else:  # sar
                    regs[op.dst.name] = (_signed(value) >> op.amount) & MASK32
            elif isinstance(op, ir.Load):
                regs[op.dst.name] = self.memory.read32(regs[op.base.name] + op.disp)
            elif isinstance(op, ir.Store):
                self.memory.write32(regs[op.base.name] + op.disp, regs[op.src.name])
            elif isinstance(op, ir.Load8):
                regs[op.dst.name] = self.memory.read8(regs[op.base.name] + op.disp)
            elif isinstance(op, ir.Store8):
                self.memory.write8(regs[op.base.name] + op.disp, regs[op.src.name])
            elif isinstance(op, ir.Param):
                regs[op.dst.name] = args[op.index] & MASK32
            elif isinstance(op, ir.Call):
                callee = self.functions.get(op.callee)
                if callee is None:
                    raise InterpreterError(f"unknown function {op.callee!r}")
                result = self.run(callee, [regs[r.name] for r in op.args])
                # eax/ecx/edx are caller-clobbered in the native ABI; the
                # interpreter zeroes ecx/edx to catch IR that wrongly
                # relies on them surviving.
                regs["ecx"] = 0
                regs["edx"] = 0
                regs["eax"] = result
                if op.dst is not None:
                    regs[op.dst.name] = result
            elif isinstance(op, ir.Syscall):
                if self.syscall_handler is None:
                    raise InterpreterError("no syscall handler installed")
                regs["eax"] = self.syscall_handler(dict(regs), self.memory) & MASK32
            elif isinstance(op, ir.Jump):
                pc = labels[op.target]
            elif isinstance(op, ir.Branch):
                b = regs[op.b.name] if isinstance(op.b, Register) else op.b & MASK32
                if _condition(op.cond, regs[op.a.name], b):
                    pc = labels[op.target]
            elif isinstance(op, ir.Ret):
                if op.src is not None:
                    regs["eax"] = regs[op.src.name]
                return regs["eax"]
            else:
                raise InterpreterError(f"unhandled op {op!r}")
        raise InterpreterError(f"{function.name}: fell off end without Ret")
