"""Flight-recorder streaming features: capacity config, subscriptions,
worker-event ingestion, self-accounting."""

import pytest

from repro.telemetry import FlightRecorder
from repro.telemetry.recorder import CAPACITY_ENV, default_capacity


def test_capacity_env_override(monkeypatch):
    monkeypatch.setenv(CAPACITY_ENV, "16")
    assert default_capacity() == 16
    rec = FlightRecorder()
    assert rec.capacity == 16
    # explicit argument wins over the environment
    assert FlightRecorder(capacity=4).capacity == 4
    monkeypatch.setenv(CAPACITY_ENV, "0")
    with pytest.raises(ValueError):
        FlightRecorder()
    monkeypatch.delenv(CAPACITY_ENV)
    assert FlightRecorder().capacity == FlightRecorder.DEFAULT_CAPACITY


def test_subscribers_see_events_live():
    rec = FlightRecorder(capacity=8)
    seen = []
    rec.subscribe(seen.append)
    rec.record("protect", program="wget")
    rec.record("attack", detected=True)
    assert [e["kind"] for e in seen] == ["protect", "attack"]
    assert seen[0]["program"] == "wget"
    assert seen[0]["type"] == "event"
    rec.unsubscribe(seen.append)
    rec.record("protect")
    assert len(seen) == 2
    # unsubscribing an unknown callback is a no-op
    rec.unsubscribe(seen.append)


def test_disabled_recorder_skips_subscribers():
    rec = FlightRecorder(capacity=8, enabled=False)
    seen = []
    rec.subscribe(seen.append)
    rec.record("protect")
    assert seen == [] and len(rec) == 0


def test_ingest_adopts_worker_events():
    worker = FlightRecorder(capacity=8)
    worker.record("protect", program="wget", seconds=0.5)
    worker.record("block_compile", start=0x1000)
    parent = FlightRecorder(capacity=8)
    adopted = parent.ingest(
        worker.to_events(), labels={"request": "r1"}, pid=4242
    )
    assert adopted == 2
    events = parent.to_events()
    assert [e["kind"] for e in events] == ["protect", "block_compile"]
    # parent clock, new sequence numbers; worker ts preserved
    assert events[0]["seq"] == 1
    assert events[0]["worker_ts"] >= 0
    assert events[0]["pid"] == 4242
    assert events[0]["ctx"] == {"request": "r1"}
    assert events[0]["program"] == "wget"


def test_ingest_merges_labels_under_existing_ctx():
    worker = FlightRecorder(capacity=8)
    worker.record("attack", ctx={"engine": "trace"})
    parent = FlightRecorder(capacity=8)
    parent.ingest(worker.to_events(), labels={"request": "r1"})
    (event,) = parent.to_events()
    assert event["ctx"] == {"request": "r1", "engine": "trace"}


def test_ingest_skips_non_event_records_and_disabled():
    parent = FlightRecorder(capacity=8)
    assert parent.ingest([{"type": "journal_summary"}]) == 0
    parent.enabled = False
    assert parent.ingest([{"type": "event", "kind": "x", "seq": 1}]) == 0


def test_ingested_events_reach_subscribers():
    worker = FlightRecorder(capacity=8)
    worker.record("protect")
    parent = FlightRecorder(capacity=8)
    seen = []
    parent.subscribe(seen.append)
    parent.ingest(worker.to_events(), pid=7)
    assert len(seen) == 1 and seen[0]["pid"] == 7


def test_self_accounting_samples_record_cost():
    rec = FlightRecorder(capacity=1024)
    for i in range(600):  # crosses two 256-sample points
        rec.record("k", i=i)
    assert rec.self_seconds > 0.0
    assert rec.summary()["self_seconds"] == pytest.approx(
        rec.self_seconds, abs=1e-9
    )
    rec.clear()
    assert rec.self_seconds == 0.0
