"""Engine hot-spot profiler: per-mnemonic and per-block sample counters.

The function-level :mod:`repro.emu.profiler` answers *which routine* is
hot; this module answers *which instructions and superblocks* the
engines actually spend their time in — the attribution §V of the paper
needs when a verification chain shows up as slowdown.

Counting strategy, chosen so the block engine keeps its speed edge:

* the **step engine** counts every executed mnemonic as it dispatches
  (one dict update per step, only when a profiler is installed);
* the **block engine** counts one sample per *block execution* and
  remembers each block's mnemonic tuple; per-mnemonic totals are then
  reconstituted at report time as ``executions × occurrences``, so the
  generated block bodies stay untouched and full-speed;
* the **trace engine** counts one sample per *trace execution* the same
  way (one dict update per dispatched trace, which may cover hundreds
  of instructions), plus block samples for its cold-path executions.

All engines feed the same :class:`HotspotProfiler`; ``repro profile``
and the metrics export (``emu.hot.mnemonic.*`` / ``emu.hot.block.*`` /
``emu.hot.trace.*``) render the merged view.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["HotspotProfiler"]


class HotspotProfiler:
    """Sample counters keyed by mnemonic, block start and trace head."""

    __slots__ = (
        "mnemonic_samples", "block_samples", "_block_mnems",
        "trace_samples", "_trace_meta",
    )

    def __init__(self):
        #: mnemonic -> executed-instruction count (step engine, direct).
        self.mnemonic_samples: Dict[str, int] = {}
        #: block start address -> execution count (block engine).
        self.block_samples: Dict[int, int] = {}
        #: block start address -> that block's mnemonic tuple.
        self._block_mnems: Dict[int, Tuple[str, ...]] = {}
        #: trace head address -> execution count (trace engine).
        self.trace_samples: Dict[int, int] = {}
        #: trace head -> (mnemonic tuple, linked-block count).
        self._trace_meta: Dict[int, Tuple[Tuple[str, ...], int]] = {}

    # -- recording (hot paths) ------------------------------------------

    def record_step(self, mnemonic: str) -> None:
        """One executed instruction (step engine)."""
        samples = self.mnemonic_samples
        samples[mnemonic] = samples.get(mnemonic, 0) + 1

    def record_block(self, block) -> None:
        """One executed superblock (block engine).

        ``block`` is a :class:`repro.emu.blocks.CompiledBlock`; its
        ``mnems`` tuple is captured so report-time aggregation can
        expand block executions into per-mnemonic counts.
        """
        start = block.start
        samples = self.block_samples
        samples[start] = samples.get(start, 0) + 1
        if start not in self._block_mnems:
            self._block_mnems[start] = block.mnems

    def record_trace(self, trace) -> None:
        """One dispatched trace (trace engine).

        ``trace`` is a :class:`repro.emu.traces.CompiledTrace`; like
        blocks, its mnemonic tuple expands into per-mnemonic counts at
        report time (an upper bound when the trace side-exits early).
        """
        head = trace.head
        samples = self.trace_samples
        samples[head] = samples.get(head, 0) + 1
        if head not in self._trace_meta:
            self._trace_meta[head] = (trace.mnems, len(trace.ranges))

    # -- aggregation -----------------------------------------------------

    def mnemonic_counts(self) -> Dict[str, int]:
        """Merged per-mnemonic totals across all engines.

        Block and trace samples expand to ``executions × occurrences``
        per mnemonic.  Side-exited runs attribute the whole block or
        trace, so these counts are an upper bound for bodies with
        conditional exits — fine for hot-spot ranking.
        """
        totals = dict(self.mnemonic_samples)
        for start, executions in self.block_samples.items():
            for mnemonic in self._block_mnems.get(start, ()):
                totals[mnemonic] = totals.get(mnemonic, 0) + executions
        for head, executions in self.trace_samples.items():
            meta = self._trace_meta.get(head)
            if meta is not None:
                for mnemonic in meta[0]:
                    totals[mnemonic] = totals.get(mnemonic, 0) + executions
        return totals

    def top_mnemonics(self, n: int = 10) -> List[Tuple[str, int]]:
        totals = self.mnemonic_counts()
        return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def top_blocks(self, n: int = 10) -> List[Tuple[int, int]]:
        return sorted(
            self.block_samples.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]

    def top_traces(self, n: int = 10) -> List[Tuple[int, int]]:
        return sorted(
            self.trace_samples.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]

    @property
    def total_samples(self) -> int:
        return sum(self.mnemonic_counts().values())

    def clear(self) -> None:
        self.mnemonic_samples.clear()
        self.block_samples.clear()
        self._block_mnems.clear()
        self.trace_samples.clear()
        self._trace_meta.clear()

    # -- rendering -------------------------------------------------------

    def report(self, top: int = 10) -> str:
        """Human-readable hot-spot table (used by ``repro profile``)."""
        total = self.total_samples
        if not total:
            return "no hot-spot samples recorded"
        lines = [f"engine hot spots ({total:,} instruction samples)"]
        lines.append(f"  {'mnemonic':<10} {'samples':>14} {'share':>8}")
        for mnemonic, count in self.top_mnemonics(top):
            lines.append(
                f"  {mnemonic:<10} {count:>14,} {count / total:>8.2%}"
            )
        if self.block_samples:
            lines.append(f"  {'block':<10} {'execs':>14} {'len':>8}")
            for start, execs in self.top_blocks(top):
                length = len(self._block_mnems.get(start, ()))
                lines.append(f"  {start:#010x} {execs:>14,} {length:>8}")
        if self.trace_samples:
            lines.append(
                f"  {'trace':<10} {'execs':>14} {'len':>8} {'blocks':>8}"
            )
            for head, execs in self.top_traces(top):
                mnems, n_blocks = self._trace_meta.get(head, ((), 0))
                lines.append(
                    f"  {head:#010x} {execs:>14,} {len(mnems):>8} "
                    f"{n_blocks:>8}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<HotspotProfiler {len(self.mnemonic_samples)} mnemonics, "
            f"{len(self.block_samples)} blocks, "
            f"{len(self.trace_samples)} traces>"
        )
