"""Per-tenant token-bucket quotas for the serving layer.

Classic token bucket: a tenant's bucket refills at ``rate`` tokens per
second up to ``burst`` capacity; each admitted request spends one
token.  When the bucket is empty the request is rejected with the
number of seconds until a token will be available — the server turns
that into ``429`` + ``Retry-After``.

Time is injected (``clock`` callable), so the tests drive the bucket
deterministically; the server uses ``time.monotonic``.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["TokenBucket", "QuotaManager"]


class TokenBucket:
    """One tenant's bucket.  ``rate <= 0`` means unlimited."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self.updated = now

    def try_acquire(self, now: float, cost: float = 1.0) -> float:
        """Spend ``cost`` tokens; returns 0.0 on success, else the
        seconds until the deficit refills (the Retry-After hint)."""
        if self.rate <= 0:
            return 0.0
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


class QuotaManager:
    """Token buckets keyed by tenant, created on first sight.

    One lock guards the table; buckets themselves are only touched
    under it.  Admission is O(1) and the table is bounded by the
    number of distinct tenants seen (the server's cardinality story —
    tenants are client-supplied but the metrics registry's series
    guard caps the damage of a hostile tenant flood).
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2 * rate)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def unlimited(self) -> bool:
        return self.rate <= 0

    def try_acquire(self, tenant: str, cost: float = 1.0) -> float:
        """0.0 when admitted; otherwise seconds until retry is viable."""
        if self.unlimited:
            return 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, now
                )
            return bucket.try_acquire(now, cost)

    def retry_after_header(self, wait: float) -> str:
        """``Retry-After`` wants integral seconds; round up, floor 1."""
        return str(max(1, int(math.ceil(wait))))

    def tenants(self) -> int:
        with self._lock:
            return len(self._buckets)
