"""Chain serialization mechanics."""

import pytest

from repro.gadgets import GadgetCatalog, GadgetKind, GadgetOp
from repro.ropc import RopChain, emit_standard_gadgets
from repro.ropc.chain import ChainError
from repro.x86 import EAX


def test_serialize_requires_resolution():
    chain = RopChain()
    chain.gadget(GadgetKind(GadgetOp.LOAD_CONST, dst=EAX))
    chain.const(5)
    with pytest.raises(ChainError):
        chain.to_bytes(0x1000)


def test_labels_resolve_to_addresses():
    _code, gadgets = emit_standard_gadgets(
        [GadgetKind(GadgetOp.POP_ESP)], base=0x100
    )
    catalog = GadgetCatalog(gadgets)
    chain = RopChain()
    chain.gadget(GadgetKind(GadgetOp.POP_ESP))
    chain.label_ref("here")
    chain.label("here")
    payload = chain.resolve(catalog).to_bytes(0x2000)
    # word 0: gadget addr; word 1: address of "here" == end of chain
    assert int.from_bytes(payload[4:8], "little") == 0x2000 + 8


def test_delta_words():
    chain = RopChain()
    chain.label("a")
    chain.const(0)
    chain.const(0)
    chain.label("b")
    chain.delta_ref("b", "a")
    payload = chain.to_bytes(0x0)
    assert int.from_bytes(payload[8:12], "little") == 8


def test_duplicate_chain_label_rejected():
    chain = RopChain()
    chain.label("x")
    chain.label("x")
    with pytest.raises(ChainError):
        chain.layout(0)


def test_undefined_label_rejected():
    chain = RopChain()
    chain.label_ref("ghost")
    with pytest.raises(ChainError):
        chain.to_bytes(0)


def test_word_count_and_size():
    chain = RopChain()
    chain.const(1)
    chain.const(2)
    chain.label("x")
    assert chain.byte_size == 8
    assert chain.word_count == 2
