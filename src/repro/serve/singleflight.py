"""Single-flight deduplication for concurrent identical requests.

Protection is a pure function of (bytes, config, seed), so two
concurrent requests with the same content key would compute the same
artifact twice.  :class:`SingleFlight` coalesces them: the first
arrival for a key becomes the **leader** and runs the computation; any
request arriving while it is in flight becomes a **follower** and
awaits the leader's future.  The result — or the leader's exception —
fans out to every waiter.

Semantics pinned by ``tests/serve/test_singleflight.py``:

* N concurrent calls with one key run the computation exactly once and
  all receive the *same object* (callers that must not share mutable
  state copy on their side; the server serializes to JSON, so sharing
  is free);
* the leader's exception propagates to every follower, and the key is
  removed from the in-flight table *before* the future resolves — a
  failure never poisons later requests, which start a fresh leader;
* the computation runs in its own task, so a follower (or even the
  leader's own request) being cancelled — a client disconnect — does
  not cancel the shared work other waiters depend on.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

__all__ = ["SingleFlight", "LEADER", "FOLLOWER"]

LEADER = "leader"
FOLLOWER = "follower"


class SingleFlight:
    """Coalesce concurrent computations per content key (asyncio)."""

    def __init__(self):
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Lifetime role counts (the server also exports these as
        #: ``serve.singleflight.{leader,follower}`` metrics).
        self.leaders = 0
        self.followers = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def is_inflight(self, key: str) -> bool:
        return key in self._inflight

    async def run(
        self, key: str, compute: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, str]:
        """Return ``(value, role)`` where role is leader or follower.

        ``compute`` is only invoked for the leader.  Followers never
        call it; they await the leader's future (shielded, so one
        cancelled waiter cannot tear down the shared result).
        """
        future = self._inflight.get(key)
        if future is not None:
            self.followers += 1
            return await asyncio.shield(future), FOLLOWER
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self.leaders += 1
        # The computation runs in its own task: if this request's task
        # is cancelled mid-flight, followers still get their result.
        task = loop.create_task(self._lead(key, future, compute))
        try:
            return await asyncio.shield(future), LEADER
        finally:
            # Keep a reference until done so the task is never GC'd
            # mid-flight; exceptions are delivered via the future.
            del task

    async def _lead(self, key: str, future: asyncio.Future, compute) -> None:
        try:
            value = await compute()
        except BaseException as exc:  # noqa: BLE001 — fan out verbatim
            # Remove the key BEFORE resolving: a request arriving after
            # the failure must start a fresh leader, never observe the
            # poisoned future.
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved so a leaderless failure (every waiter
                # already cancelled) doesn't warn on GC.
                future.exception()
        else:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(value)
