"""Runtime-support routines inserted into protected binaries.

Dynamic function chains (§V-B) are generated/decrypted *at runtime by
the protected process itself*.  These routines are written in our IR
and compiled natively into a ``.parallaxrt`` section, so their cost is
measured by the emulator exactly like any other code — the Fig. 5
slowdown numbers come out of honest execution, not a cost model.

* ``rt_xor_decrypt``  — xorshift32 word-stream decryption;
* ``rt_rc4_decrypt``  — RC4 (KSA + PRGA) with byte operations;
* ``rt_lincomb``      — probabilistic chain generation by linear
  combination over GF(2): per chain word, pick an index array with an
  LCG and xor together the basis vectors it selects (§V-B's
  :math:`A_1..A_N` construction with the canonical basis).
"""

from __future__ import annotations

from ..ropc import ir
from ..x86.registers import EAX, EBX, ECX, EDX, EDI, ESI

#: rt_rc4_decrypt workspace layout (offsets into the workspace blob).
RC4_KEY_OFFSET = 0          # 16-byte key
RC4_SBOX_OFFSET = 16        # 256-byte S-box scratch
RC4_K_SLOT = 272            # output-cursor spill slot (word)
RC4_WORKSPACE_SIZE = 288

#: rt_lincomb control-block layout.
LC_STATE_OFFSET = 0         # LCG state (word, updated in place)
LC_MASK_OFFSET = 4          # nvariants - 1 (power of two minus one)
LC_BASIS_OFFSET = 8         # 32 basis words
LC_CTRL_SIZE = 8 + 32 * 4

LCG_MUL = 1103515245
LCG_ADD = 12345


def rt_xor_decrypt() -> ir.IRFunction:
    """rt_xor_decrypt(dst, src, nwords, seed).

    Word-wise xor with the xorshift32 keystream (matches
    :mod:`repro.crypto.xorstream`).
    """
    f = ir.IRFunction("rt_xor_decrypt", params=4)
    f.emit(ir.Param(EDI, 0))            # dst
    f.emit(ir.Param(ESI, 1))            # src
    f.emit(ir.Param(ECX, 2))            # nwords
    f.emit(ir.Param(EBX, 3))            # state
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    # state = xorshift32(state)
    f.emit(ir.Mov(EDX, EBX))
    f.emit(ir.Shift("shl", EDX, 13))
    f.emit(ir.BinOp("xor", EBX, EDX))
    f.emit(ir.Mov(EDX, EBX))
    f.emit(ir.Shift("shr", EDX, 17))
    f.emit(ir.BinOp("xor", EBX, EDX))
    f.emit(ir.Mov(EDX, EBX))
    f.emit(ir.Shift("shl", EDX, 5))
    f.emit(ir.BinOp("xor", EBX, EDX))
    # *dst++ = *src++ ^ state
    f.emit(ir.Load(EAX, ESI, 0))
    f.emit(ir.BinOp("xor", EAX, EBX))
    f.emit(ir.Store(EDI, EAX, 0))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def rt_rc4_decrypt() -> ir.IRFunction:
    """rt_rc4_decrypt(dst, src, nbytes, workspace).

    ``workspace``: 16-byte key at offset 0, 256-byte S-box scratch at
    offset 16, cursor spill slot at offset 272.  Matches
    :mod:`repro.crypto.rc4` with a 16-byte key.

    This routine is why RC4-protected chains are the slowest strategy
    in Fig. 5a: the 256-iteration KSA runs on *every* chain call, which
    dwarfs short chains (the paper calls this out for lame).
    """
    f = ir.IRFunction("rt_rc4_decrypt", params=4)
    f.emit(ir.Param(ESI, 3))            # workspace base (persistent)

    # --- KSA part 1: S[i] = i ---------------------------------------------
    f.emit(ir.Const(ECX, 0))
    f.emit(ir.Label("init"))
    f.emit(ir.Mov(EDX, ESI))
    f.emit(ir.BinOp("add", EDX, ECX))
    f.emit(ir.Store8(EDX, ECX, RC4_SBOX_OFFSET))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.BinOp("add", ECX, EAX))
    f.emit(ir.Branch("ult", ECX, 256, "init"))

    # --- KSA part 2: scramble ------------------------------------------------
    f.emit(ir.Const(ECX, 0))            # i
    f.emit(ir.Const(EBX, 0))            # j
    f.emit(ir.Label("ksa"))
    f.emit(ir.Mov(EDX, ESI))
    f.emit(ir.BinOp("add", EDX, ECX))
    f.emit(ir.Load8(EAX, EDX, RC4_SBOX_OFFSET))   # S[i]
    f.emit(ir.BinOp("add", EBX, EAX))
    f.emit(ir.Mov(EDI, ECX))
    f.emit(ir.Const(EDX, 15))
    f.emit(ir.BinOp("and", EDI, EDX))
    f.emit(ir.BinOp("add", EDI, ESI))
    f.emit(ir.Load8(EDX, EDI, RC4_KEY_OFFSET))    # key[i & 15]
    f.emit(ir.BinOp("add", EBX, EDX))
    f.emit(ir.Const(EDX, 255))
    f.emit(ir.BinOp("and", EBX, EDX))
    # swap S[i] (in eax), S[j]
    f.emit(ir.Mov(EDI, ESI))
    f.emit(ir.BinOp("add", EDI, EBX))
    f.emit(ir.Load8(EDX, EDI, RC4_SBOX_OFFSET))   # old S[j]
    f.emit(ir.Store8(EDI, EAX, RC4_SBOX_OFFSET))  # S[j] = old S[i]
    f.emit(ir.Mov(EDI, ESI))
    f.emit(ir.BinOp("add", EDI, ECX))
    f.emit(ir.Store8(EDI, EDX, RC4_SBOX_OFFSET))  # S[i] = old S[j]
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.BinOp("add", ECX, EAX))
    f.emit(ir.Branch("ult", ECX, 256, "ksa"))

    # --- PRGA ----------------------------------------------------------------
    f.emit(ir.Const(ECX, 0))            # i
    f.emit(ir.Const(EBX, 0))            # j
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Store(ESI, EAX, RC4_K_SLOT))        # k = 0
    f.emit(ir.Label("prga"))
    f.emit(ir.Load(EDI, ESI, RC4_K_SLOT))         # k
    f.emit(ir.Param(EDX, 2))                      # nbytes
    f.emit(ir.Branch("uge", EDI, EDX, "done"))
    # i = (i + 1) & 0xff
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.BinOp("add", ECX, EAX))
    f.emit(ir.Const(EAX, 255))
    f.emit(ir.BinOp("and", ECX, EAX))
    # j = (j + S[i]) & 0xff
    f.emit(ir.Mov(EDX, ESI))
    f.emit(ir.BinOp("add", EDX, ECX))
    f.emit(ir.Load8(EAX, EDX, RC4_SBOX_OFFSET))   # S[i]
    f.emit(ir.BinOp("add", EBX, EAX))
    f.emit(ir.Const(EDX, 255))
    f.emit(ir.BinOp("and", EBX, EDX))
    # swap S[i] (eax), S[j]
    f.emit(ir.Mov(EDI, ESI))
    f.emit(ir.BinOp("add", EDI, EBX))
    f.emit(ir.Load8(EDX, EDI, RC4_SBOX_OFFSET))   # old S[j]
    f.emit(ir.Store8(EDI, EAX, RC4_SBOX_OFFSET))  # S[j] = old S[i]
    f.emit(ir.Mov(EDI, ESI))
    f.emit(ir.BinOp("add", EDI, ECX))
    f.emit(ir.Store8(EDI, EDX, RC4_SBOX_OFFSET))  # S[i] = old S[j]
    # keystream byte: S[(S[i]+S[j]) & 0xff]  (eax = old S[i], edx = old S[j])
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(EDI, 255))
    f.emit(ir.BinOp("and", EAX, EDI))
    f.emit(ir.BinOp("add", EAX, ESI))
    f.emit(ir.Load8(EDX, EAX, RC4_SBOX_OFFSET))   # ks byte
    # dst[k] = src[k] ^ ks
    f.emit(ir.Load(EDI, ESI, RC4_K_SLOT))         # k
    f.emit(ir.Param(EAX, 1))                      # src
    f.emit(ir.BinOp("add", EAX, EDI))
    f.emit(ir.Load8(EAX, EAX, 0))
    f.emit(ir.BinOp("xor", EAX, EDX))
    f.emit(ir.Param(EDX, 0))                      # dst
    f.emit(ir.BinOp("add", EDX, EDI))
    f.emit(ir.Store8(EDX, EAX, 0))
    # k += 1
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.BinOp("add", EDI, EAX))
    f.emit(ir.Store(ESI, EDI, RC4_K_SLOT))
    f.emit(ir.Jump("prga"))
    f.emit(ir.Label("done"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def rt_lincomb() -> ir.IRFunction:
    """rt_lincomb(dst, table, nwords, ctrl).

    Regenerates a chain variant: for each of the ``nwords`` positions,
    draw a variant index from the LCG in ``ctrl``, fetch that variant's
    index-array entry (a 32-bit mask of basis indices), and xor
    together the selected basis vectors from the ctrl block's basis
    table.  The LCG state persists across calls, so every chain call
    may check a different gadget subset — the probabilistic protection
    of §V-B.
    """
    f = ir.IRFunction("rt_lincomb", params=4)
    f.emit(ir.Const(ECX, 0))            # word index
    f.emit(ir.Label("outer"))
    f.emit(ir.Param(EDX, 2))            # nwords
    f.emit(ir.Branch("uge", ECX, EDX, "done"))
    # state = state * LCG_MUL + LCG_ADD
    f.emit(ir.Param(EDX, 3))            # ctrl
    f.emit(ir.Load(EBX, EDX, LC_STATE_OFFSET))
    f.emit(ir.Const(EAX, LCG_MUL))
    f.emit(ir.BinOp("mul", EBX, EAX))
    f.emit(ir.Const(EAX, LCG_ADD))
    f.emit(ir.BinOp("add", EBX, EAX))
    f.emit(ir.Store(EDX, EBX, LC_STATE_OFFSET))
    # variant = (state >> 16) & mask
    f.emit(ir.Shift("shr", EBX, 16))
    f.emit(ir.Load(EAX, EDX, LC_MASK_OFFSET))
    f.emit(ir.BinOp("and", EBX, EAX))
    # entry = table[variant * nwords + word]
    f.emit(ir.Param(EAX, 2))
    f.emit(ir.BinOp("mul", EBX, EAX))
    f.emit(ir.BinOp("add", EBX, ECX))
    f.emit(ir.Shift("shl", EBX, 2))
    f.emit(ir.Param(EAX, 1))            # table
    f.emit(ir.BinOp("add", EBX, EAX))
    f.emit(ir.Load(EBX, EBX, 0))        # entry mask
    # acc = xor of selected basis vectors
    f.emit(ir.Const(EAX, 0))            # acc
    f.emit(ir.Param(EDX, 3))
    f.emit(ir.Const(EDI, LC_BASIS_OFFSET))
    f.emit(ir.BinOp("add", EDX, EDI))   # basis cursor
    f.emit(ir.Label("bits"))
    f.emit(ir.Branch("eq", EBX, 0, "emit"))
    f.emit(ir.Mov(EDI, EBX))
    f.emit(ir.Const(ESI, 1))
    f.emit(ir.BinOp("and", EDI, ESI))
    f.emit(ir.Branch("eq", EDI, 0, "skip"))
    f.emit(ir.Load(EDI, EDX, 0))
    f.emit(ir.BinOp("xor", EAX, EDI))
    f.emit(ir.Label("skip"))
    f.emit(ir.Shift("shr", EBX, 1))
    f.emit(ir.Const(EDI, 4))
    f.emit(ir.BinOp("add", EDX, EDI))
    f.emit(ir.Jump("bits"))
    f.emit(ir.Label("emit"))
    # dst[word] = acc
    f.emit(ir.Mov(EDX, ECX))
    f.emit(ir.Shift("shl", EDX, 2))
    f.emit(ir.Param(EDI, 0))            # dst
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Store(EDI, EAX, 0))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.BinOp("add", ECX, EAX))
    f.emit(ir.Jump("outer"))
    f.emit(ir.Label("done"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def lincomb_reference(dst_words, table, nwords, state, mask, basis):
    """Pure-Python reference of rt_lincomb (for tests).

    Returns (words, new_state).
    """
    out = []
    for word in range(nwords):
        state = (state * LCG_MUL + LCG_ADD) & 0xFFFFFFFF
        variant = (state >> 16) & mask
        entry = table[variant * nwords + word]
        acc = 0
        bit = 0
        while entry:
            if entry & 1:
                acc ^= basis[bit]
            entry >>= 1
            bit += 1
        out.append(acc)
    return out, state


def rt_guard() -> ir.IRFunction:
    """rt_guard(start, nwords, expected): §VI-C chain checksumming.

    The chains (and their encrypted blobs, tables, and decryptors) live
    in *data* memory, so — unlike code checksumming — guarding them is
    immune to the Wurster instruction-view attack.  On mismatch the
    process exits with status 66 (the tamper response).
    """
    f = ir.IRFunction("rt_guard", params=3)
    f.emit(ir.Param(ESI, 0))            # region start
    f.emit(ir.Param(ECX, 1))            # nwords
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("sum"))
    f.emit(ir.Branch("eq", ECX, 0, "check"))
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("sum"))
    f.emit(ir.Label("check"))
    f.emit(ir.Param(EBX, 2))            # expected
    f.emit(ir.Branch("eq", EAX, EBX, "ok"))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.Const(EBX, 66))
    f.emit(ir.Syscall())
    f.emit(ir.Label("ok"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def checksum_words_reference(data: bytes) -> int:
    """Word-sum matching rt_guard (for computing expected values)."""
    total = 0
    for offset in range(0, len(data) - len(data) % 4, 4):
        total = (total + int.from_bytes(data[offset : offset + 4], "little")) & 0xFFFFFFFF
    return total
