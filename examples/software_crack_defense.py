"""Attack matrix: Parallax vs checksumming vs the Wurster attack.

The scenario: the adversary patches a byte in *cold* code (a function
the workload never executes — e.g. parking a payload, or disabling a
rarely-taken path).  The same (function, offset) byte is patched in
three builds of the program:

* unprotected — nothing notices, statically or via the I-cache;
* self-checksumming — the static patch trips a guard, but the Wurster
  instruction-cache attack sails through (guards read the data view);
* Parallax — a verification chain uses a gadget overlapping that byte,
  so BOTH the static patch and the Wurster patch derail the chain:
  execution is the one view the attacker cannot split.

Also shows oblivious hashing's blind spot: it survives Wurster, but it
cannot protect the non-deterministic ptrace check at all.

Run:  python examples/software_crack_defense.py
"""

from repro.attacks import evaluate_patch_attack, evaluate_wurster_attack
from repro.baselines import ChecksummedProgram, OHProgram
from repro.binary import Patch
from repro.core import Parallax, ProtectConfig
from repro.corpus import build_gzip, build_wget


#: A cold function the defender explicitly asks Parallax to protect
#: (think: a dormant licensing path an attacker may patch at leisure).
COLD_FUNCTION = "gz_fill_005"


def find_cold_gadget_site(protected):
    """(symbol name, offset) of a used chain gadget inside the cold fn."""
    image = protected.image
    symbol = image.symbols[COLD_FUNCTION]
    for addr in protected.report.chains[0].gadget_addresses:
        if symbol.vaddr <= addr < symbol.end:
            return symbol.name, addr - symbol.vaddr
    raise SystemExit("no cold overlapping gadget found (unexpected)")


def patch_at(image, name, offset):
    symbol = image.symbols[name]
    addr = symbol.vaddr + offset
    old = image.read(addr, 1)
    return Patch(addr, old, bytes([old[0] ^ 0xFF]), reason="cold-byte flip")


def verdict(outcome):
    return "DETECTED" if outcome.detected else "undetected"


def main():
    program = build_gzip(blocks=2, positions=6)
    goal = program.run()

    cold = program.image.symbols[COLD_FUNCTION]
    parallax = Parallax(
        ProtectConfig(
            strategy="cleartext",
            verification_functions=["digest_gzip"],
            protect_addresses=list(range(cold.vaddr, cold.end)),
        )
    ).protect(program)
    checksummed = ChecksummedProgram(build_gzip(blocks=2, positions=6), guards=3)

    name, offset = find_cold_gadget_site(parallax)
    print(f"tampering one byte of cold code: {name}+{offset:#x}\n")

    rows = [
        ("unprotected", program.image),
        ("checksumming", checksummed.image),
        ("parallax", parallax.image),
    ]
    print(f"{'scheme':<14} {'static patch':<16} {'wurster i-cache patch'}")
    for label, image in rows:
        patch = patch_at(image, name, offset)
        static = evaluate_patch_attack(image, [patch], goal, label)
        wurster = evaluate_wurster_attack(image, [patch], goal, label)
        print(f"{label:<14} {verdict(static):<16} {verdict(wurster)}")

    print()
    print("oblivious hashing vs non-determinism:")
    oh = OHProgram(build_gzip(blocks=2, positions=6), instrument=["checksum_words"])
    print(f"  OH over deterministic code: pristine exit {oh.run().exit_status} (works)")
    wget = build_wget(blocks=1, chunks=2)
    oh_bad = OHProgram(wget, instrument=["ptrace_detect"])
    traced = oh_bad.run(debugger_attached=True)
    print(f"  OH over ptrace_detect, honest traced run: exit {traced.exit_status}"
          " (false positive - OH cannot protect non-deterministic code;"
          " Parallax translates it to a chain just fine)")


if __name__ == "__main__":
    main()
