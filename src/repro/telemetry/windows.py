"""Rolling-window aggregation over the flight-recorder event stream.

The flight recorder answers *what happened*; this module answers *what
is happening right now*.  A :class:`RollingWindow` keeps a ring of
one-second buckets (count, sum, and a capped sample list per bucket)
and derives per-window rates, an exponentially weighted moving average
of the per-bucket rate, and sliding quantiles (p50/p95/p99) from the
retained samples — all O(buckets) to read and O(1) to feed.

A :class:`WindowSet` owns one rate window per event kind plus one value
window per ``(kind, numeric field)`` pair it is told to watch, and
plugs directly into :meth:`FlightRecorder.subscribe
<repro.telemetry.recorder.FlightRecorder.subscribe>` — every recorded
event advances the windows immediately, which is what makes the
``repro top`` dashboard and ``--journal-follow`` live rather than
post-hoc.

Time handling: windows never call ``time`` themselves on the feed
path.  Events carry their own ``ts`` (the recorder's perf-counter
offset) and that is the time base, so replaying a journal file through
a :class:`WindowSet` reconstructs exactly the rates a live run saw.
Reads take an explicit ``now`` (defaulting to the injectable ``clock``,
then to the newest fed timestamp), which keeps every derived number
deterministic under test.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["RollingWindow", "WindowSet"]

#: Per-bucket cap on retained samples for quantile estimation.  Buckets
#: past the cap keep counting/summing but stop retaining values; the
#: snapshot reports how many were capped so readers can tell estimated
#: quantiles from exact ones.
DEFAULT_BUCKET_SAMPLES = 512

#: Default EWMA smoothing factor (weight of the newest bucket).
DEFAULT_ALPHA = 0.3


class RollingWindow:
    """Ring of 1-second buckets with rate / EWMA / quantile reads.

    ``observe(value, now)`` lands ``value`` in the bucket covering
    ``now``; buckets older than ``window_seconds`` are recycled in
    place, so memory is fixed at ``window_seconds / bucket_seconds``
    slots regardless of event volume.
    """

    __slots__ = (
        "window_seconds",
        "bucket_seconds",
        "max_bucket_samples",
        "alpha",
        "_clock",
        "_n",
        "_epochs",
        "_counts",
        "_sums",
        "_samples",
        "_capped",
        "_latest",
    )

    def __init__(
        self,
        window_seconds: float = 60.0,
        bucket_seconds: float = 1.0,
        max_bucket_samples: int = DEFAULT_BUCKET_SAMPLES,
        alpha: float = DEFAULT_ALPHA,
        clock: Optional[Callable[[], float]] = None,
    ):
        if window_seconds <= 0 or bucket_seconds <= 0:
            raise ValueError("window and bucket sizes must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.window_seconds = float(window_seconds)
        self.bucket_seconds = float(bucket_seconds)
        self.max_bucket_samples = max_bucket_samples
        self.alpha = alpha
        self._clock = clock
        self._n = max(1, int(math.ceil(window_seconds / bucket_seconds)))
        # Parallel arrays, indexed by bucket-epoch modulo ring size.  An
        # epoch of -1 marks a never-used slot.
        self._epochs = [-1] * self._n
        self._counts = [0] * self._n
        self._sums = [0.0] * self._n
        self._samples: List[List[float]] = [[] for _ in range(self._n)]
        self._capped = [0] * self._n
        self._latest: Optional[float] = None

    # -- feeding --------------------------------------------------------

    def observe(self, value: float = 1.0, now: Optional[float] = None) -> None:
        now = self._resolve_now(now)
        epoch = int(now // self.bucket_seconds)
        slot = epoch % self._n
        if self._epochs[slot] != epoch:
            self._epochs[slot] = epoch
            self._counts[slot] = 0
            self._sums[slot] = 0.0
            self._samples[slot] = []
            self._capped[slot] = 0
        self._counts[slot] += 1
        self._sums[slot] += value
        bucket = self._samples[slot]
        if len(bucket) < self.max_bucket_samples:
            bucket.append(value)
        else:
            self._capped[slot] += 1
        if self._latest is None or now > self._latest:
            self._latest = now

    # -- reading --------------------------------------------------------

    def _resolve_now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self._clock is not None:
            return self._clock()
        if self._latest is not None:
            return self._latest
        return 0.0

    def _live_slots(self, now: float) -> Iterable[int]:
        """Slot indices within the window, oldest bucket first."""
        newest = int(now // self.bucket_seconds)
        for epoch in range(newest - self._n + 1, newest + 1):
            if epoch < 0:
                continue
            slot = epoch % self._n
            if self._epochs[slot] == epoch:
                yield slot

    def count(self, now: Optional[float] = None) -> int:
        now = self._resolve_now(now)
        return sum(self._counts[s] for s in self._live_slots(now))

    def total(self, now: Optional[float] = None) -> float:
        now = self._resolve_now(now)
        return sum(self._sums[s] for s in self._live_slots(now))

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the (elapsed part of the) window."""
        now = self._resolve_now(now)
        count = self.count(now)
        # Early in a run less than a full window has elapsed; dividing
        # by the full span would understate the rate of a fresh stream.
        span = min(self.window_seconds, max(now, self.bucket_seconds))
        return count / span if span > 0 else 0.0

    def mean(self, now: Optional[float] = None) -> float:
        now = self._resolve_now(now)
        count = self.count(now)
        return self.total(now) / count if count else 0.0

    def ewma_rate(self, now: Optional[float] = None) -> float:
        """EWMA of per-bucket rates, oldest bucket folded in first."""
        now = self._resolve_now(now)
        newest = int(now // self.bucket_seconds)
        value: Optional[float] = None
        for epoch in range(newest - self._n + 1, newest + 1):
            if epoch < 0:
                continue
            slot = epoch % self._n
            bucket_count = (
                self._counts[slot] if self._epochs[slot] == epoch else 0
            )
            bucket_rate = bucket_count / self.bucket_seconds
            value = (
                bucket_rate
                if value is None
                else self.alpha * bucket_rate + (1.0 - self.alpha) * value
            )
        return value or 0.0

    def quantile(self, q: float, now: Optional[float] = None) -> float:
        """Sliding quantile over retained samples (nearest-rank)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        now = self._resolve_now(now)
        values: List[float] = []
        for slot in self._live_slots(now):
            values.extend(self._samples[slot])
        if not values:
            return 0.0
        values.sort()
        rank = min(len(values) - 1, max(0, int(math.ceil(q * len(values))) - 1))
        return values[rank]

    def snapshot(self, now: Optional[float] = None) -> dict:
        now = self._resolve_now(now)
        capped = sum(self._capped[s] for s in self._live_slots(now))
        return {
            "count": self.count(now),
            "sum": self.total(now),
            "mean": self.mean(now),
            "rate": self.rate(now),
            "ewma_rate": self.ewma_rate(now),
            "p50": self.quantile(0.50, now),
            "p95": self.quantile(0.95, now),
            "p99": self.quantile(0.99, now),
            "capped_samples": capped,
            "window_seconds": self.window_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"<RollingWindow {self.window_seconds:g}s/"
            f"{self.bucket_seconds:g}s, count={self.count()}>"
        )


class WindowSet:
    """Per-event-kind rolling windows fed by a recorder subscription.

    One rate window per event kind, plus one value window per
    ``(kind, field)`` for the numeric fields named in ``value_fields``
    — by default ``seconds`` (stage durations), ``cycles`` and
    ``detected_at`` (attack latencies).  Optionally keys windows by a
    context label too (``group_by="request"`` splits each kind per
    request id), which is how ``repro top`` shows per-request lanes.
    """

    __slots__ = (
        "window_seconds",
        "value_fields",
        "group_by",
        "_clock",
        "_rates",
        "_values",
        "_recorder",
        "_events_fed",
    )

    DEFAULT_VALUE_FIELDS: Tuple[str, ...] = ("seconds", "cycles", "detected_at")

    def __init__(
        self,
        window_seconds: float = 60.0,
        value_fields: Optional[Iterable[str]] = None,
        group_by: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.window_seconds = float(window_seconds)
        self.value_fields = tuple(
            self.DEFAULT_VALUE_FIELDS if value_fields is None else value_fields
        )
        self.group_by = group_by
        self._clock = clock
        self._rates: Dict[str, RollingWindow] = {}
        self._values: Dict[str, RollingWindow] = {}
        self._recorder = None
        self._events_fed = 0

    # -- wiring ---------------------------------------------------------

    def subscribe_to(self, recorder) -> "WindowSet":
        """Attach to a :class:`FlightRecorder`; every event feeds us."""
        recorder.subscribe(self.feed_event)
        self._recorder = recorder
        return self

    def close(self) -> None:
        if self._recorder is not None:
            self._recorder.unsubscribe(self.feed_event)
            self._recorder = None

    # -- feeding --------------------------------------------------------

    def _key(self, kind: str, event: dict) -> str:
        if self.group_by:
            ctx = event.get("ctx") or {}
            value = ctx.get(self.group_by)
            if value is not None:
                return f"{kind}[{self.group_by}={value}]"
        return kind

    def _window(self, table: Dict[str, RollingWindow], key: str) -> RollingWindow:
        window = table.get(key)
        if window is None:
            window = table[key] = RollingWindow(
                window_seconds=self.window_seconds, clock=self._clock
            )
        return window

    def feed_event(self, event: dict) -> None:
        """Recorder-subscription callback; also usable for replay."""
        if event.get("type") != "event":
            return
        kind = event.get("kind", "?")
        ts = event.get("ts")
        key = self._key(kind, event)
        self._window(self._rates, key).observe(1.0, now=ts)
        for field in self.value_fields:
            value = event.get(field)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._window(self._values, f"{key}.{field}").observe(
                    float(value), now=ts
                )
        self._events_fed += 1

    def replay(self, events: Iterable[dict]) -> int:
        """Feed a journal (e.g. loaded from JSONL) through the windows."""
        fed = self._events_fed
        for event in events:
            self.feed_event(event)
        return self._events_fed - fed

    # -- reading --------------------------------------------------------

    @property
    def events_fed(self) -> int:
        return self._events_fed

    def kinds(self) -> List[str]:
        return sorted(self._rates)

    def rate_window(self, key: str) -> Optional[RollingWindow]:
        return self._rates.get(key)

    def value_window(self, key: str, field: str) -> Optional[RollingWindow]:
        return self._values.get(f"{key}.{field}")

    def snapshot(self, now: Optional[float] = None) -> Dict[str, dict]:
        """Every window's snapshot, keyed ``kind`` / ``kind.field``."""
        out: Dict[str, dict] = {}
        for key in sorted(self._rates):
            out[key] = self._rates[key].snapshot(now)
        for key in sorted(self._values):
            out[key] = self._values[key].snapshot(now)
        return out

    def __repr__(self) -> str:
        return (
            f"<WindowSet {len(self._rates)} kinds, "
            f"{self._events_fed} events fed>"
        )
