"""Quickstart: protect a corpus program and watch it still work.

Run:  python examples/quickstart.py
"""

from repro import Parallax, ProtectConfig, build_program
from repro.corpus import build_wget


def main():
    # Small workload so the demo runs in seconds; drop the arguments for
    # the full benchmark-sized binary.
    program = build_wget(blocks=2, chunks=10)
    print(f"built {program}")

    baseline = program.run()
    print(f"baseline run : {baseline}  stdout={baseline.stdout!r}")

    protector = Parallax(ProtectConfig(strategy="xor"))
    protected = protector.protect(program)
    print()
    print(protected.report.summary())

    result = protected.run()
    print()
    print(f"protected run: {result}  stdout={result.stdout!r}")
    assert result.stdout == baseline.stdout
    assert result.exit_status == baseline.exit_status
    overhead = 100 * (result.cycles / baseline.cycles - 1)
    print(f"behaviour identical; whole-program overhead {overhead:.2f}%")


if __name__ == "__main__":
    main()
