"""Ablation — overlapping-gadget preference (§III).

"During compilation of the verification code, overlapping gadgets are
always preferred over non-overlapping gadgets."  Disabling the
preference leaves the chain running almost entirely on inserted
standard gadgets; the preference pulls gadgets from the protected code
into the chain, which is what makes tampering observable.
"""

import pytest

import _shared
from repro.corpus import build_wget
from repro.core import Parallax, ProtectConfig


def test_overlap_preference_ablation(benchmark):
    def measure():
        program = build_wget(blocks=2, chunks=10)
        with_pref = Parallax(
            ProtectConfig(strategy="cleartext", verification_functions=["digest_wget"])
        ).protect(program)
        without = Parallax(
            ProtectConfig(
                strategy="cleartext",
                verification_functions=["digest_wget"],
                protect_addresses=[],     # nothing marked: no preference
            )
        ).protect(program)
        return (
            with_pref.report.chains[0].overlapping_used,
            without.report.chains[0].overlapping_used,
        )

    with_pref, without = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("=== Ablation: overlapping-gadget preference ===")
    print(f"overlapping gadget uses with preference   : {with_pref}")
    print(f"overlapping gadget uses without preference: {without}")
    assert with_pref > without
