"""Builder-style assembler with label support.

Example::

    from repro.x86 import Assembler, EAX, EBX

    a = Assembler(base=0x1000)
    a.mov(EAX, 0)
    a.label("loop")
    a.add(EAX, 1)
    a.cmp(EAX, 10)
    a.jne("loop")
    a.ret()
    code = a.assemble()

Integers passed as operands are wrapped into :class:`Imm` automatically
(8-bit wide when they fit in a signed byte, matching gcc's preference for
the sign-extended imm8 forms).  Pass an explicit ``Imm(value, 32)`` to
force a 4-byte immediate — the immediate-rewriting rules rely on those.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .decoder import decode_all
from .encoder import assemble as encode_insn
from .errors import AssemblerError
from .instruction import Instruction
from .operands import Imm, Mem, Rel, fits_signed
from .registers import Register

#: Mnemonics the builder accepts as attribute calls.
_MNEMONICS = frozenset(
    {
        "add", "or", "adc", "sbb", "and", "sub", "xor", "cmp", "mov", "lea",
        "test", "xchg", "shl", "shr", "sar", "push", "pop", "inc", "dec",
        "not", "neg", "mul", "imul", "div", "idiv", "ret", "retf", "int",
        "call", "jmp", "nop", "leave", "cdq", "pushad", "popad", "int3",
        "hlt", "movzx", "movsx",
        "jo", "jno", "jb", "jae", "je", "jne", "jbe", "ja",
        "js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg",
        "seto", "setno", "setb", "setae", "sete", "setne", "setbe", "seta",
        "sets", "setns", "setp", "setnp", "setl", "setge", "setle", "setg",
    }
)

_BRANCHES = frozenset(
    {
        "call", "jmp",
        "jo", "jno", "jb", "jae", "je", "jne", "jbe", "ja",
        "js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg",
    }
)


class _Fixup:
    __slots__ = ("offset", "length", "imm_offset", "label", "width")

    def __init__(self, offset, length, imm_offset, label, width):
        self.offset = offset
        self.length = length
        self.imm_offset = imm_offset
        self.label = label
        self.width = width


class Assembler:
    """Two-pass assembler producing flat code bytes.

    Args:
        base: virtual address of the first emitted byte; label targets and
            decoded listings are relative to it.
    """

    def __init__(self, base: int = 0):
        self.base = base
        self._buf = bytearray()
        self._labels: Dict[str, int] = {}
        self._fixups: List[_Fixup] = []

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------

    @property
    def offset(self) -> int:
        """Current emission offset from ``base``."""
        return len(self._buf)

    @property
    def here(self) -> int:
        """Current virtual address."""
        return self.base + len(self._buf)

    def label(self, name: str) -> int:
        """Define ``name`` at the current offset; returns its address."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = self.offset
        return self.here

    def raw(self, data: bytes) -> "Assembler":
        """Emit raw bytes verbatim."""
        self._buf += data
        return self

    def align(self, boundary: int, fill: int = 0x90) -> "Assembler":
        """Pad with ``fill`` bytes (nop by default) to ``boundary``."""
        while (self.base + len(self._buf)) % boundary:
            self._buf.append(fill)
        return self

    def pad_to(self, offset: int, fill: int = 0x90) -> "Assembler":
        """Pad with ``fill`` until the buffer is ``offset`` bytes long."""
        if offset < len(self._buf):
            raise AssemblerError("cannot pad backwards")
        self._buf += bytes([fill]) * (offset - len(self._buf))
        return self

    # ------------------------------------------------------------------
    # Operand coercion
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(mnemonic: str, index: int, ops: tuple) -> tuple:
        out = []
        for i, op in enumerate(ops):
            if isinstance(op, int):
                width = 32
                if i > 0 and isinstance(ops[0], (Register, Mem)) and ops[0].width == 8:
                    width = 8
                elif mnemonic in ("shl", "shr", "sar", "int") and i == 1:
                    width = 8
                elif fits_signed(op, 8) and mnemonic not in ("mov",):
                    width = 8
                out.append(Imm(op, width))
            else:
                out.append(op)
        return tuple(out)

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------

    def emit(self, mnemonic: str, *ops, **options) -> "Assembler":
        """Assemble and append one instruction."""
        if mnemonic in _BRANCHES and ops and isinstance(ops[0], str):
            return self._emit_branch(mnemonic, ops[0])
        ops = self._coerce(mnemonic, 0, ops)
        self._buf += encode_insn(mnemonic, *ops, **options)
        return self

    def _emit_branch(self, mnemonic: str, label: str) -> "Assembler":
        # Always the rel32 form so the fixup size is known up front.
        placeholder = Rel(0, 32)
        encoded = encode_insn(mnemonic, placeholder)
        imm_offset = len(encoded) - 4
        self._fixups.append(
            _Fixup(self.offset, len(encoded), imm_offset, label, 32)
        )
        self._buf += encoded
        return self

    def __getattr__(self, name: str):
        if name.startswith("_") or name not in _MNEMONICS:
            raise AttributeError(name)

        def emitter(*ops, **options):
            return self.emit(name, *ops, **options)

        return emitter

    # Reserved-word mnemonics can't be attributes.
    def and_(self, *ops, **options) -> "Assembler":
        return self.emit("and", *ops, **options)

    def or_(self, *ops, **options) -> "Assembler":
        return self.emit("or", *ops, **options)

    def not_(self, *ops, **options) -> "Assembler":
        return self.emit("not", *ops, **options)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def address_of(self, label: str) -> int:
        """Virtual address of a defined label."""
        if label not in self._labels:
            raise AssemblerError(f"undefined label {label!r}")
        return self.base + self._labels[label]

    def assemble(self) -> bytes:
        """Resolve fixups and return the final code bytes."""
        for fix in self._fixups:
            if fix.label not in self._labels:
                raise AssemblerError(f"undefined label {fix.label!r}")
            target = self._labels[fix.label]
            rel = target - (fix.offset + fix.length)
            pos = fix.offset + fix.imm_offset
            self._buf[pos : pos + 4] = (rel & 0xFFFFFFFF).to_bytes(4, "little")
        self._fixups = []
        return bytes(self._buf)

    def disassemble(self) -> List[Instruction]:
        """Round-trip the assembled bytes through the decoder."""
        return decode_all(self.assemble(), address=self.base)


def assemble_snippet(build, base: int = 0) -> bytes:
    """Run ``build(asm)`` against a fresh assembler and return the bytes."""
    asm = Assembler(base=base)
    build(asm)
    return asm.assemble()
