"""Protectability accounting (Fig. 6 bookkeeping).

A *protectable code byte* is "an instruction byte for which we can craft
an overlapping gadget using one of the rewriting rules" (§VII-A).  Each
rule reports the set of byte addresses its candidate gadgets span;
coverage percentages are over all executable-section bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

#: Canonical rule names, in the paper's Fig. 6 legend order.
RULE_NEAR = "existing_near_ret"
RULE_FAR = "far_ret"
RULE_IMM = "immediate_mod"
RULE_JUMP = "jump_mod"
RULE_ANY = "any"

FIG6_RULES = (RULE_NEAR, RULE_FAR, RULE_IMM, RULE_JUMP)


class RuleCoverage:
    """Byte-address set covered by one rule's candidates."""

    def __init__(self, rule: str):
        self.rule = rule
        self.bytes: Set[int] = set()
        self.candidates: List = []

    def add_span(self, span: Iterable[int], candidate=None) -> None:
        self.bytes.update(span)
        if candidate is not None:
            self.candidates.append(candidate)

    def __len__(self) -> int:
        return len(self.bytes)


class ProtectabilityReport:
    """Fig. 6 row for one program."""

    def __init__(self, program: str, total_code_bytes: int):
        self.program = program
        self.total_code_bytes = total_code_bytes
        self.coverage: Dict[str, RuleCoverage] = {}

    def rule(self, name: str) -> RuleCoverage:
        if name not in self.coverage:
            self.coverage[name] = RuleCoverage(name)
        return self.coverage[name]

    def percent(self, rule: str) -> float:
        if self.total_code_bytes == 0:
            return 0.0
        return 100.0 * len(self.rule(rule).bytes) / self.total_code_bytes

    def any_bytes(self) -> Set[int]:
        out: Set[int] = set()
        for name in FIG6_RULES:
            if name in self.coverage:
                out |= self.coverage[name].bytes
        return out

    def percent_any(self) -> float:
        if self.total_code_bytes == 0:
            return 0.0
        return 100.0 * len(self.any_bytes()) / self.total_code_bytes

    def as_row(self) -> Dict[str, float]:
        row = {"program": self.program}
        for name in FIG6_RULES:
            row[name] = round(self.percent(name), 1)
        row[RULE_ANY] = round(self.percent_any(), 1)
        return row

    def __repr__(self) -> str:
        cells = " ".join(
            f"{name}={self.percent(name):.1f}%" for name in FIG6_RULES
        )
        return (
            f"<Protectability {self.program}: {cells} "
            f"any={self.percent_any():.1f}%>"
        )


def format_fig6_table(reports: List[ProtectabilityReport]) -> str:
    """Render reports as the Fig. 6 table."""
    header = (
        f"{'program':<8} {'near-ret%':>10} {'far-ret%':>9} "
        f"{'imm-mod%':>9} {'jump-mod%':>10} {'any%':>6}"
    )
    lines = [header, "-" * len(header)]
    for report in reports:
        lines.append(
            f"{report.program:<8} "
            f"{report.percent(RULE_NEAR):>10.1f} "
            f"{report.percent(RULE_FAR):>9.1f} "
            f"{report.percent(RULE_IMM):>9.1f} "
            f"{report.percent(RULE_JUMP):>10.1f} "
            f"{report.percent_any():>6.1f}"
        )
    if reports:
        avg = sum(r.percent_any() for r in reports) / len(reports)
        lines.append(f"{'average':<8} {'':>10} {'':>9} {'':>9} {'':>10} {avg:>6.1f}")
    return "\n".join(lines)
