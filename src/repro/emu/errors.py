"""Emulation faults.

A fault during execution of a verification ROP chain *is* Parallax's
tamper response: a destroyed gadget makes the chain jump into garbage and
the emulated program crashes (or produces wrong output).  The attack
harness therefore treats these exceptions as "tampering detected".
"""


class EmulationError(Exception):
    """Base class for all emulator faults."""

    def __init__(self, message, eip=None):
        super().__init__(message)
        self.eip = eip


class BadFetch(EmulationError):
    """Instruction fetch from an unmapped or undecodable location."""


class BadMemoryAccess(EmulationError):
    """Data access to an unmapped address."""


class DivideError(EmulationError):
    """Division by zero or quotient overflow."""


class Halted(EmulationError):
    """The CPU executed ``hlt``."""


class StepLimitExceeded(EmulationError):
    """The configured instruction budget was exhausted (likely a hang)."""


class UnsupportedSyscall(EmulationError):
    """The program invoked a syscall number the toy OS does not provide."""
