"""Structured tracing: hierarchical spans over the protect/run pipeline.

A :class:`Span` is one timed region (``protect``, ``find_gadgets``,
``compile_chain``, ``emulate``...) with attributes and a parent link;
the :class:`Tracer` maintains the active-span stack, so spans opened
while another is active nest under it automatically.  Finished spans
are retained and exportable as JSONL trace events — one JSON object per
line, children referencing parents by ``span_id``.

The disabled tracer returns a shared null span from :meth:`Tracer.span`
so instrumented code needs no ``if`` guards and pays near-zero cost.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from .metrics import _ensure_parent_dir

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed, attributed region of work."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "start_wall",
        "attributes",
        "status",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.start_wall = time.time()
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.status = "ok"

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ts": self.start_wall,
            "duration_s": self.duration,
            "status": self.status,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return f"<Span {self.name} #{self.span_id} parent={self.parent_id}>"


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()
    name = "null"
    span_id = -1
    parent_id = None
    attributes: Dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that closes its span and pops the tracer stack."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def set_attribute(self, key: str, value: Any) -> None:
        self.span.set_attribute(key, value)

    # Mirror the Span read API so callers can treat handles as spans.
    @property
    def name(self) -> str:
        return self.span.name

    @property
    def span_id(self) -> int:
        return self.span.span_id

    @property
    def parent_id(self) -> Optional[int]:
        return self.span.parent_id

    @property
    def attributes(self) -> Dict[str, Any]:
        return self.span.attributes

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._finish(self.span, failed=exc_type is not None)
        return False


class Tracer:
    """Span factory + active-span stack + finished-span store."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: List[Span] = []  # finished spans, completion order
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, **attributes):
        """Open a span nested under the currently active one.

        Returns a context manager; use ``with tracer.span("x") as s:``.
        """
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            attributes=attributes,
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanHandle(self, span)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _finish(self, span: Span, failed: bool = False) -> None:
        span.end = time.perf_counter()
        if failed:
            span.status = "error"
        # Pop back to (and including) this span; tolerates callers that
        # leaked inner spans by closing them implicitly.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end = time.perf_counter()
            self.spans.append(top)
        self.spans.append(span)

    # -- queries --------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._next_id = 1

    # -- ingest (spans exported by another tracer) ----------------------

    def ingest(
        self,
        events: List[dict],
        parent_id: Optional[int] = None,
        extra_attributes: Optional[dict] = None,
    ) -> List[Span]:
        """Adopt finished spans exported by another tracer's
        :meth:`to_events`.

        Used by the parallel pipeline to hoist worker spans into the
        parent trace: span ids are remapped into this tracer's id space
        (two passes, because exports arrive in completion order so
        children precede their parents), and spans that were roots in
        the source tracer are re-parented under ``parent_id``.
        Wall-clock ``start_ts`` and durations are preserved; a disabled
        tracer ignores ingests, matching :meth:`span`.

        ``extra_attributes`` are stamped onto every adopted span — the
        pipeline tags worker spans ``worker_pid`` so the Chrome-trace
        exporter can lane them per process, and telemetry contexts tag
        flushed spans ``ctx.*`` with their label set.  The span's own
        attributes win on key collisions.
        """
        if not self.enabled:
            return []
        id_map: Dict[int, int] = {}
        for event in events:
            if event.get("type") != "span":
                continue
            id_map[event["span_id"]] = self._next_id
            self._next_id += 1
        adopted: List[Span] = []
        for event in events:
            if event.get("type") != "span":
                continue
            old_parent = event.get("parent_id")
            attributes = event.get("attributes")
            if extra_attributes:
                merged = dict(extra_attributes)
                merged.update(attributes or {})
                attributes = merged
            span = Span(
                event["name"],
                span_id=id_map[event["span_id"]],
                parent_id=id_map.get(old_parent, parent_id)
                if old_parent is not None
                else parent_id,
                attributes=attributes,
            )
            span.start_wall = event.get("start_ts", span.start_wall)
            span.end = span.start + event.get("duration_s", 0.0)
            span.status = event.get("status", "ok")
            self.spans.append(span)
            adopted.append(span)
        return adopted

    # -- export ---------------------------------------------------------

    def to_events(self) -> List[dict]:
        return [span.to_dict() for span in self.spans]

    def write_jsonl(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            for event in self.to_events():
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state}, {len(self.spans)} finished spans>"
