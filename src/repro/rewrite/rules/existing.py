"""Rules 1 & 5: existing near-return and far-return gadgets (§IV-B1, B5).

These rules require no code modification at all: any gadget already
embedded in the instruction stream protects the bytes it spans.  The
paper finds 3–6% of code bytes protectable by existing near-ret gadgets
and up to 1% by far-ret gadgets.
"""

from __future__ import annotations

from typing import List

from ...binary.image import BinaryImage
from ...gadgets.finder import find_gadgets_in_bytes
from ...gadgets.types import Gadget
from ..report import ProtectabilityReport, RULE_FAR, RULE_NEAR


class ExistingGadgetRule:
    """Near-return existing gadgets."""

    name = RULE_NEAR

    def __init__(self, max_insns: int = 6):
        self.max_insns = max_insns

    def find(self, image: BinaryImage) -> List[Gadget]:
        gadgets: List[Gadget] = []
        for section in image.executable_sections():
            for gadget in find_gadgets_in_bytes(
                bytes(section.data),
                base=section.vaddr,
                max_insns=self.max_insns,
                include_far=True,
            ):
                if not gadget.far:
                    gadgets.append(gadget)
        return gadgets

    def measure(self, image: BinaryImage, report: ProtectabilityReport) -> List[Gadget]:
        gadgets = self.find(image)
        coverage = report.rule(self.name)
        for gadget in gadgets:
            coverage.add_span(gadget.span(), candidate=gadget)
        return gadgets


class FarReturnRule:
    """Far-return (retf) existing gadgets."""

    name = RULE_FAR

    def __init__(self, max_insns: int = 6):
        self.max_insns = max_insns

    def find(self, image: BinaryImage) -> List[Gadget]:
        gadgets: List[Gadget] = []
        for section in image.executable_sections():
            for gadget in find_gadgets_in_bytes(
                bytes(section.data),
                base=section.vaddr,
                max_insns=self.max_insns,
                include_far=True,
            ):
                if gadget.far:
                    gadgets.append(gadget)
        return gadgets

    def measure(self, image: BinaryImage, report: ProtectabilityReport) -> List[Gadget]:
        gadgets = self.find(image)
        coverage = report.rule(self.name)
        for gadget in gadgets:
            coverage.add_span(gadget.span(), candidate=gadget)
        return gadgets
