"""Toy operating-system surface behind ``int 0x80``.

Implements the Linux-ish syscall numbers our corpus programs use.  The
important one for the paper's running example is ``ptrace``: its return
value depends on whether a debugger is attached, i.e. it is
*non-deterministic* from the program's point of view — exactly the class
of code oblivious hashing cannot protect and Parallax can.
"""

from __future__ import annotations

from typing import Optional

from .errors import UnsupportedSyscall

SYS_EXIT = 1
SYS_READ = 3
SYS_WRITE = 4
SYS_GETPID = 20
SYS_PTRACE = 26
SYS_TIME = 13

PTRACE_TRACEME = 0

#: -1 as an unsigned 32-bit value (syscall error return).
NEG1 = 0xFFFFFFFF


class ExitProgram(Exception):
    """Raised by the exit syscall to unwind the emulator cleanly."""

    def __init__(self, status: int):
        super().__init__(f"exit({status})")
        self.status = status


class OperatingSystem:
    """Process-visible OS state.

    Attributes:
        stdout: bytes the program wrote to fd 1/2.
        stdin: remaining input bytes for the read syscall.
        debugger_attached: makes ``ptrace(PTRACE_TRACEME)`` fail, as it
            does on a real system when the process is already traced.
        pid: deterministic process id.
        clock: deterministic time counter, advanced per query.
    """

    def __init__(self, stdin: bytes = b"", debugger_attached: bool = False):
        self.stdout = bytearray()
        self.stdin = bytearray(stdin)
        self.debugger_attached = debugger_attached
        self.pid = 4242
        self.clock = 1_000_000
        self.exit_status: Optional[int] = None
        self.syscall_log = []

    def dispatch(self, emulator) -> int:
        """Handle ``int 0x80``: eax=number, args in ebx/ecx/edx.

        Returns the value to place in eax.
        """
        cpu = emulator.cpu
        number = cpu.regs[0]
        ebx, ecx, edx = cpu.regs[3], cpu.regs[1], cpu.regs[2]
        self.syscall_log.append(number)

        if number == SYS_EXIT:
            self.exit_status = ebx & 0xFF
            raise ExitProgram(self.exit_status)

        if number == SYS_WRITE:
            if ebx not in (1, 2):
                return NEG1
            data = emulator.memory.read(ecx, edx)
            self.stdout += data
            return edx

        if number == SYS_READ:
            if ebx != 0:
                return NEG1
            chunk = bytes(self.stdin[:edx])
            del self.stdin[: len(chunk)]
            if chunk:
                emulator.memory.write(ecx, chunk)
            return len(chunk)

        if number == SYS_GETPID:
            return self.pid

        if number == SYS_PTRACE:
            # PTRACE_TRACEME fails iff a tracer is already attached.
            if ebx == PTRACE_TRACEME:
                return NEG1 if self.debugger_attached else 0
            return NEG1

        if number == SYS_TIME:
            self.clock += 1
            return self.clock

        raise UnsupportedSyscall(f"syscall {number}", eip=cpu.eip)
