"""Shared, lazily-built artifacts for the benchmark suite.

Building the six corpus programs and protecting each with four
strategies is expensive; everything is cached at module scope so the
whole suite builds each artifact exactly once.  Artifacts route
through :mod:`repro.pipeline`, so setting ``REPRO_CACHE_DIR`` makes
repeat benchmark runs skip unchanged protections entirely via the
on-disk content-addressed cache.
"""

import atexit
import json
import os
import platform
import subprocess
import time
from functools import lru_cache

from repro import telemetry
from repro.core import ProtectConfig, STRATEGIES
from repro.corpus import PROGRAM_NAMES, build_program_cached
from repro.emu import Emulator
from repro.pipeline import protect_one

MAX_STEPS = 300_000_000

#: Engine every benchmark emulation routes through.  Defaults to the
#: block engine so published numbers reflect the fast path; set
#: REPRO_EMU_ENGINE=step to benchmark the reference interpreter.
ENGINE = os.environ.get("REPRO_EMU_ENGINE", "block")

# Hot-spot sampling would show up in throughput numbers; benchmarks
# force it off (it otherwise auto-enables with the metrics registry).
os.environ.setdefault("REPRO_HOTSPOTS", "0")

#: Where append-only benchmark history lives (one JSONL file per
#: benchmark), consumed by benchmarks/check_regression.py.  Path
#: overridable via REPRO_BENCH_HISTORY; empty string disables.
HISTORY_DIR = os.environ.get(
    "REPRO_BENCH_HISTORY",
    os.path.join(os.path.dirname(__file__), "history"),
)

#: Every benchmark process leaves a metrics artifact next to its
#: results so pipeline counters (gadget scans, chain words, emulated
#: instructions) can be compared across runs.  Path overridable via
#: REPRO_BENCH_METRICS; set it to the empty string to disable.
METRICS_PATH = os.environ.get(
    "REPRO_BENCH_METRICS",
    os.path.join(os.path.dirname(__file__), "telemetry-metrics.json"),
)


def _enable_benchmark_metrics() -> None:
    if not METRICS_PATH:
        return
    telemetry.configure(metrics=True)
    atexit.register(write_metrics)


def write_metrics(path: str = None) -> str:
    """Dump the process-wide metrics registry as JSON; returns the path."""
    target = path or METRICS_PATH
    telemetry.get_metrics().write_json(target)
    return target


_enable_benchmark_metrics()


def git_sha() -> str:
    """The repo's HEAD commit, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def env_stamp() -> dict:
    """Environment fingerprint stored with every history entry, so a
    'regression' traceable to a machine/interpreter change is visible
    as such."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "engine": ENGINE,
    }


def record_history(benchmark: str, metrics: dict) -> str:
    """Append one run's scalar results to the benchmark's history file.

    ``metrics`` maps metric name -> number; higher must mean better
    (throughputs, speedups — the regression gate assumes this).
    Returns the history path ("" when history is disabled).
    """
    if not HISTORY_DIR:
        return ""
    os.makedirs(HISTORY_DIR, exist_ok=True)
    path = os.path.join(HISTORY_DIR, f"{benchmark}.jsonl")
    entry = {
        "benchmark": benchmark,
        "timestamp": time.time(),
        "git_sha": git_sha(),
        "env": env_stamp(),
        "metrics": {k: float(v) for k, v in metrics.items()},
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True))
        fh.write("\n")
    return path


@lru_cache(maxsize=None)
def program(name):
    return build_program_cached(name)


@lru_cache(maxsize=None)
def baseline_run(name):
    result = program(name).run(max_steps=MAX_STEPS, engine=ENGINE)
    assert not result.crashed, (name, result.fault)
    return result


@lru_cache(maxsize=None)
def protected(name, strategy):
    config = ProtectConfig(
        strategy=strategy, verification_functions=[f"digest_{name}"]
    )
    return protect_one(program(name), config)


@lru_cache(maxsize=None)
def protected_run(name, strategy):
    result = protected(name, strategy).run(max_steps=MAX_STEPS, engine=ENGINE)
    base = baseline_run(name)
    assert not result.crashed, (name, strategy, result.fault)
    assert result.stdout == base.stdout, (name, strategy)
    return result


def digest_call_cycles(name, image, engine=None):
    """Cycles for one verification-function call on ``image``."""
    prog = program(name)
    emulator = Emulator(image, max_steps=20_000_000, engine=engine or ENGINE)
    before = emulator.cycles
    emulator.call_function(
        image.symbols[f"digest_{name}"].vaddr,
        [12345, 7, prog.data.addr("stats")],
    )
    return emulator.cycles - before
