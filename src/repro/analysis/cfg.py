"""Intra-function control-flow graphs over decoded binary code.

Used by the rewriting engine to find instruction boundaries, basic
blocks, and the jump/call instructions the offset-modification rule
targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..x86.decoder import decode_all
from ..x86.instruction import Instruction


class BasicBlock:
    """Maximal straight-line instruction run."""

    __slots__ = ("start", "instructions")

    def __init__(self, start: int, instructions: List[Instruction]):
        self.start = start
        self.instructions = instructions

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.address + last.length

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __repr__(self) -> str:
        return f"<BB {self.start:#x}..{self.end:#x} ({len(self.instructions)} insns)>"


class FunctionCFG:
    """CFG of one function's code bytes."""

    def __init__(self, name: str, instructions: List[Instruction]):
        self.name = name
        self.instructions = instructions
        self.blocks = self._split_blocks(instructions)

    @staticmethod
    def _split_blocks(instructions: List[Instruction]) -> List[BasicBlock]:
        if not instructions:
            return []
        leaders = {instructions[0].address}
        addresses = {insn.address for insn in instructions}
        for insn in instructions:
            if insn.is_control_flow and insn.mnemonic not in ("call",):
                target = insn.branch_target()
                if target is not None and target in addresses:
                    leaders.add(target)
                nxt = insn.address + insn.length
                if nxt in addresses:
                    leaders.add(nxt)
        blocks = []
        current: List[Instruction] = []
        for insn in instructions:
            if insn.address in leaders and current:
                blocks.append(BasicBlock(current[0].address, current))
                current = []
            current.append(insn)
        if current:
            blocks.append(BasicBlock(current[0].address, current))
        return blocks

    def branch_instructions(self) -> List[Instruction]:
        """All direct jmp/jcc/call instructions (jump-rule targets)."""
        return [
            insn
            for insn in self.instructions
            if (insn.is_conditional or insn.mnemonic in ("jmp", "call"))
            and insn.branch_target() is not None
        ]

    def immediate_instructions(self) -> List[Instruction]:
        """Instructions eligible for the immediate-modification rule
        (§VII-A limits it to add/adc/sub/sbb/mov with an immediate)."""
        from ..x86.operands import Imm

        out = []
        for insn in self.instructions:
            if insn.mnemonic not in ("add", "adc", "sub", "sbb", "mov"):
                continue
            if insn.operands and isinstance(insn.operands[-1], Imm):
                out.append(insn)
        return out


def cfg_for_function(image, symbol) -> Optional[FunctionCFG]:
    """Decode and build the CFG of a function symbol; None on failure."""
    try:
        instructions = decode_all(
            image.read(symbol.vaddr, symbol.size), address=symbol.vaddr
        )
    except Exception:
        return None
    return FunctionCFG(symbol.name, instructions)
