"""Rolling windows: bucket ring, rates, EWMA, quantiles, WindowSet."""

import pytest

from repro.telemetry import FlightRecorder, RollingWindow, WindowSet


def test_count_and_rate_over_partial_window():
    w = RollingWindow(window_seconds=10)
    for ts in (0.1, 0.5, 1.2, 2.9):
        w.observe(1.0, now=ts)
    assert w.count(now=3.0) == 4
    # only 3s of a 10s window have elapsed; rate uses the elapsed span
    assert w.rate(now=3.0) == pytest.approx(4 / 3.0)


def test_window_eviction_exact():
    w = RollingWindow(window_seconds=5)
    for ts in (0.5, 1.5, 2.5, 3.5, 4.5):
        w.observe(now=ts)
    assert w.count(now=4.9) == 5
    # at now=7.2 the live buckets are epochs 3..7 -> ts 3.5 and 4.5 remain
    assert w.count(now=7.2) == 2
    # far future: everything evicted
    assert w.count(now=100.0) == 0
    assert w.rate(now=100.0) == 0.0


def test_ring_slot_reuse_resets_stale_epochs():
    w = RollingWindow(window_seconds=3)  # 3 slots
    w.observe(5.0, now=0.5)  # epoch 0
    w.observe(7.0, now=3.5)  # epoch 3 reuses slot 0; old data dropped
    assert w.count(now=3.5) == 1
    assert w.total(now=3.5) == 7.0


def test_quantiles_over_retained_samples():
    w = RollingWindow(window_seconds=60)
    for i in range(1, 101):
        w.observe(float(i), now=0.5)
    assert w.quantile(0.5, now=1.0) == 50.0
    assert w.quantile(0.95, now=1.0) == 95.0
    assert w.quantile(0.99, now=1.0) == 99.0
    assert w.quantile(1.0, now=1.0) == 100.0
    with pytest.raises(ValueError):
        w.quantile(1.5)


def test_bucket_sample_cap_counts_capped():
    w = RollingWindow(window_seconds=10, max_bucket_samples=3)
    for i in range(10):
        w.observe(float(i), now=0.5)
    snap = w.snapshot(now=1.0)
    assert snap["count"] == 10
    assert snap["capped_samples"] == 7
    # count/sum/mean stay exact even though samples were capped
    assert snap["sum"] == sum(range(10))


def test_ewma_weights_recent_buckets():
    w = RollingWindow(window_seconds=4, alpha=0.5)
    # old burst, then quiet
    for _ in range(8):
        w.observe(now=0.5)
    assert w.ewma_rate(now=0.9) == pytest.approx(8.0)
    # three empty buckets later the EWMA has decayed toward zero
    assert w.ewma_rate(now=3.9) == pytest.approx(8.0 * 0.5 ** 3)
    # and is far below the plain window rate's average
    assert w.ewma_rate(now=3.9) < w.rate(now=3.9) * 4


def test_injectable_clock_is_used_when_now_omitted():
    clock = lambda: 2.5  # noqa: E731
    w = RollingWindow(window_seconds=10, clock=clock)
    w.observe(3.0)
    assert w.count() == 1
    assert w.total() == 3.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RollingWindow(window_seconds=0)
    with pytest.raises(ValueError):
        RollingWindow(alpha=0.0)


# ----------------------------------------------------------------------
# WindowSet
# ----------------------------------------------------------------------


def _event(kind, ts, **fields):
    return {"type": "event", "seq": 0, "ts": ts, "kind": kind, **fields}


def test_windowset_feeds_rates_and_value_fields():
    ws = WindowSet(window_seconds=10)
    ws.feed_event(_event("protect", 0.5, seconds=0.25))
    ws.feed_event(_event("protect", 1.5, seconds=0.75))
    ws.feed_event(_event("attack", 2.0, detected=True))
    snap = ws.snapshot(now=2.0)
    assert snap["protect"]["count"] == 2
    assert snap["attack"]["count"] == 1
    assert snap["protect.seconds"]["sum"] == pytest.approx(1.0)
    # booleans are not numeric values
    assert "attack.detected" not in snap
    assert ws.events_fed == 3


def test_windowset_subscription_sees_recorder_events_live():
    recorder = FlightRecorder(capacity=64)
    ws = WindowSet(window_seconds=30).subscribe_to(recorder)
    recorder.record("protect", program="wget", seconds=0.1)
    recorder.record("attack", detected=False)
    assert ws.events_fed == 2
    assert ws.rate_window("protect").count() == 1
    ws.close()
    recorder.record("protect", program="gzip")
    assert ws.events_fed == 2  # unsubscribed


def test_windowset_replay_reconstructs_live_feed():
    recorder = FlightRecorder(capacity=64)
    live = WindowSet(window_seconds=30).subscribe_to(recorder)
    for i in range(5):
        recorder.record("protect", seconds=0.1 * i)
    replayed = WindowSet(window_seconds=30)
    assert replayed.replay(recorder.to_events()) == 5
    now = max(e["ts"] for e in recorder.to_events())
    assert replayed.snapshot(now) == live.snapshot(now)


def test_windowset_group_by_context_label():
    ws = WindowSet(window_seconds=30, group_by="request")
    ws.feed_event(_event("protect", 0.5, ctx={"request": "r1"}))
    ws.feed_event(_event("protect", 0.6, ctx={"request": "r2"}))
    ws.feed_event(_event("protect", 0.7))  # unlabeled
    snap = ws.snapshot(now=1.0)
    assert snap["protect[request=r1]"]["count"] == 1
    assert snap["protect[request=r2]"]["count"] == 1
    assert snap["protect"]["count"] == 1


def test_windowset_ignores_non_event_records():
    ws = WindowSet()
    ws.feed_event({"type": "journal_summary", "recorded": 10})
    assert ws.events_fed == 0
