"""The benchmark regression gate: history parsing, baselines, exits.

Drives ``benchmarks/check_regression.py`` both in-process (for exact
output) and as a subprocess (for the exit codes CI relies on).
"""

import io
import json
import os
import subprocess
import sys

BENCHMARKS = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
GATE = os.path.abspath(os.path.join(BENCHMARKS, "check_regression.py"))

sys.path.insert(0, os.path.abspath(BENCHMARKS))

import check_regression  # noqa: E402


ENV = {"python": "3.12.0", "machine": "x86_64", "engine": "block"}


def entry(metrics, env=ENV, sha="abc123"):
    return {
        "benchmark": "emulator",
        "timestamp": 0.0,
        "git_sha": sha,
        "env": env,
        "metrics": metrics,
    }


def write_history(tmp_path, entries):
    path = tmp_path / "emulator.jsonl"
    with open(path, "w") as fh:
        for e in entries:
            fh.write(json.dumps(e) + "\n")
    return str(tmp_path)


def run_gate(history_dir, *extra):
    return subprocess.run(
        [sys.executable, GATE, "--bench", "emulator", "--history", history_dir]
        + list(extra),
        capture_output=True,
        text=True,
    )


def test_synthetic_twenty_percent_slowdown_fails(tmp_path):
    baseline = {"gzip.chain.block_ips": 1_000_000.0, "speedup": 3.0}
    slow = {"gzip.chain.block_ips": 800_000.0, "speedup": 2.4}
    history = write_history(tmp_path, [entry(baseline)] * 3 + [entry(slow)])
    result = run_gate(history)
    assert result.returncode == 1, result.stdout
    assert "REGRESSION" in result.stdout
    assert "0.800x" in result.stdout


def test_steady_history_passes(tmp_path):
    metrics = {"gzip.chain.block_ips": 1_000_000.0}
    history = write_history(tmp_path, [entry(metrics)] * 4)
    result = run_gate(history)
    assert result.returncode == 0, result.stdout
    assert "ok" in result.stdout


def test_improvement_passes(tmp_path):
    history = write_history(
        tmp_path,
        [entry({"ips": 100.0}), entry({"ips": 100.0}), entry({"ips": 150.0})],
    )
    result = run_gate(history)
    assert result.returncode == 0
    assert "1.500x" in result.stdout


def test_insufficient_history_is_not_a_failure(tmp_path):
    history = write_history(tmp_path, [entry({"ips": 100.0})])
    result = run_gate(history)
    assert result.returncode == 0
    assert "insufficient history" in result.stdout


def test_missing_history_is_not_a_failure(tmp_path):
    result = run_gate(str(tmp_path / "nowhere"))
    assert result.returncode == 0
    assert "no history" in result.stdout


def test_usage_errors_exit_two(tmp_path):
    history = write_history(tmp_path, [entry({"ips": 100.0})] * 2)
    assert run_gate(history, "--threshold", "1.5").returncode == 2
    assert run_gate(history, "--min-runs", "1").returncode == 2


# ----------------------------------------------------------------------
# In-process unit checks
# ----------------------------------------------------------------------


def test_corrupt_lines_are_skipped(tmp_path):
    path = tmp_path / "emulator.jsonl"
    path.write_text(
        json.dumps(entry({"ips": 100.0}))
        + "\n{truncated by a killed run\n\n"
        + json.dumps(entry({"ips": 101.0}))
        + "\n[1, 2, 3]\n"
    )
    entries = check_regression.load_history(str(path))
    assert len(entries) == 2


def test_baseline_uses_median_over_window():
    entries = [entry({"ips": v}) for v in (10.0, 1000.0, 90.0, 100.0, 110.0)]
    baseline = check_regression.baseline_metrics(entries, window=3)
    assert baseline["ips"] == 100.0  # the outliers fall outside/median out


def test_env_mismatch_is_noted_not_gated():
    old = [entry({"ips": 100.0}, env={"python": "3.8.0"})] * 3
    candidate = entry({"ips": 84.0})  # 16% down vs the other-env runs
    buf = io.StringIO()
    rc = check_regression.check(
        old + [candidate], threshold=0.15, window=5, min_runs=2, out=buf
    )
    # cross-env comparison still happens, with an explicit note
    assert "no prior runs share the candidate's environment" in buf.getvalue()
    assert rc == 1  # the slowdown is still reported against what exists


def test_same_env_history_preferred():
    other_env = [entry({"ips": 10_000.0}, env={"python": "3.8.0"})] * 3
    same_env = [entry({"ips": 100.0})] * 3
    candidate = entry({"ips": 99.0})
    rc = check_regression.check(
        other_env + same_env + [candidate],
        threshold=0.15,
        window=5,
        min_runs=2,
    )
    assert rc == 0  # judged against same-env 100.0, not the 10k outliers


def test_no_comparable_metrics_errors():
    entries = [entry({"a": 1.0}), entry({"b": 2.0})]
    rc = check_regression.check(entries, threshold=0.15, window=5, min_runs=2)
    assert rc == 1
