"""Binary image substrate: sections, symbols, images, reversible patches."""

from .image import BinaryImage
from .patch import Patch, PatchSet
from .section import Perm, Section
from .symbol import Symbol, SymbolKind, SymbolTable

__all__ = [
    "BinaryImage",
    "Patch",
    "PatchSet",
    "Perm",
    "Section",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
]
