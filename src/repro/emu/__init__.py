"""IA-32 emulator substrate: memory with I/D split, CPU, toy OS, profiler."""

from .blocks import BlockEngine
from .cpu import CPUState
from .dispatch import DISPATCH
from .emulator import (
    CALL_SENTINEL,
    CYCLE_COSTS,
    DEFAULT_ENGINE,
    ENGINE_BLOCK,
    ENGINE_DESCRIPTIONS,
    ENGINE_STEP,
    ENGINE_TRACE,
    ENGINES,
    Emulator,
    EmulatorConfig,
    RunResult,
    TamperWatch,
    run_image,
)
from .errors import (
    BadFetch,
    BadMemoryAccess,
    DivideError,
    EmulationError,
    Halted,
    StepLimitExceeded,
    UnsupportedSyscall,
)
from .hotspots import HotspotProfiler
from .memory import PAGE_SIZE, Memory
from .profiler import FunctionProfile, Profiler, profile_run
from .traces import CompiledTrace, TraceEngine
from .syscalls import (
    ExitProgram,
    OperatingSystem,
    SYS_EXIT,
    SYS_GETPID,
    SYS_PTRACE,
    SYS_READ,
    SYS_TIME,
    SYS_WRITE,
)

__all__ = [
    "CPUState", "Emulator", "EmulatorConfig", "RunResult", "TamperWatch",
    "run_image",
    "CALL_SENTINEL", "CYCLE_COSTS", "Memory", "PAGE_SIZE",
    "BlockEngine", "CompiledTrace", "TraceEngine", "DISPATCH",
    "ENGINES", "ENGINE_BLOCK", "ENGINE_TRACE", "ENGINE_STEP",
    "ENGINE_DESCRIPTIONS", "DEFAULT_ENGINE",
    "BadFetch", "BadMemoryAccess", "DivideError", "EmulationError",
    "Halted", "StepLimitExceeded", "UnsupportedSyscall",
    "FunctionProfile", "Profiler", "profile_run", "HotspotProfiler",
    "ExitProgram", "OperatingSystem",
    "SYS_EXIT", "SYS_GETPID", "SYS_PTRACE", "SYS_READ", "SYS_TIME", "SYS_WRITE",
]
