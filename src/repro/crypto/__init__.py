"""Stream ciphers used for encrypted verification chains."""

from .rc4 import rc4_crypt, rc4_ksa, rc4_stream
from .xorstream import xor_crypt_words, xor_keystream_words, xorshift32

__all__ = [
    "rc4_crypt",
    "rc4_ksa",
    "rc4_stream",
    "xor_crypt_words",
    "xor_keystream_words",
    "xorshift32",
]
