"""CPU flag computation unit tests."""

import pytest

from repro.emu import CPUState
from repro.x86 import AH, AL, AX, EAX, EBX


def test_register_aliasing_through_state():
    cpu = CPUState()
    cpu.set(EAX, 0x11223344)
    assert cpu.get(AL) == 0x44
    assert cpu.get(AH) == 0x33
    assert cpu.get(AX) == 0x3344
    cpu.set(AH, 0xAB)
    assert cpu.get(EAX) == 0x1122AB44
    cpu.set(AL, 0xCD)
    assert cpu.get(EAX) == 0x1122ABCD
    cpu.set(AX, 0xBEEF)
    assert cpu.get(EAX) == 0x1122BEEF


@pytest.mark.parametrize(
    "a,b,carry,cf,zf,sf,of",
    [
        (0xFFFFFFFF, 1, 0, True, True, False, False),
        (0x7FFFFFFF, 1, 0, False, False, True, True),
        (1, 1, 0, False, False, False, False),
        (0x80000000, 0x80000000, 0, True, True, False, True),
        (0xFFFFFFFF, 0, 1, True, True, False, False),
    ],
)
def test_add_flags(a, b, carry, cf, zf, sf, of):
    cpu = CPUState()
    cpu.set_add_flags(a, b, carry, 32)
    assert (cpu.cf, cpu.zf, cpu.sf, cpu.of) == (cf, zf, sf, of)


@pytest.mark.parametrize(
    "a,b,cf,zf,sf,of",
    [
        (0, 1, True, False, True, False),
        (1, 1, False, True, False, False),
        (0x80000000, 1, False, False, False, True),
        (5, 3, False, False, False, False),
    ],
)
def test_sub_flags(a, b, cf, zf, sf, of):
    cpu = CPUState()
    cpu.set_sub_flags(a, b, 0, 32)
    assert (cpu.cf, cpu.zf, cpu.sf, cpu.of) == (cf, zf, sf, of)


def test_condition_evaluation_table():
    cpu = CPUState()
    cpu.set_sub_flags(5, 7, 0, 32)  # 5 - 7: signed less, unsigned borrow
    assert cpu.condition("l") and cpu.condition("le") and cpu.condition("b")
    assert not cpu.condition("g") and not cpu.condition("ae")
    cpu.set_sub_flags(7, 7, 0, 32)
    assert cpu.condition("e") and cpu.condition("le") and cpu.condition("ge")
    cpu.set_sub_flags(0x80000000, 1, 0, 32)  # signed overflow case
    assert cpu.condition("l")  # INT_MIN < 1 signed


def test_logic_flags_clear_carry():
    cpu = CPUState()
    cpu.cf = cpu.of = True
    cpu.set_logic_flags(0, 32)
    assert not cpu.cf and not cpu.of and cpu.zf
    cpu.set_logic_flags(0x80000000, 32)
    assert cpu.sf
