"""Finder cache correctness: version invalidation and parallel identity.

* A :data:`FINDER_VERSION` bump must orphan every entry written by an
  older finder — a stale gadget list can never be replayed into a new
  algorithm's pipeline.
* Parallel per-section scans (``find_gadgets(jobs=N)``) must leave the
  on-disk cache **byte-identical** to a serial run's: same keys, same
  pickled payloads.  That is what lets pool workers and later serial
  runs share one cache directory without re-scanning.
"""

import os
import pickle

from repro.binary import BinaryImage, Perm, Section
from repro.cache import cache_session, content_key
from repro.gadgets import (
    FINDER_VERSION,
    find_gadgets,
    find_gadgets_in_bytes,
    find_gadgets_in_bytes_cached,
    reference_find_gadgets,
)
from repro.x86 import Assembler, EAX, EBX, ECX


def _fingerprint(gadgets):
    return [(g.address, g.end, g.kind.key()) for g in gadgets]


def _multi_section_image():
    image = BinaryImage("multi")
    a = Assembler()
    a.pop(EAX); a.ret(); a.nop(); a.mov(EBX, EAX); a.ret()
    b = Assembler()
    b.pop(EBX); b.ret(); b.pop(ECX); b.nop(); b.ret()
    c = Assembler()
    c.mov(ECX, EBX); c.ret(); c.nop(); c.nop(); c.ret()
    image.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
    image.add_section(Section(".text2", 0x2000, b.assemble(), Perm.RX))
    image.add_section(Section(".text3", 0x3000, c.assemble(), Perm.RX))
    image.add_section(Section(".data", 0x4000, b"\xc3" * 16, Perm.R))
    return image


def _disk_snapshot(root):
    snapshot = {}
    for directory, _subdirs, files in os.walk(root):
        for name in files:
            path = os.path.join(directory, name)
            with open(path, "rb") as fh:
                snapshot[os.path.relpath(path, root)] = fh.read()
    return snapshot


def test_finder_version_is_bumped_for_the_memoized_scanner():
    # v1 was the exhaustive per-offset re-decode; the memoized scanner
    # must carry its own stamp so v1 entries die.
    assert FINDER_VERSION == 2


def test_version_bump_invalidates_prior_entries(tmp_path):
    a = Assembler()
    a.pop(EAX); a.ret()
    data = a.assemble()
    old_key = content_key("find_gadgets", FINDER_VERSION - 1, data, 0, 6, True)
    new_key = content_key("find_gadgets", FINDER_VERSION, data, 0, 6, True)
    assert old_key != new_key

    with cache_session(cache_dir=str(tmp_path)) as manager:
        cache = manager.get("gadgets")
        # Poison the previous version's slot with garbage that would be
        # catastrophic if replayed.
        cache.put(old_key, ["stale-garbage-from-v%d" % (FINDER_VERSION - 1)])
        result = find_gadgets_in_bytes_cached(data, base=0)
        assert _fingerprint(result) == _fingerprint(find_gadgets_in_bytes(data))
        assert result != ["stale-garbage-from-v%d" % (FINDER_VERSION - 1)]
        # The stale entry is orphaned, not overwritten: both files exist,
        # under different keys.
        hit, stale = cache.get(old_key)
        assert hit and stale == ["stale-garbage-from-v%d" % (FINDER_VERSION - 1)]
        hit, fresh = cache.get(new_key)
        assert hit and _fingerprint(fresh) == _fingerprint(result)


def test_cached_scan_replays_identically(tmp_path):
    image = _multi_section_image()
    with cache_session(cache_dir=str(tmp_path)):
        cold = find_gadgets(image)
        warm = find_gadgets(image)
    assert _fingerprint(cold) == _fingerprint(warm)
    assert _fingerprint(cold) == _fingerprint(reference_find_gadgets(image))


def test_parallel_and_serial_scans_write_identical_cache_bytes(tmp_path):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"

    with cache_session(cache_dir=str(serial_dir)):
        serial = find_gadgets(_multi_section_image(), jobs=1)
    with cache_session(cache_dir=str(parallel_dir)):
        parallel = find_gadgets(_multi_section_image(), jobs=3)

    assert _fingerprint(serial) == _fingerprint(parallel)
    serial_snapshot = _disk_snapshot(str(serial_dir))
    parallel_snapshot = _disk_snapshot(str(parallel_dir))
    assert serial_snapshot.keys() == parallel_snapshot.keys()
    assert serial_snapshot == parallel_snapshot
    # And the payloads really are gadget lists for the image's sections.
    assert len(serial_snapshot) == 3
    for blob in serial_snapshot.values():
        assert pickle.loads(blob)


def test_parallel_scan_merges_worker_metrics_deterministically(tmp_path):
    from repro.telemetry import MetricsRegistry, set_metrics

    def counters(jobs):
        registry = MetricsRegistry(enabled=True)
        previous = set_metrics(registry)
        try:
            with cache_session(enabled=False):
                find_gadgets(_multi_section_image(), jobs=jobs)
        finally:
            set_metrics(previous)
        samples = registry.to_dict()
        return {
            name: samples[name]["value"]
            for name in (
                "gadgets.offsets_scanned",
                "gadgets.accepted",
                "gadgets.rejected",
            )
        }

    assert counters(1) == counters(3)
