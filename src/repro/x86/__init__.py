"""IA-32 instruction-set substrate: registers, encoder, decoder, assembler.

This package implements the integer subset of IA-32 that the Parallax
reproduction needs: every encoding the corpus generator emits, every byte
pattern the rewriting rules of the paper's §IV-B exploit (``ret``/``retf``
opcodes inside immediates and jump offsets, the ``add`` opcode family
0x00–0x05), and unaligned decoding for gadget discovery.
"""

from .asm import Assembler, assemble_snippet
from .decoder import decode, decode_all, iter_decode
from .encoder import assemble, encode_modrm
from .errors import AssemblerError, DecodeError, EncodeError, X86Error
from .instruction import (
    CONDITIONAL_JUMPS,
    CONTROL_FLOW,
    RETURNS,
    Instruction,
)
from .opcodes import (
    GADGET_TERMINATORS,
    RET_IMM16_OPCODE,
    RET_OPCODE,
    RETF_IMM16_OPCODE,
    RETF_OPCODE,
)
from .operands import (
    Imm,
    Mem,
    Rel,
    fits_signed,
    mem8,
    mem32,
    to_signed,
    to_unsigned,
)
from .registers import (
    AH, AL, AX, BH, BL, BP, BX, CH, CL, CX, DH, DI, DL, DX,
    EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP,
    GP8, GP16, GP32, SCRATCH32, SI, SP,
    Register,
)

__all__ = [
    "Assembler", "assemble_snippet", "decode", "decode_all", "iter_decode",
    "assemble", "encode_modrm",
    "AssemblerError", "DecodeError", "EncodeError", "X86Error",
    "Instruction", "CONDITIONAL_JUMPS", "CONTROL_FLOW", "RETURNS",
    "GADGET_TERMINATORS", "RET_OPCODE", "RETF_OPCODE",
    "RET_IMM16_OPCODE", "RETF_IMM16_OPCODE",
    "Imm", "Mem", "Rel", "fits_signed", "mem8", "mem32",
    "to_signed", "to_unsigned",
    "Register", "GP8", "GP16", "GP32", "SCRATCH32",
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "AX", "CX", "DX", "BX", "SP", "BP", "SI", "DI",
    "AL", "CL", "DL", "BL", "AH", "CH", "DH", "BH",
]
