"""The rewriting engine: run every rule, build reports and gadget pools.

§VII-A: "it is not necessarily possible to protect all potentially
protectable code bytes at once, since the required modifications may
conflict" — the engine detects such conflicts when asked to select an
applicable subset (two candidates conflict when their byte patches
overlap or when they modify the same instruction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..binary.image import BinaryImage
from ..gadgets.catalog import GadgetCatalog
from ..telemetry import get_metrics, get_recorder, get_tracer
from .report import (
    ProtectabilityReport,
    RULE_FAR,
    RULE_IMM,
    RULE_JUMP,
    RULE_NEAR,
)
from .rules import (
    ExistingGadgetRule,
    FarReturnRule,
    ImmediateModificationRule,
    JumpOffsetRule,
)


class AnalysisResult:
    """Everything the rules found for one image."""

    def __init__(self, image: BinaryImage, report: ProtectabilityReport):
        self.image = image
        self.report = report
        self.existing_gadgets: List = []
        self.far_gadgets: List = []
        self.immediate_candidates: List = []
        self.jump_candidates: List = []

    def catalog(self) -> GadgetCatalog:
        """Catalog of gadgets present in the binary *right now*
        (existing near/far; candidates are not yet real)."""
        return GadgetCatalog(self.existing_gadgets + self.far_gadgets)

    def protectable_fraction(self) -> float:
        return self.report.percent_any() / 100.0


class RewriteEngine:
    """Runs the §IV-B rule set over a binary image."""

    def __init__(self, max_gadget_insns: int = 6):
        self.rule_near = ExistingGadgetRule(max_gadget_insns)
        self.rule_far = FarReturnRule(max_gadget_insns)
        self.rule_imm = ImmediateModificationRule(max_gadget_insns)
        self.rule_jump = JumpOffsetRule(max_gadget_insns)

    def analyze(self, image: BinaryImage) -> AnalysisResult:
        """Measure protectability (the Fig. 6 computation)."""
        with get_tracer().span("analyze", image=image.name) as span:
            report = ProtectabilityReport(image.name, image.code_bytes())
            result = AnalysisResult(image, report)
            result.existing_gadgets = self.rule_near.measure(image, report)
            result.far_gadgets = self.rule_far.measure(image, report)
            result.immediate_candidates = self.rule_imm.measure(image, report)
            result.jump_candidates = self.rule_jump.measure(image, report)
            metrics = get_metrics()
            for rule_name, hits in (
                ("existing_near", len(result.existing_gadgets)),
                ("far_return", len(result.far_gadgets)),
                ("immediate", len(result.immediate_candidates)),
                ("jump_offset", len(result.jump_candidates)),
            ):
                metrics.counter(f"rewrite.rule_hits.{rule_name}").inc(hits)
                span.set_attribute(rule_name, hits)
            metrics.counter("rewrite.analyses").inc()
            recorder = get_recorder()
            if recorder.enabled:
                recorder.record(
                    "rewrite",
                    image=image.name,
                    existing_near=len(result.existing_gadgets),
                    far_return=len(result.far_gadgets),
                    immediate=len(result.immediate_candidates),
                    jump_offset=len(result.jump_candidates),
                )
            return result

    # ------------------------------------------------------------------
    # Conflict-aware selection (for application)
    # ------------------------------------------------------------------

    @staticmethod
    def select_non_conflicting(candidates: List) -> List:
        """Greedy maximal subset of candidates with disjoint patches.

        Candidates are ranked by gadget length (longer = more protected
        bytes per modification).
        """
        chosen: List = []
        taken_bytes: set = set()
        for candidate in sorted(
            candidates, key=lambda c: -c.gadget.length
        ):
            addr = candidate.patch_addr
            insn_span = range(
                candidate.insn.address, candidate.insn.address + candidate.insn.length
            )
            if addr in taken_bytes or any(b in taken_bytes for b in insn_span):
                continue
            chosen.append(candidate)
            taken_bytes.update(insn_span)
        return chosen

    def classify_gadgets(self, image: BinaryImage) -> Dict[int, str]:
        """Map gadget addresses to the §IV-B rule family that yields them.

        Existing gadgets (near/far returns) are classified by what they
        are; candidate gadgets by the modification rule that would
        create them.  The coverage observatory uses this to attribute
        guarded bytes to rewrite rules.  When several rules can produce
        a gadget at the same address the Fig. 6 ordering (near, far,
        immediate, jump) wins — the cheapest rule is the attribution.
        """
        result = self.analyze(image)
        classes: Dict[int, str] = {}
        for rule_name, gadgets in (
            (RULE_JUMP, [c.gadget for c in result.jump_candidates]),
            (RULE_IMM, [c.gadget for c in result.immediate_candidates]),
            (RULE_FAR, result.far_gadgets),
            (RULE_NEAR, result.existing_gadgets),
        ):
            for gadget in gadgets:
                classes[gadget.address] = rule_name
        return classes

    def protect_instructions(
        self, image: BinaryImage, addresses: List[int]
    ) -> Dict[int, object]:
        """Map each requested instruction address to the candidate or
        existing gadget that would protect it, if any.

        This is the "walk through the list of instructions selected for
        protection" step of §III.
        """
        result = self.analyze(image)
        protection: Dict[int, object] = {}
        pools = (
            result.existing_gadgets
            + result.far_gadgets
            + [c.gadget for c in result.immediate_candidates]
            + [c.gadget for c in result.jump_candidates]
        )
        for addr in addresses:
            for gadget in pools:
                if addr in gadget.span():
                    best = protection.get(addr)
                    if best is None or gadget.length > best.length:
                        protection[addr] = gadget
        return protection
