"""Corpus generation is deterministic across process boundaries.

The content-addressed cache keys corpus programs by
``package_source_digest()`` + name only — that is sound *only if* a
fixed-seed build produces identical bytes every time, in every
process.  These tests pin that assumption down.
"""

import subprocess
import sys

from repro.corpus import PROGRAM_NAMES, build_program, build_program_cached

_SNIPPET = """\
import sys
from repro.corpus import PROGRAM_NAMES, build_program
for name in PROGRAM_NAMES:
    print(name, build_program(name).image.fingerprint())
"""


def _fingerprints_in_subprocess():
    out = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return dict(line.split() for line in out.splitlines())


def test_rebuild_in_process_is_byte_identical():
    for name in PROGRAM_NAMES:
        first = build_program(name)
        second = build_program(name)
        assert first.image.canonical_bytes() == second.image.canonical_bytes()


def test_rebuild_across_processes_is_byte_identical():
    local = {
        name: build_program(name).image.fingerprint() for name in PROGRAM_NAMES
    }
    assert _fingerprints_in_subprocess() == local


def test_cached_build_matches_uncached():
    from repro.cache import cache_session

    for name in PROGRAM_NAMES:
        reference = build_program(name)
        with cache_session():
            cold = build_program_cached(name)
            warm = build_program_cached(name)
        assert (
            reference.image.canonical_bytes()
            == cold.image.canonical_bytes()
            == warm.image.canonical_bytes()
        )
        assert warm.image is not cold.image  # fresh graph per hit
