"""Call graphs and CFGs."""

from repro.analysis import (
    callgraph_from_binary, callgraph_from_ir, cfg_for_function,
)
from repro.ropc import ir
from repro.x86 import EAX, EBX


def _toy_functions():
    callee = ir.IRFunction("callee", 1)
    callee.emit(ir.Param(EAX, 0))
    callee.emit(ir.Ret())
    caller = ir.IRFunction("caller", 0)
    caller.emit(ir.Const(EBX, 1))
    caller.emit(ir.Call(EAX, "callee", (EBX,)))
    caller.emit(ir.Call(EAX, "callee", (EBX,)))
    caller.emit(ir.Ret())
    return [callee, caller]


def test_ir_callgraph_counts_sites():
    graph = callgraph_from_ir(_toy_functions())
    assert graph.call_sites("callee") == 2
    assert graph.fan_in("callee") == 1
    assert "callee" in graph.leaves()
    assert "caller" not in graph.leaves()


def test_binary_callgraph_matches_ir(small_wget):
    from_ir = callgraph_from_ir(small_wget.functions.values())
    from_bin = callgraph_from_binary(small_wget.image)
    # binary recovery sees at least the statically-compiled direct calls
    assert from_bin.call_sites("digest_wget") >= 2
    assert from_bin.fan_in("to_hex") >= 1
    assert from_ir.call_sites("digest_wget") == from_bin.call_sites("digest_wget")


def test_cfg_blocks_and_targets(small_wget):
    image = small_wget.image
    cfg = cfg_for_function(image, image.symbols["digest_wget"])
    assert len(cfg.blocks) > 3
    assert cfg.branch_instructions()
    assert cfg.immediate_instructions()
    # blocks partition the instruction list
    total = sum(len(b.instructions) for b in cfg.blocks)
    assert total == len(cfg.instructions)
