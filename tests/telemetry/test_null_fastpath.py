"""The disabled-telemetry fast path: no allocation, negligible cost.

Every subsystem is instrumented unconditionally; what keeps the
default (telemetry-off) configuration honest is that the disabled
instruments, tracer and recorder allocate nothing per call and cost
less than a few percent of one emulated instruction.
"""

import time
import tracemalloc

from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator
from repro.telemetry import FlightRecorder, MetricsRegistry, Tracer
from repro.telemetry.metrics import NULL_COUNTER, NULL_HISTOGRAM, NULL_TIMER
from repro.telemetry.tracing import NULL_SPAN
from repro.x86 import Assembler, EAX, ECX, Imm

BASE = 0x1000


def _loop_image(n):
    a = Assembler(base=BASE)
    a.mov(ECX, Imm(n, 32))
    a.mov(EAX, 0)
    a.label("top")
    a.add(EAX, ECX)
    a.dec(ECX)
    a.jne("top")
    a.ret()
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, a.assemble(), Perm.RX))
    return img


def test_disabled_calls_allocate_nothing():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    hist = registry.histogram("h")
    rec = FlightRecorder(enabled=False)
    tracer = Tracer(enabled=False)
    # disabled accessors hand out the shared null singletons
    assert counter is NULL_COUNTER and hist is NULL_HISTOGRAM
    assert registry.timer("t") is NULL_TIMER
    assert tracer.span("x") is NULL_SPAN

    def batch(n):
        for _ in range(n):
            counter.inc()
            hist.observe(1.0)
            rec.record("k", a=1)
            with tracer.span("s"):
                pass

    batch(200)  # warm up method caches / bytecode specialization
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        batch(5_000)
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert after - before <= 512, "disabled telemetry retained memory"
    assert len(rec) == 0 and rec.dropped == 0
    assert tracer.spans == []
    assert len(registry) == 0


def _best_of(fn, repeats=5):
    return min(fn() for _ in range(repeats))


def test_disabled_guards_cost_under_five_percent_of_an_emulated_step():
    """The hot-path guards (``hotspots is not None``, ``rec.enabled``)
    must stay well under 5% of the cost of emulating one instruction."""
    emu = Emulator(_loop_image(2000), max_steps=1_000_000, engine="step")
    emu.call_function(BASE)  # warm the decode caches

    def emulator_seconds_per_step():
        start = emu.steps
        t0 = time.perf_counter()
        emu.call_function(BASE)
        return (time.perf_counter() - t0) / (emu.steps - start)

    rec = FlightRecorder(enabled=False)
    hotspots = None
    n = 100_000

    def guarded_loop():
        t0 = time.perf_counter()
        for _ in range(n):
            if rec.enabled:
                rec.record("k")
            if hotspots is not None:
                hotspots.record_step("mov")
        return time.perf_counter() - t0

    def bare_loop():
        t0 = time.perf_counter()
        for _ in range(n):
            pass
        return time.perf_counter() - t0

    # CI timing is noisy: best-of-N per measurement, a few retries.
    per_guard = per_step = None
    for _ in range(3):
        per_step = _best_of(emulator_seconds_per_step)
        per_guard = max(0.0, (_best_of(guarded_loop) - _best_of(bare_loop)) / n)
        if per_guard < 0.05 * per_step:
            break
    assert per_guard < 0.05 * per_step, (per_guard, per_step)
