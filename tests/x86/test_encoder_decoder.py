"""Encoder/decoder agreement and specific IA-32 encodings."""

import pytest

from repro.x86 import (
    AL, CH, CL, EAX, EBP, EBX, ECX, EDX, ESI, ESP,
    DecodeError, Imm, Mem, Rel, assemble, decode, decode_all,
    mem8, mem32,
)


def roundtrip(mnemonic, *ops, **kw):
    encoded = assemble(mnemonic, *ops, **kw)
    insn = decode(encoded, 0)
    assert insn.length == len(encoded)
    return insn


class TestSpecificEncodings:
    """Byte-exact checks against the Intel SDM."""

    def test_mov_eax_imm32_is_b8(self):
        assert assemble("mov", EAX, Imm(0x1234, 32)) == b"\xb8\x34\x12\x00\x00"

    def test_add_eax_imm8_uses_83(self):
        assert assemble("add", EAX, Imm(1, 8)) == b"\x83\xc0\x01"

    def test_add_eax_imm32_uses_05(self):
        assert assemble("add", EAX, Imm(0x100, 32)) == b"\x05\x00\x01\x00\x00"

    def test_ret_is_c3(self):
        assert assemble("ret") == b"\xc3"

    def test_retf_is_cb(self):
        assert assemble("retf") == b"\xcb"

    def test_pop_eax_is_58(self):
        assert assemble("pop", EAX) == b"\x58"

    def test_push_ebp_mov_ebp_esp(self):
        assert assemble("push", EBP) == b"\x55"
        assert assemble("mov", EBP, ESP) == b"\x89\xe5"

    def test_paper_sar_gadget_bytes(self):
        # Listing 1: sar byte [ecx+0x7], 0x8b  ==  c0 79 07 8b
        encoded = assemble("sar", mem8(ECX, disp=7), Imm(0x8B, 8))
        assert encoded == b"\xc0\x79\x07\x8b"

    def test_esp_base_requires_sib(self):
        encoded = assemble("mov", mem32(ESP), EAX)
        assert encoded == b"\x89\x04\x24"

    def test_ebp_base_requires_disp8(self):
        encoded = assemble("mov", EAX, mem32(EBP))
        assert encoded == b"\x8b\x45\x00"

    def test_int_80(self):
        assert assemble("int", Imm(0x80, 8)) == b"\xcd\x80"


class TestRoundTrips:
    CASES = [
        ("mov", (EAX, EBX)),
        ("mov", (mem32(EBX, disp=8), ECX)),
        ("mov", (CL, Imm(7, 8))),
        ("add", (ESI, Imm(0x12345678, 32))),
        ("sub", (mem32(EAX, index=ECX, scale=4, disp=-12), EDX)),
        ("xor", (EAX, EAX)),
        ("cmp", (EAX, Imm(100, 8))),
        ("test", (EAX, EBX)),
        ("lea", (ESI, Mem(base=EAX, index=EBX, scale=2, disp=0x44))),
        ("imul", (EAX, EBX)),
        ("imul", (EAX, EBX, Imm(10, 8))),
        ("shl", (EAX, Imm(5, 8))),
        ("sar", (EDX, CL)),
        ("push", (Imm(0x1000, 32),)),
        ("pop", (EBX,)),
        ("inc", (ECX,)),
        ("dec", (mem32(EAX),)),
        ("neg", (EAX,)),
        ("not", (EBX,)),
        ("movzx", (EAX, mem8(ESI))),
        ("movsx", (ECX, mem8(EDI := EBX))),
        ("xchg", (EAX, EBX)),
        ("ret", (Imm(8, 16),)),
        ("call", (EAX,)),
        ("jmp", (mem32(EBX),)),
        ("sete", (AL,)),
    ]

    @pytest.mark.parametrize("mnemonic,ops", CASES, ids=lambda v: str(v))
    def test_roundtrip(self, mnemonic, ops):
        insn = roundtrip(mnemonic, *ops)
        assert insn.mnemonic == mnemonic

    def test_rel_branches_resolve_targets(self):
        encoded = assemble("jmp", Rel(0x10, 32))
        insn = decode(encoded, 0, address=0x1000)
        assert insn.branch_target() == 0x1000 + 5 + 0x10

    def test_jcc_rel8(self):
        encoded = assemble("jne", Rel(-2, 8))
        insn = decode(encoded, 0, address=0x2000)
        assert insn.mnemonic == "jne"
        assert insn.branch_target() == 0x2000  # loops to itself


class TestDecoderRobustness:
    def test_truncated_raises(self):
        with pytest.raises(DecodeError):
            decode(b"\xb8\x01", 0)

    def test_empty_raises(self):
        with pytest.raises(DecodeError):
            decode(b"", 0)

    def test_prefixed_instruction(self):
        # rep + segment override + real instruction decodes as a unit
        insn = decode(b"\xf3\x2e\x90", 0)
        assert insn.mnemonic == "nop"
        assert insn.length == 3

    def test_operand_size_prefix_16bit(self):
        insn = decode(b"\x66\xb8\x34\x12", 0)
        assert insn.mnemonic == "mov"
        assert insn.operands[1].value == 0x1234
        assert insn.operands[0].width == 16

    def test_imm_offset_tracks_prefixes(self):
        insn = decode(b"\x66\xb8\x34\x12", 0)
        assert insn.imm_offset == 2

    def test_rep_branch_rejected(self):
        with pytest.raises(DecodeError):
            decode(b"\xf3\xc3\x90\x90", 0) and None  # rep ret is... actually allowed?

    def test_decode_all_stop_on_error(self):
        insns = decode_all(b"\x90\x90\x0f\xff", stop_on_error=True)
        assert [i.mnemonic for i in insns] == ["nop", "nop"]

    def test_decode_only_opcodes(self):
        for raw, mnemonic in [
            (b"\x27", "daa"), (b"\x9c", "pushfd"), (b"\xf8", "clc"),
            (b"\xd7", "xlat"), (b"\xaa", "stosb"),
        ]:
            assert decode(raw, 0).mnemonic == mnemonic

    def test_fpu_decodes_generic(self):
        insn = decode(b"\xd8\xc1", 0)
        assert insn.mnemonic == "fpu"

    def test_cmov(self):
        insn = decode(b"\x0f\x44\xc3", 0)
        assert insn.mnemonic == "cmove"
