"""Paged emulator memory with split instruction/data views.

Modern processors keep separate instruction and data caches.  Wurster et
al. exploited this to defeat checksumming tamper-proofing: a kernel patch
lets an attacker modify the *instruction* view of a page while loads keep
seeing the pristine *data* view — so checksums pass while the CPU runs
modified code.

:class:`Memory` models exactly that: normal reads/writes go to the
unified store; :meth:`patch_code_view` installs bytes that are visible
only to :meth:`fetch` (instruction fetch).  The Wurster attack in
:mod:`repro.attacks.wurster` is implemented on top of this hook, letting
us demonstrate that checksumming baselines are blind to it while Parallax
is not (Parallax chains *execute* the protected bytes, so they see the
instruction view).

Storage model
-------------

Two tiers share one backing store:

* **Flat segments** — a mapping whose pages are all fresh is allocated
  as one contiguous ``bytearray`` spanning the page-aligned range, and
  aligned ``struct`` fast paths serve loads/stores against it directly
  (``fast_loads``/``fast_stores`` counters).  The segment's pages are
  installed into the page table as ``memoryview`` windows over the same
  buffer, so the paged path and the flat path are coherent by
  construction.
* **Paged fallback** — overlapping mappings, span edges and anything
  created by ``_page_for(create=True)`` live as standalone 4 KiB
  ``bytearray`` pages and take the original per-page path
  (``slow_loads``/``slow_stores``).

Stacks (``map_zero``) are flat segments marked *unversioned*: stores to
them skip the per-page write-counter bump that keys the decode and
superblock caches.  Code is never cached from unversioned pages (see
:meth:`page_is_versioned`), so cache coherence is unaffected — this
just removes two dict operations from every ``push``.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from .errors import BadMemoryAccess

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


class FlatSegment:
    """One contiguous page-aligned mapping backed by a single buffer."""

    __slots__ = ("base", "data", "versioned", "limit")

    def __init__(self, base: int, data: bytearray, versioned: bool):
        self.base = base
        self.data = data
        self.versioned = versioned
        #: largest offset at which a dword access stays in-bounds; the
        #: block engine's inline fast paths bounds-check against this.
        self.limit = len(data) - 4

    def __repr__(self) -> str:
        return (
            f"<FlatSegment {self.base:#x}+{len(self.data):#x}"
            f"{'' if self.versioned else ' unversioned'}>"
        )


class Memory:
    """Sparse paged memory with flat-segment fast paths."""

    def __init__(self):
        self._pages: Dict[int, object] = {}  # bytearray or memoryview
        #: instruction-view overlay: vaddr -> byte (only consulted by fetch)
        self._code_overlay: Dict[int, int] = {}
        #: per-page write counters; lets the emulator's decode cache
        #: detect self-modifying (or tampered) code cheaply.
        self._versions: Dict[int, int] = {}
        #: page number -> owning flat segment (fast-path lookup).
        self._seg_by_page: Dict[int, FlatSegment] = {}
        #: bumped alongside any page-version bump; lets the block engine
        #: prove "nothing versioned has changed since this block was
        #: stamped" with a single integer compare.
        self.write_epoch = 0
        # telemetry: scalar accesses served by the flat path vs. the
        # paged path (recorded at run end by the emulator).
        self.fast_loads = 0
        self.slow_loads = 0
        self.fast_stores = 0
        self.slow_stores = 0

    def page_version(self, vaddr: int) -> int:
        """Monotonic counter bumped whenever the page of ``vaddr`` changes."""
        return self._versions.get(vaddr >> 12, 0)

    def page_is_versioned(self, vaddr: int) -> bool:
        """False for pages whose stores skip version bumps (stacks).

        Execution engines must not cache decoded code that lives on an
        unversioned page, because nothing would invalidate it.
        """
        seg = self._seg_by_page.get(vaddr >> 12)
        return seg.versioned if seg is not None else True

    def _bump(self, vaddr: int, length: int = 1) -> None:
        self.write_epoch += 1
        first = vaddr >> 12
        last = (vaddr + max(length - 1, 0)) >> 12
        versions = self._versions
        segs = self._seg_by_page
        for number in range(first, last + 1):
            seg = segs.get(number)
            if seg is not None and not seg.versioned:
                continue
            versions[number] = versions.get(number, 0) + 1

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map(self, vaddr: int, data: bytes) -> None:
        """Map ``data`` at ``vaddr``, allocating pages as needed."""
        if not data:
            return
        first = vaddr >> 12
        last = (vaddr + len(data) - 1) >> 12
        pages = self._pages
        if all(number not in pages for number in range(first, last + 1)):
            base = first << 12
            segment = FlatSegment(
                base, bytearray((last - first + 1) << 12), versioned=True
            )
            offset = vaddr - base
            segment.data[offset : offset + len(data)] = data
            self._install_segment(segment)
        else:
            # Overlaps an existing mapping: bulk-copy page-sized slices
            # into whatever backs each page.
            pos = 0
            length = len(data)
            while pos < length:
                addr = vaddr + pos
                page = self._page_for(addr, create=True)
                off = addr & PAGE_MASK
                chunk = min(length - pos, PAGE_SIZE - off)
                page[off : off + chunk] = data[pos : pos + chunk]
                pos += chunk
        self._bump(vaddr, len(data))

    def map_zero(self, vaddr: int, size: int, versioned: bool = False) -> None:
        """Map ``size`` zero bytes at ``vaddr`` (stack/heap-style region).

        The region defaults to *unversioned*: stores skip the write
        counter used for code-cache invalidation, which is safe because
        engines refuse to cache code from unversioned pages.
        """
        if size <= 0:
            return
        first = vaddr >> 12
        last = (vaddr + size - 1) >> 12
        pages = self._pages
        if all(number not in pages for number in range(first, last + 1)):
            segment = FlatSegment(
                first << 12, bytearray((last - first + 1) << 12), versioned
            )
            self._install_segment(segment)
        else:
            for number in range(first, last + 1):
                pages.setdefault(number, bytearray(PAGE_SIZE))

    def _install_segment(self, segment: FlatSegment) -> None:
        view = memoryview(segment.data)
        base_page = segment.base >> 12
        for i in range(len(segment.data) >> 12):
            number = base_page + i
            self._pages[number] = view[i << 12 : (i + 1) << 12]
            self._seg_by_page[number] = segment

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr >> 12) in self._pages

    def _page_for(self, vaddr: int, create: bool = False):
        number = vaddr >> 12
        page = self._pages.get(number)
        if page is None:
            if not create:
                raise BadMemoryAccess(f"unmapped address {vaddr:#x}")
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    # ------------------------------------------------------------------
    # Data view (loads and stores)
    # ------------------------------------------------------------------

    def read(self, vaddr: int, length: int) -> bytes:
        """Data-view read. Never sees the instruction overlay."""
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            offset = vaddr - segment.base
            if offset + length <= len(segment.data):
                self.fast_loads += 1
                return bytes(segment.data[offset : offset + length])
        self.slow_loads += 1
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = vaddr + pos
            page = self._page_for(addr)
            off = addr & PAGE_MASK
            chunk = min(length - pos, PAGE_SIZE - off)
            out[pos : pos + chunk] = page[off : off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, vaddr: int, payload: bytes) -> None:
        """Data-view write (also updates what fetch sees, unless an
        instruction-overlay byte shadows it — as on real hardware until
        the i-cache line is flushed)."""
        length = len(payload)
        if not length:
            return
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            offset = vaddr - segment.base
            if offset + length <= len(segment.data):
                self.fast_stores += 1
                segment.data[offset : offset + length] = payload
                if segment.versioned:
                    self._bump(vaddr, length)
                return
        self.slow_stores += 1
        pos = 0
        while pos < length:
            addr = vaddr + pos
            page = self._page_for(addr, create=False)
            off = addr & PAGE_MASK
            chunk = min(length - pos, PAGE_SIZE - off)
            page[off : off + chunk] = payload[pos : pos + chunk]
            pos += chunk
        self._bump(vaddr, length)

    def read_u8(self, vaddr: int) -> int:
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            self.fast_loads += 1
            return segment.data[vaddr - segment.base]
        self.slow_loads += 1
        return self._page_for(vaddr)[vaddr & PAGE_MASK]

    def write_u8(self, vaddr: int, value: int) -> None:
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            self.fast_stores += 1
            segment.data[vaddr - segment.base] = value & 0xFF
            if segment.versioned:
                self.write_epoch += 1
                number = vaddr >> 12
                self._versions[number] = self._versions.get(number, 0) + 1
            return
        self.slow_stores += 1
        self._page_for(vaddr)[vaddr & PAGE_MASK] = value & 0xFF
        self._bump(vaddr)

    def read_u16(self, vaddr: int) -> int:
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            offset = vaddr - segment.base
            if offset + 2 <= len(segment.data):
                self.fast_loads += 1
                return _U16.unpack_from(segment.data, offset)[0]
        return int.from_bytes(self.read(vaddr, 2), "little")

    def read_u32(self, vaddr: int) -> int:
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            offset = vaddr - segment.base
            if offset + 4 <= len(segment.data):
                self.fast_loads += 1
                return _U32.unpack_from(segment.data, offset)[0]
        off = vaddr & PAGE_MASK
        if off <= PAGE_SIZE - 4:  # paged fallback: within one page
            self.slow_loads += 1
            page = self._page_for(vaddr)
            return int.from_bytes(page[off : off + 4], "little")
        return int.from_bytes(self.read(vaddr, 4), "little")

    def write_u16(self, vaddr: int, value: int) -> None:
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            offset = vaddr - segment.base
            if offset + 2 <= len(segment.data):
                self.fast_stores += 1
                _U16.pack_into(segment.data, offset, value & 0xFFFF)
                if segment.versioned:
                    self._bump(vaddr, 2)
                return
        self.write(vaddr, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, vaddr: int, value: int) -> None:
        segment = self._seg_by_page.get(vaddr >> 12)
        if segment is not None:
            offset = vaddr - segment.base
            if offset + 4 <= len(segment.data):
                self.fast_stores += 1
                _U32.pack_into(segment.data, offset, value & 0xFFFFFFFF)
                if segment.versioned:
                    self._bump(vaddr, 4)
                return
        off = vaddr & PAGE_MASK
        if off <= PAGE_SIZE - 4:  # paged fallback: within one page
            self.slow_stores += 1
            page = self._page_for(vaddr)
            page[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
            self._bump(vaddr)
            return
        self.write(vaddr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # ------------------------------------------------------------------
    # Instruction view (fetch)
    # ------------------------------------------------------------------

    def fetch(self, vaddr: int, length: int) -> bytes:
        """Instruction-view read: overlay bytes shadow the unified store."""
        data = bytearray(self.read(vaddr, length))
        if self._code_overlay:
            for i in range(length):
                byte = self._code_overlay.get(vaddr + i)
                if byte is not None:
                    data[i] = byte
        return bytes(data)

    def fetch_window(self, vaddr: int, length: int = 16) -> bytes:
        """Fetch up to ``length`` bytes for decoding, clamped to mapped pages."""
        if not self._code_overlay:
            segment = self._seg_by_page.get(vaddr >> 12)
            if segment is not None:
                offset = vaddr - segment.base
                end = offset + length
                if end <= len(segment.data):
                    return bytes(segment.data[offset:end])
                if not self.is_mapped(segment.base + len(segment.data)):
                    return bytes(segment.data[offset:])
                # window continues into an adjacent mapping: slow path
        out = bytearray()
        for i in range(length):
            addr = vaddr + i
            if not self.is_mapped(addr):
                break
            out.append(self._page_for(addr)[addr & PAGE_MASK])
        if self._code_overlay:
            for i in range(len(out)):
                byte = self._code_overlay.get(vaddr + i)
                if byte is not None:
                    out[i] = byte
        return bytes(out)

    # ------------------------------------------------------------------
    # Wurster-attack hook
    # ------------------------------------------------------------------

    def patch_code_view(self, vaddr: int, payload: bytes) -> None:
        """Modify the instruction view only (the Wurster et al. primitive).

        Data reads of the same addresses keep returning the pristine
        bytes, so checksumming code computes correct checksums over
        tampered code.  The write-counter bump invalidates any decoded
        or block-compiled code spanning these addresses, so both engines
        re-fetch through the overlay.
        """
        for i, byte in enumerate(payload):
            if not self.is_mapped(vaddr + i):
                raise BadMemoryAccess(f"unmapped address {vaddr + i:#x}")
            self._code_overlay[vaddr + i] = byte
        if payload:
            self._bump(vaddr, len(payload))

    def clear_code_view(self, vaddr: Optional[int] = None, length: int = 0) -> None:
        """Drop overlay bytes (all of them, or a range)."""
        if vaddr is None:
            addrs = list(self._code_overlay)
            self._code_overlay.clear()
            for addr in addrs:
                self._bump(addr)
            return
        for addr in range(vaddr, vaddr + length):
            self._code_overlay.pop(addr, None)
        if length:
            self._bump(vaddr, length)

    @property
    def code_view_dirty(self) -> bool:
        """True while any instruction-view overlay byte is installed."""
        return bool(self._code_overlay)
