"""Instruction-level verification: µ-chains (§V-C).

Instead of translating a whole function, every data-flow instruction is
translated into its own short ROP chain, inlined into the function's
control flow (the paper's Fig. 3b).  Control flow, parameter access and
returns stay native; each µ-chain performs one operation on the live
register state and pivots back.

The paper finds this inferior to function chains — (1) the inline setup
code is easy to spot statically, (2) it cannot be encrypted or
regenerated, (3) every µ-chain pays its own prologue/epilogue, roughly
doubling the cost — and our measured numbers agree
(``benchmarks/bench_microchain_ablation.py``).  It is implemented
faithfully so the comparison is real rather than analytic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..binary import BinaryImage, Perm, Section
from ..corpus.program import Program
from ..gadgets import GadgetCatalog, find_gadgets
from ..ropc import emit_standard_gadgets, ir
from ..ropc.compiler import RopCompileError, compile_single_op
from ..ropc.nativegen import NativeCompiler
from ..x86.operands import Imm, mem32
from ..x86.registers import EDI, ESP, Register

UCHAIN_BASE = 0x08100000
UDRIVER_BASE = 0x08110000
UGADGETS_BASE = 0x08120000
UDATA_BASE = 0x08130000

#: IR op types translated to µ-chains (data flow only).
CHAIN_OPS = (
    ir.Const, ir.Mov, ir.BinOp, ir.AddConst, ir.Neg, ir.Not,
    ir.Shift, ir.Load, ir.Store,
)


class MicrochainError(Exception):
    pass


class MicrochainProtected:
    """Result of µ-chain protection."""

    def __init__(self, program: Program, image: BinaryImage,
                 chain_count: int, chain_words: int):
        self.program = program
        self.image = image
        self.chain_count = chain_count
        self.chain_words = chain_words

    def run(self, **kwargs):
        from ..emu import run_image

        kwargs.setdefault("max_steps", 100_000_000)
        return run_image(self.image, **kwargs)

    def __repr__(self) -> str:
        return (
            f"<MicrochainProtected {self.program.name}: "
            f"{self.chain_count} µ-chains, {self.chain_words} words>"
        )


def protect_microchains(
    program: Program,
    function_name: str,
    scratch: Register = EDI,
) -> MicrochainProtected:
    """Translate every data-flow op of ``function_name`` into a µ-chain.

    The function must be leaf, word-oriented, and must not use the
    ``scratch`` register.
    """
    function = program.functions.get(function_name)
    if function is None:
        raise MicrochainError(f"unknown function {function_name!r}")
    used = {reg.name for op in function.body for reg in op.regs_used()}
    if scratch.name in used:
        raise MicrochainError(
            f"{function_name} uses the µ-chain scratch register {scratch.name}"
        )
    if not function.is_leaf:
        raise MicrochainError(f"{function_name} is not a leaf function")

    image = program.image.clone()
    resume_cell = UDATA_BASE

    # -- compile one chain per data-flow op --------------------------------
    chains = []
    for op in function.body:
        if isinstance(op, CHAIN_OPS):
            chains.append((op, compile_single_op(op, resume_cell, scratch)))
        else:
            chains.append((op, None))

    # -- gadget supply ------------------------------------------------------
    catalog = GadgetCatalog(find_gadgets(image))
    required = {}
    for _op, chain in chains:
        if chain is None:
            continue
        for kind in chain.required_kinds():
            required.setdefault(kind.key(), kind)
    missing = [
        kind
        for kind in required.values()
        if not any(not g.far for g in catalog.of_kind(kind))
    ]
    if missing:
        gcode, inserted = emit_standard_gadgets(missing, UGADGETS_BASE)
        image.add_section(Section(".ugadgets", UGADGETS_BASE, gcode, Perm.RX))
        for gadget in inserted:
            catalog.add(gadget)

    # -- serialize the chains -----------------------------------------------
    blob = bytearray()
    chain_addrs: List[Optional[int]] = []
    total_words = 0
    for _op, chain in chains:
        if chain is None:
            chain_addrs.append(None)
            continue
        resolved = chain.resolve(catalog)
        addr = UCHAIN_BASE + len(blob)
        blob += resolved.to_bytes(addr)
        chain_addrs.append(addr)
        total_words += resolved.word_count
    image.add_section(Section(".uchains", UCHAIN_BASE, bytes(blob), Perm.RW))
    image.add_section(Section(".udata", UDATA_BASE, bytes(16), Perm.RW))

    # -- assemble the driver (two passes for resume addresses) ---------------
    code = _assemble_driver(function, chains, chain_addrs, resume_cell)
    image.add_section(Section(".udriver", UDRIVER_BASE, code, Perm.RX))

    # -- redirect the original entry -----------------------------------------
    symbol = image.symbols[function_name]
    rel = UDRIVER_BASE - (symbol.vaddr + 5)
    image.write(symbol.vaddr, b"\xe9" + (rel & 0xFFFFFFFF).to_bytes(4, "little"))

    chain_count = sum(1 for addr in chain_addrs if addr is not None)
    return MicrochainProtected(program, image, chain_count, total_words)


def _assemble_driver(function, chains, chain_addrs, resume_cell) -> bytes:
    """Native driver: the function's control flow with inline µ-chain
    pivots replacing each data-flow instruction (Fig. 3b)."""

    def emit(resume_addrs: Dict[int, int]) -> NativeCompiler:
        compiler = NativeCompiler(base=UDRIVER_BASE)
        asm = compiler.asm
        compiler._emit_prologue()
        for index, (op, _chain) in enumerate(chains):
            addr = chain_addrs[index]
            if addr is None:
                compiler._emit_op(function, op)
                continue
            # inline setup: push resume; record the slot; pivot
            asm.push(Imm(resume_addrs.get(index, 0), 32))
            asm.mov(mem32(disp=resume_cell), ESP)
            asm.mov(ESP, Imm(addr, 32))
            asm.ret()
            asm.label(f"__uresume_{index}")
        return compiler

    draft = emit({})
    draft.asm.assemble()
    resume_addrs = {
        index: draft.asm.address_of(f"__uresume_{index}")
        for index, addr in enumerate(chain_addrs)
        if addr is not None
    }
    final = emit(resume_addrs)
    code = final.asm.assemble()
    for index, addr in resume_addrs.items():
        assert final.asm.address_of(f"__uresume_{index}") == addr
    return code
