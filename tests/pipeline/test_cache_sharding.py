"""Sharded cache store: key-space sharding, layout migration, and the
cross-process same-key write race the serving layer depends on."""

import hashlib
import multiprocessing
import os
import pickle
import random

import pytest

from repro.cache import (
    DEFAULT_SHARDS,
    CacheManager,
    DiskTier,
    ShardedLRUTier,
    content_key,
    shard_index,
)


def keys(n, salt=""):
    return [content_key("shardtest", salt, i) for i in range(n)]


# -- shard assignment ---------------------------------------------------


def test_shard_index_is_deterministic_and_in_range():
    for key in keys(200):
        first = shard_index(key, 16)
        assert 0 <= first < 16
        assert shard_index(key, 16) == first


def test_shard_index_single_shard_is_zero():
    assert all(shard_index(key, 1) == 0 for key in keys(20))


def test_shard_index_handles_non_hex_keys():
    assert 0 <= shard_index("not-a-digest", 16) < 16
    assert shard_index("not-a-digest", 16) == shard_index("not-a-digest", 16)


def test_shard_index_spreads_keys():
    counts = [0] * 16
    for key in keys(1600):
        counts[shard_index(key, 16)] += 1
    # SHA-256 keys spread essentially uniformly; no shard should be
    # empty or grossly overloaded at 100x expected-per-shard samples.
    assert all(count > 0 for count in counts)
    assert max(counts) < 3 * (1600 // 16)


# -- sharded memory tier ------------------------------------------------


def test_sharded_lru_roundtrip_and_len():
    tier = ShardedLRUTier(max_entries=64, shards=8)
    for i, key in enumerate(keys(32)):
        tier.put(key, i)
    assert len(tier) == 32
    for i, key in enumerate(keys(32)):
        assert key in tier
        assert tier.get(key) == i
    tier.clear()
    assert len(tier) == 0


def test_sharded_lru_bounds_entries():
    tier = ShardedLRUTier(max_entries=16, shards=4)
    for i, key in enumerate(keys(400)):
        tier.put(key, i)
    # Per-shard budget is ceil(16/4) = 4, so the total stays bounded
    # by shards * per-shard = 16 no matter how many keys pass through.
    assert len(tier) <= 16


# -- sharded disk layout ------------------------------------------------


def test_disk_tier_writes_into_shard_directories(tmp_path):
    disk = DiskTier(str(tmp_path), shards=16)
    for key in keys(24):
        disk.put_blob("unit", key, pickle.dumps(key))
    for key in keys(24):
        expected = os.path.join(
            str(tmp_path), "unit", f"shard-{shard_index(key, 16):02x}",
            key + ".pkl",
        )
        assert os.path.exists(expected)
        assert disk.get_blob("unit", key) == pickle.dumps(key)
    shard_dirs = [
        d for d in os.listdir(tmp_path / "unit") if d.startswith("shard-")
    ]
    assert len(shard_dirs) > 1  # 24 keys actually spread


def _plant_legacy(root, namespace, key, blob):
    """Write an entry in the pre-shard flat layout."""
    legacy_dir = os.path.join(root, namespace, key[:2])
    os.makedirs(legacy_dir, exist_ok=True)
    with open(os.path.join(legacy_dir, key + ".pkl"), "wb") as fh:
        fh.write(blob)


def test_legacy_entries_migrate_lazily_on_read(tmp_path):
    root = str(tmp_path)
    key = content_key("legacy", 1)
    _plant_legacy(root, "unit", key, pickle.dumps("old"))
    disk = DiskTier(root, shards=16)
    assert disk.migrations == 0
    assert disk.get_blob("unit", key) == pickle.dumps("old")
    assert disk.migrations == 1
    # The entry now lives in its shard dir; the legacy copy is gone.
    assert os.path.exists(disk._path("unit", key))
    assert not os.path.exists(disk._legacy_path("unit", key))
    # Second read comes straight from the sharded path.
    assert disk.get_blob("unit", key) == pickle.dumps("old")
    assert disk.migrations == 1


def test_migrate_namespace_sweeps_flat_layout(tmp_path):
    root = str(tmp_path)
    planted = keys(20, salt="eager")
    for key in planted:
        _plant_legacy(root, "unit", key, pickle.dumps(key))
    disk = DiskTier(root, shards=16)
    assert disk.migrate_namespace("unit") == 20
    assert disk.migrations == 20
    for key in planted:
        assert os.path.exists(disk._path("unit", key))
        assert disk.get_blob("unit", key) == pickle.dumps(key)
    # Legacy prefix dirs are cleaned up; only shard dirs remain.
    leftovers = [
        d for d in os.listdir(os.path.join(root, "unit"))
        if not d.startswith("shard-")
    ]
    assert leftovers == []
    # A second sweep is a no-op.
    assert disk.migrate_namespace("unit") == 0


def test_migrate_namespace_missing_namespace_is_noop(tmp_path):
    disk = DiskTier(str(tmp_path), shards=16)
    assert disk.migrate_namespace("ghost") == 0


def test_entry_count_spans_both_layouts(tmp_path):
    root = str(tmp_path)
    disk = DiskTier(root, shards=16)
    sharded = keys(5, salt="new")
    for key in sharded:
        disk.put_blob("unit", key, b"x")
    legacy = keys(3, salt="old")
    for key in legacy:
        _plant_legacy(root, "unit", key, b"y")
    assert disk.entry_count("unit") == 8


def test_manager_single_shard_still_works(tmp_path):
    manager = CacheManager(cache_dir=str(tmp_path), shards=1)
    cache = manager.get("unit")
    cache.put("somekey", {"v": 1})
    hit, value = cache.get("somekey")
    assert hit and value == {"v": 1}
    with pytest.raises(ValueError):
        CacheManager(shards=0)


# -- cross-process same-key write race (satellite stress test) ---------


def _race_writer(args):
    root, namespace, key, worker, rounds = args
    disk = DiskTier(root, shards=DEFAULT_SHARDS)
    rng = random.Random(worker)
    for round_no in range(rounds):
        payload = {"worker": worker, "round": round_no}
        disk.put_blob(namespace, key, pickle.dumps(payload))
        if rng.random() < 0.5:
            blob = disk.get_blob(namespace, key)
            # A concurrent reader must never see a torn entry.
            assert blob is not None
            pickle.loads(blob)
    return worker


def test_cross_process_same_key_write_race(tmp_path):
    """N processes hammer ONE key with writes + reads.  Atomic-rename
    semantics must leave exactly one valid entry and never expose a
    torn blob to any reader at any point."""
    root = str(tmp_path)
    key = content_key("contended")
    workers, rounds = 4, 50
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(workers) as pool:
        done = pool.map(
            _race_writer,
            [(root, "race", key, w, rounds) for w in range(workers)],
        )
    assert sorted(done) == list(range(workers))

    disk = DiskTier(root, shards=DEFAULT_SHARDS)
    shard_dir = os.path.dirname(disk._path("race", key))
    entries = [f for f in os.listdir(shard_dir) if f.endswith(".pkl")]
    leftovers = [f for f in os.listdir(shard_dir) if f.endswith(".tmp")]
    assert entries == [key + ".pkl"]  # exactly one entry for the key
    assert leftovers == []  # every temp file was renamed or unlinked
    final = pickle.loads(disk.get_blob("race", key))
    assert final["worker"] in range(workers)
    assert final["round"] == rounds - 1  # someone's last write won


def test_cross_process_distinct_keys_all_land(tmp_path):
    """Different keys from different processes land in their shards
    without interfering."""
    root = str(tmp_path)
    per_worker = 12
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(3) as pool:
        pool.map(
            _distinct_writer,
            [(root, "spread", w, per_worker) for w in range(3)],
        )
    disk = DiskTier(root, shards=DEFAULT_SHARDS)
    assert disk.entry_count("spread") == 3 * per_worker
    for worker in range(3):
        for i in range(per_worker):
            key = content_key("spread", worker, i)
            assert pickle.loads(disk.get_blob("spread", key)) == (worker, i)


def _distinct_writer(args):
    root, namespace, worker, count = args
    disk = DiskTier(root, shards=DEFAULT_SHARDS)
    for i in range(count):
        key = content_key(namespace, worker, i)
        disk.put_blob(namespace, key, pickle.dumps((worker, i)))
