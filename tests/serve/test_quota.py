"""Token-bucket quota semantics, driven by an injected clock."""

from repro.serve.quota import QuotaManager, TokenBucket


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_bucket_burst_then_rejects_with_retry_hint():
    bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
    assert bucket.try_acquire(0.0) == 0.0
    assert bucket.try_acquire(0.0) == 0.0
    assert bucket.try_acquire(0.0) == 0.0
    wait = bucket.try_acquire(0.0)
    assert wait == 1.0  # one token refills in exactly 1s at rate=1


def test_bucket_refills_at_rate():
    bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
    assert bucket.try_acquire(0.0) == 0.0
    assert bucket.try_acquire(0.0) == 0.0
    assert bucket.try_acquire(0.0) > 0.0
    # 0.5s at 2 tokens/s refills one token.
    assert bucket.try_acquire(0.5) == 0.0
    assert bucket.try_acquire(0.5) > 0.0


def test_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
    bucket.try_acquire(0.0)
    bucket.try_acquire(0.0)
    # A long idle period must cap at burst, not accumulate unboundedly.
    assert bucket.try_acquire(100.0) == 0.0
    assert bucket.try_acquire(100.0) == 0.0
    assert bucket.try_acquire(100.0) > 0.0


def test_unlimited_rate_never_rejects():
    bucket = TokenBucket(rate=0.0, burst=1.0, now=0.0)
    assert all(bucket.try_acquire(0.0) == 0.0 for _ in range(100))
    manager = QuotaManager(rate=0.0)
    assert manager.unlimited
    assert all(manager.try_acquire("t") == 0.0 for _ in range(100))
    assert manager.tenants() == 0  # unlimited short-circuits the table


def test_manager_isolates_tenants():
    clock = FakeClock()
    manager = QuotaManager(rate=1.0, burst=1.0, clock=clock)
    assert manager.try_acquire("alice") == 0.0
    assert manager.try_acquire("alice") > 0.0
    # Bob's bucket is untouched by Alice's exhaustion.
    assert manager.try_acquire("bob") == 0.0
    assert manager.tenants() == 2


def test_manager_refill_over_time():
    clock = FakeClock()
    manager = QuotaManager(rate=2.0, burst=2.0, clock=clock)
    assert manager.try_acquire("t") == 0.0
    assert manager.try_acquire("t") == 0.0
    wait = manager.try_acquire("t")
    assert wait == 0.5
    clock.advance(wait)
    assert manager.try_acquire("t") == 0.0


def test_default_burst_is_twice_rate():
    manager = QuotaManager(rate=4.0)
    assert manager.burst == 8.0
    assert QuotaManager(rate=0.25).burst == 1.0  # floored at 1


def test_retry_after_header_rounds_up_with_floor():
    manager = QuotaManager(rate=1.0)
    assert manager.retry_after_header(0.1) == "1"
    assert manager.retry_after_header(1.0) == "1"
    assert manager.retry_after_header(1.2) == "2"
    assert manager.retry_after_header(7.9) == "8"
