"""Gadget kinds — the paper's "gadget mapping" vocabulary.

§III: "Parallax creates a gadget mapping which categorizes the available
gadgets in the binary into a set of types; for instance, memory stores
and register moves."  §V-B extends the notion: a type names not only the
operation but also its operand registers — that extended notion is what
:class:`GadgetKind` encodes, and it is what makes probabilistic chain
generation (choosing among semantic equivalents) possible.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..x86.instruction import Instruction
from ..x86.registers import Register


class GadgetOp:
    """Operation names a gadget can implement."""

    LOAD_CONST = "load_const"   # pop R; ret
    MOV_REG = "mov_reg"         # mov Rd, Rs; ret
    BINOP = "binop"             # add/sub/and/or/xor/imul Rd, Rs; ret
    LOAD_MEM = "load_mem"       # mov Rd, [Rs+disp]; ret
    STORE_MEM = "store_mem"     # mov [Rd+disp], Rs; ret
    ADD_MEM = "add_mem"         # add [Rd+disp], Rs; ret  (§IV-B6 store)
    ADD_FROM_MEM = "add_from_mem"  # add Rd, [Rs+disp]; ret
    NEG = "neg"                 # neg R; ret
    NOT = "not"                 # not R; ret
    INC = "inc"                 # inc R; ret
    DEC = "dec"                 # dec R; ret
    SHIFT = "shift"             # shl/shr/sar R, imm; ret
    SBB_SELF = "sbb_self"       # sbb R, R; ret (CF materialization)
    MOV_ESP = "mov_esp"         # mov esp, R / xchg R, esp; ret (chain branch)
    POP_ESP = "pop_esp"         # pop esp; ret (chain pivot)
    SYSCALL = "syscall"         # int 0x80; ret
    NOP = "nop"                 # ret (and harmless padding)
    BYTE_OP = "byte_op"         # classifiable 8-bit operation
    OTHER = "other"             # valid but not usable by the compiler


#: Kinds the ROP compiler can consume directly.
COMPILER_USABLE = frozenset(
    {
        GadgetOp.LOAD_CONST,
        GadgetOp.MOV_REG,
        GadgetOp.BINOP,
        GadgetOp.LOAD_MEM,
        GadgetOp.STORE_MEM,
        GadgetOp.ADD_MEM,
        GadgetOp.ADD_FROM_MEM,
        GadgetOp.NEG,
        GadgetOp.NOT,
        GadgetOp.INC,
        GadgetOp.DEC,
        GadgetOp.SHIFT,
        GadgetOp.SBB_SELF,
        GadgetOp.MOV_ESP,
        GadgetOp.POP_ESP,
        GadgetOp.SYSCALL,
        GadgetOp.NOP,
    }
)


class GadgetKind:
    """Extended gadget type: operation + operand registers + parameters.

    ``subop`` distinguishes binop flavours (``"add"``, ``"xor"``...) and
    shift directions; ``disp`` is the fixed displacement of memory kinds;
    ``amount`` is the constant shift count.
    """

    __slots__ = ("op", "dst", "src", "subop", "disp", "amount")

    def __init__(
        self,
        op: str,
        dst: Optional[Register] = None,
        src: Optional[Register] = None,
        subop: Optional[str] = None,
        disp: int = 0,
        amount: Optional[int] = None,
    ):
        self.op = op
        self.dst = dst
        self.src = src
        self.subop = subop
        self.disp = disp
        self.amount = amount

    def key(self) -> tuple:
        return (
            self.op,
            self.dst.name if self.dst else None,
            self.src.name if self.src else None,
            self.subop,
            self.disp,
            self.amount,
        )

    def __eq__(self, other) -> bool:
        return isinstance(other, GadgetKind) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        parts = [self.op]
        if self.subop:
            parts.append(self.subop)
        if self.dst is not None:
            parts.append(f"dst={self.dst.name}")
        if self.src is not None:
            parts.append(f"src={self.src.name}")
        if self.disp:
            parts.append(f"disp={self.disp:#x}")
        if self.amount is not None:
            parts.append(f"amount={self.amount}")
        return f"<Kind {' '.join(parts)}>"


class Gadget:
    """A located gadget: address, bytes, decoded instructions, semantics.

    Attributes:
        address: virtual address of the first instruction.
        instructions: decoded sequence, terminator included.
        kind: classified :class:`GadgetKind` (op may be OTHER).
        stack_words: words the gadget consumes from the stack *before*
            its terminating return pops the next gadget address (one per
            pop; the compiler must lay chain data out accordingly).
        far: terminator is ``retf`` — its return pops an extra
            code-segment word the chain must supply.
        ret_imm: stack adjustment of a ``ret imm16`` terminator.
        synthetic: True when the gadget only exists after a rewriting
            rule is applied (candidate, not yet present in the bytes).
    """

    __slots__ = (
        "address",
        "instructions",
        "kind",
        "stack_words",
        "far",
        "ret_imm",
        "synthetic",
        "provenance",
    )

    def __init__(
        self,
        address: int,
        instructions: Tuple[Instruction, ...],
        kind: GadgetKind,
        stack_words: int = 0,
        far: bool = False,
        ret_imm: int = 0,
        synthetic: bool = False,
        provenance: str = "existing",
    ):
        self.address = address
        self.instructions = tuple(instructions)
        self.kind = kind
        self.stack_words = stack_words
        self.far = far
        self.ret_imm = ret_imm
        self.synthetic = synthetic
        self.provenance = provenance

    @property
    def length(self) -> int:
        """Total byte length of the gadget."""
        return sum(i.length for i in self.instructions)

    @property
    def end(self) -> int:
        return self.address + self.length

    @property
    def usable(self) -> bool:
        """Can the ROP compiler emit this gadget into a chain?"""
        return self.kind.op in COMPILER_USABLE

    def span(self) -> range:
        """Code byte addresses this gadget covers (protects)."""
        return range(self.address, self.end)

    def text(self) -> str:
        return "; ".join(i.text() for i in self.instructions)

    def __repr__(self) -> str:
        return f"<Gadget @{self.address:#x} [{self.text()}] {self.kind!r}>"
