"""Telemetry: metrics registry, structured tracing, chain introspection.

Process-wide accessors::

    from repro.telemetry import get_metrics, get_tracer, configure

    configure(metrics=True, tracing=True)   # both start disabled
    with get_tracer().span("protect", program="wget"):
        get_metrics().counter("protect.runs").inc()

The default registry, tracer, and flight recorder start **disabled**:
every instrument accessor returns a shared null object, every span is
the shared null span, and :meth:`FlightRecorder.record` returns
immediately — so instrumented code costs one function call on the cold
paths and literally nothing on the emulator's per-step hot path (hooks
are only installed when a tracer is enabled).  :func:`configure` flips
any side on; :func:`telemetry_session` scopes that to a ``with`` block
and restores the previous state afterwards.

Request scoping: when a :class:`TelemetryContext` is active on the
current thread/task, :func:`get_metrics`, :func:`get_tracer` and
:func:`get_recorder` return its label-scoped child objects instead of
the globals; the context merges everything back into the globals under
its labels on exit (see :mod:`repro.telemetry.context`).

Exporters live in :mod:`repro.telemetry.export`: Chrome trace-event
JSON from the tracer, Prometheus text from the registry, and the
``repro stats`` / ``repro top`` dashboards over exported (or live)
artifacts.  Rolling-window aggregation for live views lives in
:mod:`repro.telemetry.windows`; the enabled-overhead self-accounting
and budget checks in :mod:`repro.telemetry.overhead`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .chains import ChainExecutionTracer, ChainStep, trace_chain_run
from .context import (
    TelemetryContext,
    clear_context,
    current_context,
    current_labels,
    current_task_telemetry,
    suspend_context,
    task_telemetry,
    telemetry_context,
)
from .export import (
    ARTIFACT_KINDS,
    chrome_trace,
    load_artifact,
    prometheus_text,
    render_stats,
    write_chrome_trace,
    write_prometheus,
)
from .metrics import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from .overhead import (
    OverheadReport,
    measure_overhead,
    publish_overhead,
    self_accounting,
)
from .recorder import FlightRecorder, get_recorder, set_recorder
from .tracing import Span, Tracer
from .windows import RollingWindow, WindowSet

__all__ = [
    "Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "Span", "Tracer",
    "FlightRecorder", "get_recorder", "set_recorder",
    "ChainStep", "ChainExecutionTracer", "trace_chain_run",
    "TelemetryContext", "telemetry_context", "current_context",
    "current_labels", "suspend_context", "clear_context",
    "task_telemetry", "current_task_telemetry",
    "RollingWindow", "WindowSet",
    "OverheadReport", "measure_overhead", "publish_overhead",
    "self_accounting",
    "chrome_trace", "write_chrome_trace",
    "prometheus_text", "write_prometheus",
    "ARTIFACT_KINDS", "load_artifact", "render_stats",
    "get_metrics", "set_metrics", "get_tracer", "set_tracer",
    "configure", "disable", "telemetry_session",
]

_metrics = MetricsRegistry(enabled=False)
_tracer = Tracer(enabled=False)


def _global_metrics() -> MetricsRegistry:
    """The process-wide registry, ignoring any active context."""
    return _metrics


def _global_tracer() -> Tracer:
    """The process-wide tracer, ignoring any active context."""
    return _tracer


def get_metrics() -> MetricsRegistry:
    """The task override's registry, else the active context's, else
    the process-wide one (disabled until configured)."""
    task = current_task_telemetry()
    if task is not None and task.metrics is not None:
        return task.metrics
    ctx = current_context()
    return ctx.metrics if ctx is not None else _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    global _metrics
    previous, _metrics = _metrics, registry
    return previous


def get_tracer() -> Tracer:
    """The task override's tracer, else the active context's, else the
    process-wide one (disabled until configured)."""
    task = current_task_telemetry()
    if task is not None and task.tracer is not None:
        return task.tracer
    ctx = current_context()
    return ctx.tracer if ctx is not None else _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def configure(
    metrics: Optional[bool] = None,
    tracing: Optional[bool] = None,
    recorder: Optional[bool] = None,
) -> None:
    """Enable/disable the process-wide telemetry objects in place.

    ``None`` leaves that side untouched.  Enabling an already-populated
    registry keeps its instruments; use ``get_metrics().reset()`` for a
    clean slate (likewise ``get_recorder().clear()``).
    """
    from .recorder import _recorder

    if metrics is not None:
        _metrics.enabled = metrics
    if tracing is not None:
        _tracer.enabled = tracing
    if recorder is not None:
        _recorder.enabled = recorder


def disable() -> None:
    configure(metrics=False, tracing=False, recorder=False)


@contextmanager
def telemetry_session(
    metrics: bool = True,
    tracing: bool = True,
    recorder: bool = False,
    recorder_capacity: Optional[int] = None,
):
    """Fresh, enabled registry + tracer (+ optional flight recorder)
    for the duration of the block.

    Yields ``(MetricsRegistry, Tracer)``; the previous process-wide
    objects (and their enabled state) are restored on exit.  When
    ``recorder`` is true a fresh :class:`FlightRecorder` is installed
    for the block too — fetch it with :func:`get_recorder` — sized
    ``recorder_capacity`` events (default: ``REPRO_RECORDER_EVENTS``
    or 8192).
    """
    new_metrics = MetricsRegistry(enabled=metrics)
    new_tracer = Tracer(enabled=tracing)
    old_metrics = set_metrics(new_metrics)
    old_tracer = set_tracer(new_tracer)
    old_recorder = (
        set_recorder(FlightRecorder(capacity=recorder_capacity, enabled=True))
        if recorder
        else None
    )
    try:
        yield new_metrics, new_tracer
    finally:
        set_metrics(old_metrics)
        set_tracer(old_tracer)
        if old_recorder is not None:
            set_recorder(old_recorder)
