"""Applying the immediate rule end to end: split constants, rebuild the
program, confirm behaviour is preserved AND new gadgets exist where the
rule planted them."""

import pytest

from repro.corpus import build_gzip
from repro.corpus.program import Program
from repro.gadgets import find_gadgets_in_bytes
from repro.rewrite import ImmediateSplitter
from repro.ropc import ir


@pytest.fixture(scope="module")
def split_pair():
    original = build_gzip(blocks=1, positions=4)
    splitter = ImmediateSplitter(byte_index=0)
    functions = []
    for name, function in original.functions.items():
        if name == "checksum_words":
            functions.append(splitter.transform(function))
        else:
            clone = ir.IRFunction(name, function.params, list(function.body))
            functions.append(clone)
    rebuilt = Program(
        "gzip-split", functions, original.rodata, original.data,
        options=original.options, candidates=original.candidates,
    )
    return original, rebuilt


def test_split_program_behaviour_identical(split_pair):
    original, rebuilt = split_pair
    a, b = original.run(), rebuilt.run()
    assert not b.crashed
    assert a.stdout == b.stdout
    assert a.exit_status == b.exit_status


def test_split_function_grew_and_carries_ret_bytes(split_pair):
    original, rebuilt = split_pair
    before = original.image.symbols["checksum_words"]
    after = rebuilt.image.symbols["checksum_words"]
    assert after.size > before.size  # paper: splitting costs a little
    body = rebuilt.image.read(after.vaddr, after.size)
    assert body.count(0xC3) > original.image.read(
        before.vaddr, before.size
    ).count(0xC3)


def test_split_creates_new_gadgets(split_pair):
    original, rebuilt = split_pair

    def gadgets_in(program, name):
        symbol = program.image.symbols[name]
        data = program.image.read(symbol.vaddr, symbol.size)
        return find_gadgets_in_bytes(data, base=symbol.vaddr)

    assert len(gadgets_in(rebuilt, "checksum_words")) > len(
        gadgets_in(original, "checksum_words")
    )
