"""BinaryImage, sections, symbols, patches."""

import pytest

from repro.binary import BinaryImage, Patch, PatchSet, Perm, Section


@pytest.fixture()
def image():
    img = BinaryImage("t")
    img.add_section(Section(".text", 0x1000, b"\x90" * 64, Perm.RX))
    img.add_section(Section(".data", 0x2000, b"\x00" * 32, Perm.RW))
    img.add_function("f", 0x1000, 16)
    img.add_function("g", 0x1010, 16)
    return img


def test_section_lookup(image):
    assert image.section(".text").executable
    assert not image.section(".data").executable
    assert image.section_at(0x1005).name == ".text"
    assert image.section_at(0x3000) is None
    with pytest.raises(KeyError):
        image.section(".bss")


def test_overlapping_sections_rejected(image):
    with pytest.raises(ValueError):
        image.add_section(Section(".evil", 0x1020, b"x", Perm.R))


def test_read_write_u32(image):
    image.write_u32(0x2000, 0xDEADBEEF)
    assert image.read_u32(0x2000) == 0xDEADBEEF
    with pytest.raises(IndexError):
        image.read(0x1FFF, 8)  # straddles a hole


def test_symbol_at(image):
    assert image.symbols.at(0x1008).name == "f"
    assert image.symbols.at(0x1010).name == "g"
    assert image.symbols.at(0x10FF) is None


def test_clone_is_deep(image):
    clone = image.clone()
    clone.write(0x1000, b"\xcc")
    assert image.read(0x1000, 1) == b"\x90"


def test_patch_apply_revert(image):
    patch = Patch(0x1000, b"\x90\x90", b"\xcc\xcc")
    patch.apply(image)
    assert image.read(0x1000, 2) == b"\xcc\xcc"
    patch.revert(image)
    assert image.read(0x1000, 2) == b"\x90\x90"


def test_patch_mismatch_detected(image):
    patch = Patch(0x1000, b"\xff", b"\xcc")
    with pytest.raises(ValueError):
        patch.apply(image)


def test_patchset_conflicts(image):
    patches = PatchSet()
    patches.add(Patch(0x1000, b"\x90\x90", b"\xcc\xcc"))
    with pytest.raises(ValueError):
        patches.add(Patch(0x1001, b"\x90", b"\xcc"))
    assert patches.conflicts(Patch(0x1001, b"\x90", b"\xcc"))
    patches.add(Patch(0x1004, b"\x90", b"\xcc"))
    patches.apply(image)
    patches.revert(image)
    assert image.read(0x1000, 8) == b"\x90" * 8


def test_patch_must_preserve_length():
    with pytest.raises(ValueError):
        Patch(0, b"\x90", b"\xcc\xcc")
