"""Parallax: implicit code integrity verification using ROP.

Reproduction of Andriesse, Bos & Slowinska, DSN 2015.  The package is
layered bottom-up:

* :mod:`repro.x86` — IA-32 assembler/disassembler substrate;
* :mod:`repro.binary` — image container, symbols, reversible patches;
* :mod:`repro.emu` — emulator with split I/D memory views and a
  return-predictor cost model;
* :mod:`repro.gadgets` — gadget discovery and the typed gadget mapping;
* :mod:`repro.ropc` — IR, native code generator, ROP chain compiler;
* :mod:`repro.rewrite` — the §IV-B rewriting rules and Fig. 6 analysis;
* :mod:`repro.core` — the Parallax protector itself;
* :mod:`repro.corpus` — the six synthetic evaluation programs;
* :mod:`repro.attacks` / :mod:`repro.baselines` — adversaries and the
  checksumming / oblivious-hashing comparison points.

Quickstart::

    from repro import build_program, Parallax, ProtectConfig

    program = build_program("wget")
    protected = Parallax(ProtectConfig(strategy="rc4")).protect(program)
    result = protected.run()
    assert result.stdout == program.run().stdout
"""

from .core import (
    Parallax,
    ProtectConfig,
    ProtectedProgram,
    STRATEGIES,
    protect_program,
    select_verification_function,
)
from .corpus import PROGRAM_NAMES, build_all, build_program
from .emu import Emulator, RunResult, run_image
from .rewrite import RewriteEngine, format_fig6_table

__version__ = "1.0.0"

__all__ = [
    "Parallax",
    "ProtectConfig",
    "ProtectedProgram",
    "STRATEGIES",
    "protect_program",
    "select_verification_function",
    "PROGRAM_NAMES",
    "build_all",
    "build_program",
    "Emulator",
    "RunResult",
    "run_image",
    "RewriteEngine",
    "format_fig6_table",
    "__version__",
]
