"""The Wurster et al. instruction-cache modification attack.

The attack (a kernel patch in the original work) lets an adversary
modify the *instruction* view of memory while data reads keep returning
pristine bytes.  Checksumming self-verification reads code as data, so
it computes correct checksums over tampered code — completely defeated.

Parallax is immune: its verification chains *execute* the protected
bytes (the gadgets), and execution uses the instruction view, so the
tampered bytes are exactly what the chain trips over.

Implemented on top of :meth:`repro.emu.memory.Memory.patch_code_view`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..emu import (
    Emulator,
    EmulationError,
    OperatingSystem,
    RunResult,
    TamperWatch,
)
from ..emu.syscalls import ExitProgram
from .harness import AttackOutcome, patch_ranges, score_run


def _run_icache(
    image: BinaryImage,
    patches: Iterable[Patch],
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
) -> Tuple[RunResult, TamperWatch]:
    patches = list(patches)
    os = OperatingSystem(debugger_attached=debugger_attached)
    emulator = Emulator(image, os=os, max_steps=max_steps, engine=engine)
    for patch in patches:
        emulator.memory.patch_code_view(patch.vaddr, patch.new)
    watch = TamperWatch(patch_ranges(patches))
    emulator.tamper_watch = watch
    return emulator.run(), watch


def run_with_icache_patches(
    image: BinaryImage,
    patches: Iterable[Patch],
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
) -> RunResult:
    """Run ``image`` with ``patches`` applied to the instruction view only.

    Data reads (and therefore any checksumming code) see the original
    bytes; fetch sees the tampered ones.
    """
    run, _ = _run_icache(
        image,
        patches,
        debugger_attached=debugger_attached,
        max_steps=max_steps,
        engine=engine,
    )
    return run


def evaluate_wurster_attack(
    image: BinaryImage,
    patches: Iterable[Patch],
    goal: RunResult,
    attack_name: str = "wurster",
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
    rule: Optional[str] = None,
) -> AttackOutcome:
    """Score the I-cache attack against ``goal`` behaviour.

    The code view is patched before entry, so ``tamper_cycles`` is 0.
    """
    run, watch = _run_icache(
        image,
        patches,
        debugger_attached=debugger_attached,
        max_steps=max_steps,
        engine=engine,
    )
    return score_run(
        attack_name,
        run,
        goal,
        tamper_cycles=0,
        corruption_cycles=watch.hit_cycles,
        rule=rule,
    )
