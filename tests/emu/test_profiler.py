"""Per-function cycle attribution."""

from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator, Profiler, profile_run
from repro.x86 import Assembler, EAX


def test_profiler_attributes_functions(small_wget):
    result, profiler = profile_run(small_wget.image)
    assert not result.crashed
    assert profiler.total_cycles > 0
    shares = {
        name: profiler.time_fraction(name) for name in small_wget.functions
    }
    # the bulk work dominates, the digest is cheap
    assert shares["checksum_words"] > shares["digest_wget"]
    assert abs(sum(profiler.time_fraction(p.name) for p in profiler.profiles.values()) - 1.0) < 1e-9
    assert profiler.call_count("digest_wget") >= 2
    assert "function" in profiler.report()


def _call_graph_image():
    """main calls helper twice + one symbol-less target; alt calls helper."""
    a = Assembler(base=0x1000)
    a.label("main")
    a.call("helper")
    a.call("helper")
    a.call("nosym")
    a.ret()
    a.label("alt")
    a.call("helper")
    a.ret()
    a.label("helper")
    a.mov(EAX, 1)
    a.ret()
    a.label("nosym")  # deliberately gets no symbol table entry
    a.mov(EAX, 2)
    a.ret()
    image = BinaryImage("callgraph")
    image.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
    bounds = {name: a.address_of(name) for name in ("main", "alt", "helper", "nosym")}
    image.add_function("main", bounds["main"], bounds["alt"] - bounds["main"])
    image.add_function("alt", bounds["alt"], bounds["helper"] - bounds["alt"])
    image.add_function("helper", bounds["helper"], bounds["nosym"] - bounds["helper"])
    return image, bounds


def test_call_to_symbolless_code_counts_as_unknown():
    # Regression: calls whose target has no symbol used to be silently
    # dropped from both the callee profile and the call-edge counter.
    image, bounds = _call_graph_image()
    emulator = Emulator(image, max_steps=10_000)
    profiler = Profiler(image)
    profiler.attach(emulator)
    emulator.call_function(bounds["main"])
    assert profiler.call_count("<unknown>") == 1
    assert profiler.call_edges[("main", "<unknown>")] == 1
    assert profiler.call_count("helper") == 2


def test_callers_of_deduplicates_by_caller():
    image, bounds = _call_graph_image()
    emulator = Emulator(image, max_steps=10_000)
    profiler = Profiler(image)
    profiler.attach(emulator)
    emulator.call_function(bounds["main"])  # helper called twice from main
    assert profiler.callers_of("helper") == 1
    emulator.call_function(bounds["alt"])   # second distinct caller
    assert profiler.callers_of("helper") == 2
    assert profiler.callers_of("<unknown>") == 1
    assert profiler.callers_of("never_called") == 0
