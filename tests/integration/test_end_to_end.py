"""End-to-end reproduction of the paper's security claims."""

import pytest

from repro.attacks import (
    evaluate_patch_attack,
    evaluate_wurster_attack,
    nop_out,
    run_with_restore_attack,
    stub_out_function,
)
from repro.baselines import ChecksummedProgram
from repro.binary import Patch
from repro.core import Parallax, ProtectConfig
from repro.corpus import build_gzip

COLD_FUNCTION = "gz_fill_005"


@pytest.fixture(scope="module")
def setting():
    program = build_gzip(blocks=2, positions=6)
    goal = program.run()
    cold = program.image.symbols[COLD_FUNCTION]
    parallax = Parallax(
        ProtectConfig(
            strategy="cleartext",
            verification_functions=["digest_gzip"],
            protect_addresses=list(range(cold.vaddr, cold.end)),
        )
    ).protect(program)
    checksummed = ChecksummedProgram(build_gzip(blocks=2, positions=6), guards=3)
    return program, goal, parallax, checksummed


def cold_patch(image, protected=None):
    symbol = image.symbols[COLD_FUNCTION]
    if protected is not None:
        addr = next(
            a
            for a in protected.report.chains[0].gadget_addresses
            if symbol.vaddr <= a < symbol.end
        )
    else:
        addr = symbol.vaddr + 8
    old = image.read(addr, 1)
    return Patch(addr, old, bytes([old[0] ^ 0xFF]))


def test_cold_tamper_invisible_without_protection(setting):
    program, goal, _, _ = setting
    outcome = evaluate_patch_attack(
        program.image, [cold_patch(program.image)], goal, "plain"
    )
    assert not outcome.detected


def test_checksumming_detects_static_but_not_wurster(setting):
    _, goal, _, checksummed = setting
    patch = cold_patch(checksummed.image)
    static = evaluate_patch_attack(checksummed.image, [patch], goal, "csum")
    assert static.detected and static.run.exit_status == 66
    wurster = evaluate_wurster_attack(checksummed.image, [patch], goal, "csum")
    assert not wurster.detected  # the Wurster result


def test_parallax_detects_both(setting):
    _, goal, parallax, _ = setting
    patch = cold_patch(parallax.image, parallax)
    static = evaluate_patch_attack(parallax.image, [patch], goal, "parallax")
    assert static.detected
    wurster = evaluate_wurster_attack(parallax.image, [patch], goal, "parallax")
    assert wurster.detected  # immune to the i-cache split


def test_restore_attack_window(setting):
    """§VI-A: a fast restore wins; a slow one overlaps a chain run."""
    _, goal, parallax, _ = setting
    patch = cold_patch(parallax.image, parallax)
    trigger = parallax.image.entry

    fast = run_with_restore_attack(
        parallax.image, patch, trigger, restore_after_steps=50
    )
    assert not fast.crashed and fast.stdout == goal.stdout

    slow = run_with_restore_attack(
        parallax.image, patch, trigger, restore_after_steps=10_000_000
    )
    assert slow.crashed or slow.stdout != goal.stdout


def test_reconstruction_attack_is_the_admitted_limit(setting):
    """§VI-B: fully re-creating the verification function natively works
    (and silently removes the protection) — the reason the paper layers
    checksumming over the data-resident chains."""
    from repro.attacks import reconstruct_function_patch

    _, goal, parallax, _ = setting
    patch = reconstruct_function_patch(parallax, "digest_gzip")
    outcome = evaluate_patch_attack(parallax.image, [patch], goal, "reconstruct")
    assert not outcome.detected
