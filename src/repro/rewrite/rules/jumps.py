"""Rule 3: rearranged code and data — gadgets inside jump offsets and
address literals (§IV-B3).

Branch displacements are just bytes; by realigning the branch target
(padding functions, shuffling layout) Parallax can force a displacement
byte to equal the ``ret`` opcode, completing a partial gadget that
begins in the preceding instruction bytes.  Listing 1 does exactly this
with the ``jmp cleanup_and_exit`` offset.

Feasibility model: the low displacement byte of any rel8/rel32 branch
is freely choosable (moving the target by < 256 bytes is always within
the layout engine's padding budget); higher rel32 bytes would need
64 KiB+ moves and are not considered.  §VII-A applies the rule to all
jmp/jcc variants and call.

The planted byte can serve two roles: it can *be* the gadget's return
opcode (as in Listing 1, where the jump offset is forced to 0xc3), or
it can be body material of a longer gadget whose return lies in the
following real instructions (typically a function epilogue's ret).  The
rule tries a small set of connector byte values for the second role.

§IV-B3 also covers *data* rearrangement: an imm32 whose value is the
address of a global variable is as controllable as a branch
displacement — moving the variable rewrites all four bytes.  The rule
therefore treats address-valued immediates (values landing in
non-executable sections) as plantable sites too; this is what makes it
the widest-reaching rule in the paper's Fig. 6.
"""

from __future__ import annotations

from typing import List, Optional

from ...binary.image import BinaryImage
from ...gadgets.types import Gadget
from ..fieldsearch import best_field_gadget, coverage_for_fields
from ...x86.decoder import decode_all
from ...x86.instruction import CONDITIONAL_JUMPS, Instruction
from ...x86.opcodes import RET_OPCODE
from ...x86.operands import Imm, Rel
from ..report import ProtectabilityReport, RULE_JUMP

_ELIGIBLE = CONDITIONAL_JUMPS | {"jmp", "call"}

#: Byte values tried in the displacement's low byte.  0xc3 terminates a
#: gadget on the spot; the others are single-byte connector opcodes
#: (nop, pop r32) that let a longer gadget decode *through* the offset
#: byte and terminate at a later, real return.
PLANT_VALUES = (0xC3, 0x90, 0x58, 0x59, 0x5A, 0x5B, 0x5E, 0x5F)


class JumpCandidate:
    """A branch whose displacement byte can host gadget material."""

    __slots__ = ("insn", "gadget", "required_shift", "planted")

    def __init__(
        self, insn: Instruction, gadget: Gadget, required_shift: int, planted: int
    ):
        self.insn = insn
        self.gadget = gadget
        #: how far the branch target must move for the low displacement
        #: byte to take the planted value (signed, in bytes)
        self.required_shift = required_shift
        #: the byte value planted into the displacement
        self.planted = planted

    @property
    def patch_addr(self) -> int:
        return self.insn.address + self.insn.imm_offset

    def __repr__(self) -> str:
        return (
            f"<JumpCandidate {self.insn!r} shift {self.required_shift:+d} "
            f"-> gadget @{self.gadget.address:#x}>"
        )


def _signed_shift(delta: int) -> int:
    """Normalize a byte-value change to the smaller signed target move."""
    delta %= 256
    return delta - 256 if delta > 127 else delta


class JumpOffsetRule:
    """Finds branch displacements that can host a return opcode."""

    name = RULE_JUMP

    def __init__(self, max_insns: int = 6):
        self.max_insns = max_insns

    def find(self, image: BinaryImage) -> List[JumpCandidate]:
        data_ranges = [
            (sec.vaddr, sec.end)
            for sec in image.sections
            if not sec.executable
        ]

        def is_data_address(value: int) -> bool:
            return any(lo <= value < hi for lo, hi in data_ranges)

        candidates: List[JumpCandidate] = []
        for section in image.executable_sections():
            data = bytearray(section.data)
            base = section.vaddr
            instructions = decode_all(bytes(data), address=base, stop_on_error=True)
            for insn in instructions:
                if insn.imm_offset is None:
                    continue
                if insn.mnemonic in _ELIGIBLE and isinstance(insn.operands[0], Rel):
                    rel = insn.operands[0]
                    width_bytes = rel.width // 8
                elif (
                    insn.operands
                    and isinstance(insn.operands[-1], Imm)
                    and insn.operands[-1].width == 32
                    and is_data_address(insn.operands[-1].value)
                ):
                    # Address literal: the pointed-to global can move, so
                    # all four bytes are plantable.
                    width_bytes = 4
                else:
                    continue
                field_start = insn.address - base + insn.imm_offset
                crafted = best_field_gadget(
                    bytes(data), base, field_start, width_bytes, self.max_insns
                )
                if crafted is None:
                    continue
                crafted.gadget.provenance = "jump_mod"
                ret_index = max(crafted.planted)
                original = data[field_start + ret_index]
                candidates.append(
                    JumpCandidate(
                        insn,
                        crafted.gadget,
                        _signed_shift(RET_OPCODE - original),
                        RET_OPCODE,
                    )
                )
        return candidates

    def fields(self, image: BinaryImage, data: bytes, base: int):
        """(offset, width) of every displacement / address-literal field."""
        data_ranges = [
            (sec.vaddr, sec.end) for sec in image.sections if not sec.executable
        ]

        def is_data_address(value: int) -> bool:
            return any(lo <= value < hi for lo, hi in data_ranges)

        out = []
        for insn in decode_all(data, address=base, stop_on_error=True):
            if insn.imm_offset is None:
                continue
            if insn.mnemonic in _ELIGIBLE and isinstance(insn.operands[0], Rel):
                width = insn.operands[0].width // 8
            elif (
                insn.operands
                and isinstance(insn.operands[-1], Imm)
                and insn.operands[-1].width == 32
                and is_data_address(insn.operands[-1].value)
            ):
                width = 4
            else:
                continue
            out.append((insn.address - base + insn.imm_offset, width))
        return out

    def measure(
        self, image: BinaryImage, report: ProtectabilityReport
    ) -> List[JumpCandidate]:
        candidates = self.find(image)
        coverage = report.rule(self.name)
        for candidate in candidates:
            coverage.add_span(candidate.gadget.span(), candidate=candidate)
        # Field-composition coverage across displacements and address
        # literals (rearranged code *and data*, §IV-B3).
        for section in image.executable_sections():
            data = bytes(section.data)
            base = section.vaddr
            covered, spans = coverage_for_fields(
                data, base, self.fields(image, data, base), self.max_insns
            )
            coverage.bytes.update(base + off for off in covered)
            coverage.candidates.extend(spans)
        return candidates
