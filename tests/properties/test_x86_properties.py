"""Property-based tests on the ISA substrate."""

from hypothesis import given, settings, strategies as st

from repro.x86 import (
    DecodeError, GP32, Imm, decode, assemble, to_signed, to_unsigned,
)

regs32 = st.sampled_from([r for r in GP32 if r.name != "esp"])


@given(st.integers(0, 0xFFFFFFFF), st.sampled_from([8, 16, 32]))
def test_signed_unsigned_roundtrip(value, width):
    value &= (1 << width) - 1
    assert to_unsigned(to_signed(value, width), width) == value


@given(regs32, st.integers(0, 0xFFFFFFFF))
def test_mov_imm_roundtrip(reg, value):
    encoded = assemble("mov", reg, Imm(value, 32))
    insn = decode(encoded, 0)
    assert insn.mnemonic == "mov"
    assert insn.operands[0] is reg
    assert insn.operands[1].value == value


@given(regs32, regs32, st.sampled_from(["add", "sub", "xor", "and", "or", "cmp"]))
def test_arith_rr_roundtrip(dst, src, mnemonic):
    encoded = assemble(mnemonic, dst, src)
    insn = decode(encoded, 0)
    assert insn.mnemonic == mnemonic
    assert insn.operands == (dst, src)


@settings(max_examples=300)
@given(st.binary(min_size=1, max_size=16))
def test_decoder_never_crashes(data):
    """Arbitrary bytes either decode or raise DecodeError — nothing else."""
    try:
        insn = decode(data, 0)
    except DecodeError:
        return
    assert 1 <= insn.length <= len(data)


@settings(max_examples=100)
@given(st.binary(min_size=1, max_size=40))
def test_gadget_finder_total(data):
    """The finder terminates and returns well-formed gadgets on noise."""
    from repro.gadgets import find_gadgets_in_bytes
    for gadget in find_gadgets_in_bytes(bytes(data), base=0):
        assert gadget.instructions[-1].is_return
        assert gadget.length >= 1
