"""Code-restore and verification-replacement attack mechanics."""

import pytest

from repro.attacks import (
    garbage_chain_patch,
    reconstruct_function_patch,
    run_with_restore_attack,
    wipe_chain_patch,
)
from repro.binary import Patch


def test_restore_attack_applies_and_reverts(protected_wget_cleartext,
                                            small_wget_baseline):
    protected = protected_wget_cleartext
    # pick a used in-text gadget byte
    image = protected.image
    addr = next(
        a for a in protected.report.chains[0].gadget_addresses
        if image.section_at(a).name == ".text"
    )
    old = image.read(addr, 1)
    patch = Patch(addr, old, bytes([old[0] ^ 0xFF]))

    # immediate restore: window too small to overlap a chain call
    fast = run_with_restore_attack(image, patch, image.entry, 5)
    assert not fast.crashed
    assert fast.stdout == small_wget_baseline.stdout

    # never restoring is equivalent to the static attack: caught
    slow = run_with_restore_attack(image, patch, image.entry, 10**9)
    assert slow.crashed or slow.stdout != small_wget_baseline.stdout


def test_reconstruction_patch_fits_and_runs(protected_wget_cleartext,
                                            small_wget_baseline):
    patch = reconstruct_function_patch(protected_wget_cleartext, "digest_wget")
    image = protected_wget_cleartext.image.clone()
    patch.apply(image)
    result = protected_wget_cleartext.run(image=image)
    assert not result.crashed
    assert result.stdout == small_wget_baseline.stdout  # §VI-B limit


def test_wipe_and_garbage_patches_shape(protected_wget_cleartext):
    wipe = wipe_chain_patch(protected_wget_cleartext)
    assert set(wipe.new) == {0}
    garbage = garbage_chain_patch(protected_wget_cleartext)
    assert len(garbage.new) == len(garbage.old)
    assert garbage.new != garbage.old
