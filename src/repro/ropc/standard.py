"""Emission of standard (non-overlapping) gadgets.

§III: "we do not require the inserted overlapping gadgets to form a
Turing-complete set ... If not, a standard set of non-overlapping
gadgets can be inserted into the binary to augment the protective
gadgets already inserted."

Given the kinds a chain requires but the catalog lacks, this module
assembles one real gadget per missing kind.  The pipeline appends the
bytes as a ``.gadgets`` section and registers them in the catalog.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..gadgets.semantics import classify
from ..gadgets.types import Gadget, GadgetKind, GadgetOp
from ..x86.asm import Assembler
from ..x86.decoder import decode_all
from ..x86.operands import Imm, mem8, mem32
from ..x86.registers import ESP


class StandardGadgetError(Exception):
    pass


def _emit_kind(asm: Assembler, kind: GadgetKind) -> None:
    op = kind.op
    if op == GadgetOp.LOAD_CONST:
        asm.pop(kind.dst)
    elif op == GadgetOp.MOV_REG:
        asm.mov(kind.dst, kind.src)
    elif op == GadgetOp.BINOP:
        mnemonic = "imul" if kind.subop == "imul" else kind.subop
        asm.emit(mnemonic, kind.dst, kind.src)
    elif op == GadgetOp.LOAD_MEM:
        asm.mov(kind.dst, mem32(kind.src, disp=kind.disp))
    elif op == GadgetOp.STORE_MEM:
        asm.mov(mem32(kind.dst, disp=kind.disp), kind.src)
    elif op == GadgetOp.ADD_MEM:
        asm.add(mem32(kind.dst, disp=kind.disp), kind.src)
    elif op == GadgetOp.ADD_FROM_MEM:
        asm.add(kind.dst, mem32(kind.src, disp=kind.disp))
    elif op == GadgetOp.NEG:
        asm.neg(kind.dst)
    elif op == GadgetOp.NOT:
        asm.not_(kind.dst)
    elif op == GadgetOp.INC:
        asm.inc(kind.dst)
    elif op == GadgetOp.DEC:
        asm.dec(kind.dst)
    elif op == GadgetOp.SHIFT:
        asm.emit(kind.subop, kind.dst, Imm(kind.amount, 8))
    elif op == GadgetOp.SBB_SELF:
        asm.sbb(kind.dst, kind.dst)
    elif op == GadgetOp.MOV_ESP:
        asm.mov(ESP, kind.src)
    elif op == GadgetOp.POP_ESP:
        asm.pop(ESP)
    elif op == GadgetOp.SYSCALL:
        asm.int(0x80)
    elif op == GadgetOp.NOP:
        pass
    else:
        raise StandardGadgetError(f"cannot emit a standard gadget for {kind!r}")
    asm.ret()


def emit_standard_gadgets(
    kinds: Iterable[GadgetKind], base: int
) -> Tuple[bytes, List[Gadget]]:
    """Assemble one gadget per kind at ``base``.

    Returns the code bytes and the classified :class:`Gadget` records
    (classified by the real classifier, so catalog entries built from
    inserted gadgets are exactly as trustworthy as discovered ones).
    """
    kinds = list(kinds)
    asm = Assembler(base=base)
    starts = []
    for kind in kinds:
        starts.append(asm.offset)
        _emit_kind(asm, kind)
    code = asm.assemble()

    gadgets = []
    for i, (start, kind) in enumerate(zip(starts, kinds)):
        end = starts[i + 1] if i + 1 < len(starts) else len(code)
        instructions = decode_all(code[start:end], address=base + start)
        gadget = classify(instructions)
        if gadget is None or gadget.kind != kind:
            raise StandardGadgetError(
                f"emitted gadget for {kind!r} classified as "
                f"{gadget.kind if gadget else None!r}"
            )
        gadget.provenance = "standard"
        gadget.synthetic = True
        gadgets.append(gadget)
    return code, gadgets
