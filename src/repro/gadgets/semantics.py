"""Gadget semantic classification.

Given a decoded instruction sequence ending in ``ret``/``retf``, decide
what operation the gadget implements (its :class:`GadgetKind`) and
whether the ROP compiler can use it.  Single-instruction gadgets are
classified syntactically; longer ones run through a small symbolic
executor that checks the sequence amounts to one clean operation with no
stray side effects.

A sequence that decodes fine but has unanalyzable or unsafe effects is
still *a gadget* (kind ``OTHER``) — tampering with it is detectable if a
chain exercises it — but the compiler will not place it in a chain.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..x86.instruction import Instruction
from ..x86.operands import Imm, Mem
from ..x86.registers import ESP, Register
from .types import Gadget, GadgetKind, GadgetOp

_BINOPS = {"add", "sub", "and", "or", "xor", "imul"}
_SHIFTS = {"shl", "shr", "sar"}

#: Mnemonics that may never appear inside a gadget body: control flow
#: breaks the chain, privileged/IO instructions fault in user mode, and
#: frame instructions corrupt the chain cursor.
_FORBIDDEN = {
    "call", "jmp", "ret", "retf", "hlt", "int", "int3", "leave",
    "pushad", "popad", "div", "idiv",
    "callf", "jmpf", "iretd", "loopne", "loope", "loop", "jecxz",
    "in", "out", "cli", "sti", "enter", "into", "bound",
} | {
    "jo", "jno", "jb", "jae", "je", "jne", "jbe", "ja",
    "js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg",
}


def _is_esp(op) -> bool:
    return isinstance(op, Register) and op.name == "esp"


def _mem_uses_esp(op) -> bool:
    return isinstance(op, Mem) and (
        (op.base is not None and op.base.name == "esp")
        or (op.index is not None and op.index.name == "esp")
    )


def _classify_single(insn: Instruction) -> Optional[GadgetKind]:
    """Classify a one-instruction gadget body syntactically."""
    m = insn.mnemonic
    ops = insn.operands

    if m == "nop":
        return GadgetKind(GadgetOp.NOP)

    if m == "pop" and isinstance(ops[0], Register) and ops[0].width == 32:
        if ops[0].name == "esp":
            return GadgetKind(GadgetOp.POP_ESP)
        return GadgetKind(GadgetOp.LOAD_CONST, dst=ops[0])

    if m == "mov":
        dst, src = ops
        if _is_esp(dst) and isinstance(src, Register) and src.width == 32:
            return GadgetKind(GadgetOp.MOV_ESP, src=src)
        if isinstance(dst, Register) and isinstance(src, Register):
            if dst.width == src.width == 32 and not _is_esp(dst) and not _is_esp(src):
                return GadgetKind(GadgetOp.MOV_REG, dst=dst, src=src)
            if dst.width == src.width == 8:
                return GadgetKind(
                    GadgetOp.BYTE_OP, dst=dst.full(), src=src.full(), subop="mov"
                )
        if (
            isinstance(dst, Register)
            and dst.width == 32
            and isinstance(src, Mem)
            and src.width == 32
            and src.base is not None
            and src.index is None
            and not _mem_uses_esp(src)
        ):
            return GadgetKind(GadgetOp.LOAD_MEM, dst=dst, src=src.base, disp=src.disp)
        if (
            isinstance(dst, Mem)
            and dst.width == 32
            and isinstance(src, Register)
            and src.width == 32
            and dst.base is not None
            and dst.index is None
            and not _mem_uses_esp(dst)
        ):
            return GadgetKind(GadgetOp.STORE_MEM, dst=dst.base, src=src, disp=dst.disp)
        if (
            isinstance(dst, Mem)
            and dst.width == 8
            and dst.base is not None
            and not _mem_uses_esp(dst)
        ):
            return GadgetKind(
                GadgetOp.BYTE_OP, dst=dst.base, subop="mov_store", disp=dst.disp
            )
        return GadgetKind(GadgetOp.OTHER)

    if m == "xchg":
        a, b = ops
        if isinstance(a, Register) and isinstance(b, Register) and a.width == b.width == 32:
            if a.name == "esp":
                return GadgetKind(GadgetOp.MOV_ESP, src=b, subop="xchg")
            if b.name == "esp":
                return GadgetKind(GadgetOp.MOV_ESP, src=a, subop="xchg")
            return GadgetKind(GadgetOp.OTHER)  # plain reg swap: unused kind
        return GadgetKind(GadgetOp.OTHER)

    if m in _BINOPS:
        dst, src = ops[0], ops[1] if len(ops) > 1 else None
        if (
            isinstance(dst, Register)
            and isinstance(src, Register)
            and dst.width == src.width == 32
            and not _is_esp(dst)
            and not _is_esp(src)
        ):
            return GadgetKind(GadgetOp.BINOP, dst=dst, src=src, subop=m)
        if (
            isinstance(dst, Register)
            and dst.width == 32
            and isinstance(src, Mem)
            and src.width == 32
            and src.base is not None
            and src.index is None
            and not _mem_uses_esp(src)
            and not _is_esp(dst)
            and m == "add"
        ):
            return GadgetKind(
                GadgetOp.ADD_FROM_MEM, dst=dst, src=src.base, disp=src.disp
            )
        if (
            isinstance(dst, Mem)
            and dst.width == 32
            and isinstance(src, Register)
            and src.width == 32
            and dst.base is not None
            and dst.index is None
            and not _mem_uses_esp(dst)
            and m == "add"
        ):
            return GadgetKind(GadgetOp.ADD_MEM, dst=dst.base, src=src, disp=dst.disp)
        if (
            isinstance(dst, Register)
            and isinstance(src, Register)
            and dst.width == src.width == 8
        ):
            return GadgetKind(
                GadgetOp.BYTE_OP, dst=dst.full(), src=src.full(), subop=m
            )
        if isinstance(dst, Mem) and dst.width == 8 and dst.base is not None and not _mem_uses_esp(dst):
            return GadgetKind(GadgetOp.BYTE_OP, dst=dst.base, subop=m + "_store", disp=dst.disp)
        return GadgetKind(GadgetOp.OTHER)

    if m == "sbb":
        dst, src = ops
        if (
            isinstance(dst, Register)
            and isinstance(src, Register)
            and dst is src
            and dst.width == 32
        ):
            return GadgetKind(GadgetOp.SBB_SELF, dst=dst)
        return GadgetKind(GadgetOp.OTHER)

    if m in _SHIFTS:
        dst, amount = ops
        if isinstance(dst, Register) and dst.width == 32 and isinstance(amount, Imm):
            return GadgetKind(
                GadgetOp.SHIFT, dst=dst, subop=m, amount=amount.value & 0x1F
            )
        if isinstance(dst, Mem) and dst.width == 8 and dst.base is not None and not _mem_uses_esp(dst):
            # e.g. the paper's "sar byte [ecx+0x7], 0x8b; ret"
            return GadgetKind(GadgetOp.BYTE_OP, dst=dst.base, subop=m + "_store", disp=dst.disp)
        return GadgetKind(GadgetOp.OTHER)

    if m == "neg" and isinstance(ops[0], Register) and ops[0].width == 32:
        return GadgetKind(GadgetOp.NEG, dst=ops[0])
    if m == "not" and isinstance(ops[0], Register) and ops[0].width == 32:
        return GadgetKind(GadgetOp.NOT, dst=ops[0])
    if m == "inc" and isinstance(ops[0], Register) and ops[0].width == 32:
        return GadgetKind(GadgetOp.INC, dst=ops[0])
    if m == "dec" and isinstance(ops[0], Register) and ops[0].width == 32:
        return GadgetKind(GadgetOp.DEC, dst=ops[0])

    return GadgetKind(GadgetOp.OTHER)


def _harmless(insn: Instruction) -> bool:
    """Instructions allowed around a primary op without changing its kind.

    Only true no-ops qualify; flag-setters are fine (chains never carry
    flags across arbitrary padding — the compiler sequences flag tricks
    tightly).
    """
    if insn.mnemonic == "nop":
        return True
    if insn.mnemonic in ("test", "cmp"):
        # Reads only; memory operands might fault on garbage pointers, so
        # only register forms are harmless.
        return all(isinstance(op, (Register, Imm)) for op in insn.operands)
    return False


def classify(instructions: List[Instruction]) -> Optional[Gadget]:
    """Classify an instruction sequence as a gadget.

    Args:
        instructions: decoded sequence whose last element must be a
            return; earlier elements form the body.

    Returns:
        A :class:`Gadget` (kind may be ``OTHER``), or ``None`` when the
        sequence cannot be a gadget at all (control flow in the body,
        esp corruption, or an empty sequence).
    """
    if not instructions or not instructions[-1].is_return:
        return None
    body = list(instructions[:-1])
    terminator = instructions[-1]

    # Special case: [int 0x80; ret] is the syscall gadget.
    if (
        len(body) == 1
        and body[0].mnemonic == "int"
        and body[0].operands[0].value == 0x80
    ):
        return Gadget(
            address=instructions[0].address or 0,
            instructions=tuple(instructions),
            kind=GadgetKind(GadgetOp.SYSCALL),
            far=terminator.mnemonic == "retf",
            ret_imm=terminator.operands[0].value if terminator.operands else 0,
        )

    stack_words = 0
    for insn in body:
        if insn.mnemonic in _FORBIDDEN:
            return None
        # Writing esp mid-gadget (other than pop esp, the pivot kind)
        # makes behaviour depend on the chain layout; reject outright
        # except for the dedicated kinds handled below.
        if insn.mnemonic in ("pop", "popfd"):
            stack_words += 1
        elif insn.mnemonic == "push":
            # push rewrites chain memory behind the cursor; valid gadget
            # but never compiler-usable.
            pass
        elif any(_is_esp(op) for op in insn.operands) and not (
            insn.mnemonic in ("mov", "xchg")
        ):
            return None
        if _mem_uses_esp(insn.operands[0] if insn.operands else None):
            return None

    address = instructions[0].address if instructions[0].address is not None else 0
    far = terminator.mnemonic == "retf"
    ret_imm = terminator.operands[0].value if terminator.operands else 0

    def gadget(kind: GadgetKind) -> Gadget:
        return Gadget(
            address=address,
            instructions=tuple(instructions),
            kind=kind,
            stack_words=stack_words,
            far=far,
            ret_imm=ret_imm,
        )

    if not body:
        return gadget(GadgetKind(GadgetOp.NOP))

    # Strip harmless padding, then classify what remains.
    core = [i for i in body if not _harmless(i)]
    if not core:
        return gadget(GadgetKind(GadgetOp.NOP))
    if len(core) == 1:
        kind = _classify_single(core[0])
        if kind is None:
            return None
        if any(i.mnemonic == "push" for i in body):
            kind = GadgetKind(GadgetOp.OTHER)
        return gadget(kind)

    # Multi-op bodies: usable only when the ops are independent clean
    # operations on disjoint destinations (rare); otherwise OTHER.
    kinds = [_classify_single(i) for i in core]
    if any(k is None for k in kinds):
        return None
    return gadget(GadgetKind(GadgetOp.OTHER))
