"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — corpus programs and their stats;
* ``run PROGRAM``               — execute a corpus program;
* ``protect PROGRAM``           — protect and re-run it, print report;
* ``analyze PROGRAM``           — Fig. 6 protectability for one program;
* ``fig6``                      — the full Fig. 6 table;
* ``attack PROGRAM``            — static + Wurster tamper demo.
"""

from __future__ import annotations

import argparse
import sys

from .binary import Patch
from .core import Parallax, ProtectConfig, STRATEGIES
from .corpus import PROGRAM_NAMES, build_program
from .rewrite import RewriteEngine, format_fig6_table


def _cmd_list(_args) -> int:
    print(f"{'program':<8} {'functions':>10} {'code bytes':>11}")
    for name in PROGRAM_NAMES:
        program = build_program(name)
        print(f"{name:<8} {len(program.functions):>10} {program.code_size():>11}")
    return 0


def _cmd_run(args) -> int:
    program = build_program(args.program)
    result = program.run(debugger_attached=args.debugger)
    print(f"stdout : {result.stdout.decode(errors='replace')}")
    print(f"exit   : {result.exit_status}")
    print(f"steps  : {result.steps:,}   cycles: {result.cycles:,}")
    if result.crashed:
        print(f"FAULT  : {result.fault}")
        return 1
    return 0


def _cmd_protect(args) -> int:
    program = build_program(args.program)
    baseline = program.run()
    config = ProtectConfig(strategy=args.strategy, guard_chains=args.guard_chains)
    protected = Parallax(config).protect(program)
    print(protected.report.summary())
    result = protected.run()
    if result.crashed or result.stdout != baseline.stdout:
        print("ERROR: protected program diverged from baseline")
        return 1
    overhead = 100 * (result.cycles / baseline.cycles - 1)
    print(f"\nbehaviour preserved; whole-program overhead {overhead:.2f}%")
    return 0


def _cmd_analyze(args) -> int:
    program = build_program(args.program)
    report = RewriteEngine().analyze(program.image).report
    print(format_fig6_table([report]))
    return 0


def _cmd_fig6(_args) -> int:
    engine = RewriteEngine()
    reports = [
        engine.analyze(build_program(name).image).report for name in PROGRAM_NAMES
    ]
    print(format_fig6_table(reports))
    return 0


def _cmd_attack(args) -> int:
    from .attacks import evaluate_patch_attack, evaluate_wurster_attack

    program = build_program(args.program)
    goal = program.run()
    config = ProtectConfig(strategy=args.strategy)
    protected = Parallax(config).protect(program)
    image = protected.image
    target = next(
        addr
        for addr in protected.report.chains[0].gadget_addresses
        if image.section_at(addr).name == ".text"
    )
    old = image.read(target, 1)
    patch = Patch(target, old, bytes([old[0] ^ 0xFF]))
    print(f"tampering one byte of a chain gadget at {target:#x}")
    static = evaluate_patch_attack(image, [patch], goal, "static")
    wurster = evaluate_wurster_attack(image, [patch], goal, "wurster")
    print(f"static  patch: {'DETECTED' if static.detected else 'undetected'} "
          f"({static.reason})")
    print(f"wurster patch: {'DETECTED' if wurster.detected else 'undetected'} "
          f"({wurster.reason})")
    return 0 if static.detected and wurster.detected else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallax (DSN 2015) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the corpus programs").set_defaults(
        func=_cmd_list
    )

    p_run = sub.add_parser("run", help="run a corpus program")
    p_run.add_argument("program", choices=PROGRAM_NAMES)
    p_run.add_argument("--debugger", action="store_true",
                       help="attach the (simulated) debugger")
    p_run.set_defaults(func=_cmd_run)

    p_protect = sub.add_parser("protect", help="protect a program and re-run it")
    p_protect.add_argument("program", choices=PROGRAM_NAMES)
    p_protect.add_argument("--strategy", choices=STRATEGIES, default="cleartext")
    p_protect.add_argument("--guard-chains", action="store_true",
                           help="enable the §VI-C chain-guard network")
    p_protect.set_defaults(func=_cmd_protect)

    p_analyze = sub.add_parser("analyze", help="Fig. 6 protectability for one program")
    p_analyze.add_argument("program", choices=PROGRAM_NAMES)
    p_analyze.set_defaults(func=_cmd_analyze)

    sub.add_parser("fig6", help="the full Fig. 6 table").set_defaults(func=_cmd_fig6)

    p_attack = sub.add_parser("attack", help="tamper demo on a protected program")
    p_attack.add_argument("program", choices=PROGRAM_NAMES)
    p_attack.add_argument("--strategy", choices=STRATEGIES, default="cleartext")
    p_attack.set_defaults(func=_cmd_attack)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
