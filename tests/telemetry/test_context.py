"""TelemetryContext: scoping, label stamping, flush reconciliation."""

import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    TelemetryContext,
    current_context,
    current_labels,
    get_metrics,
    get_recorder,
    get_tracer,
    suspend_context,
    telemetry_context,
    telemetry_session,
)


def test_context_requires_at_least_one_label():
    with pytest.raises(ValueError):
        TelemetryContext({})


def test_accessors_return_context_children_inside_scope():
    with telemetry_session() as (global_metrics, global_tracer):
        assert get_metrics() is global_metrics
        with telemetry_context(request="r1") as ctx:
            assert current_context() is ctx
            assert get_metrics() is ctx.metrics
            assert get_tracer() is ctx.tracer
            assert current_labels() == {"request": "r1"}
        assert current_context() is None
        assert get_metrics() is global_metrics


def test_flush_merges_labeled_samples_into_global():
    with telemetry_session() as (global_metrics, global_tracer):
        with telemetry_context(request="r1"):
            get_metrics().counter("protect.runs").inc(3)
            with get_tracer().span("work", program="wget"):
                pass
        samples = global_metrics.to_dict()
        assert samples['protect.runs{request="r1"}']["value"] == 3
        (span,) = global_tracer.spans
        assert span.name == "work"
        assert span.attributes["ctx.request"] == "r1"
        # span's own attributes survive the ctx.* stamping
        assert span.attributes["program"] == "wget"


def test_nested_contexts_merge_labels_inner_wins():
    with telemetry_session() as (global_metrics, _tracer):
        with telemetry_context(tenant="acme", request="outer"):
            with telemetry_context(request="inner"):
                assert current_labels() == {
                    "tenant": "acme",
                    "request": "inner",
                }
                get_metrics().counter("c").inc()
        assert 'c{request="inner",tenant="acme"}' in global_metrics.to_dict()


def test_flush_is_idempotent_per_batch():
    with telemetry_session() as (global_metrics, _tracer):
        ctx = telemetry_context(request="r1")
        with ctx:
            get_metrics().counter("c").inc(2)
        ctx.flush()  # second flush: child already drained
        assert global_metrics.family_total("c") == 2


def test_context_is_not_reentrant():
    ctx = telemetry_context(request="r1")
    with telemetry_session():
        with ctx:
            with pytest.raises(RuntimeError):
                ctx.__enter__()


def test_context_mirrors_disabled_state():
    # no session: process-wide telemetry is disabled
    with telemetry_context(request="r1"):
        counter = get_metrics().counter("c")
        counter.inc()  # null instrument, nothing recorded
    assert telemetry._global_metrics().to_dict() == {}


def test_suspend_context_restores_global_accessors():
    with telemetry_session() as (global_metrics, _tracer):
        with telemetry_context(request="r1"):
            with suspend_context():
                assert current_context() is None
                assert get_metrics() is global_metrics
            assert current_context() is not None


def test_recorder_view_stamps_ctx_field_live():
    with telemetry_session(recorder=True):
        base = telemetry._global_metrics()  # noqa: F841 (session active)
        seen = []
        from repro.telemetry.recorder import _recorder

        _recorder.subscribe(seen.append)
        try:
            with telemetry_context(request="r1", tenant="acme"):
                get_recorder().record("protect", program="wget")
        finally:
            _recorder.unsubscribe(seen.append)
        # the event reached the global ring (and subscribers) while the
        # context was still open — labeled live, not at flush time
        (event,) = seen
        assert event["kind"] == "protect"
        assert event["ctx"] == {"request": "r1", "tenant": "acme"}
        (retained,) = _recorder.to_events()
        assert retained["ctx"] == {"request": "r1", "tenant": "acme"}


def test_threaded_contexts_are_isolated_and_reconcile():
    """Satellite (c) core invariant: concurrent per-thread contexts keep
    their labels apart, and per-label sums equal the global exactly."""
    increments = {"r1": 7, "r2": 11, "r3": 13}
    with telemetry_session() as (global_metrics, _tracer):
        barrier = threading.Barrier(len(increments))
        errors = []

        def work(request, n):
            try:
                with telemetry_context(request=request):
                    barrier.wait(timeout=5)
                    for _ in range(n):
                        get_metrics().counter("work.items").inc()
                    assert current_labels() == {"request": request}
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=item)
            for item in increments.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        samples = global_metrics.to_dict()
        for request, n in increments.items():
            assert samples[f'work.items{{request="{request}"}}']["value"] == n
        assert global_metrics.family_total("work.items") == sum(
            increments.values()
        )
