"""Property-based tests on the ISA substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.x86 import (
    DecodeError, GP32, Imm, decode, assemble, to_signed, to_unsigned,
)

regs32 = st.sampled_from([r for r in GP32 if r.name != "esp"])


@given(st.integers(0, 0xFFFFFFFF), st.sampled_from([8, 16, 32]))
def test_signed_unsigned_roundtrip(value, width):
    value &= (1 << width) - 1
    assert to_unsigned(to_signed(value, width), width) == value


@given(regs32, st.integers(0, 0xFFFFFFFF))
def test_mov_imm_roundtrip(reg, value):
    encoded = assemble("mov", reg, Imm(value, 32))
    insn = decode(encoded, 0)
    assert insn.mnemonic == "mov"
    assert insn.operands[0] is reg
    assert insn.operands[1].value == value


@given(regs32, regs32, st.sampled_from(["add", "sub", "xor", "and", "or", "cmp"]))
def test_arith_rr_roundtrip(dst, src, mnemonic):
    encoded = assemble(mnemonic, dst, src)
    insn = decode(encoded, 0)
    assert insn.mnemonic == mnemonic
    assert insn.operands == (dst, src)


@settings(max_examples=300)
@given(st.binary(min_size=1, max_size=16))
def test_decoder_never_crashes(data):
    """Arbitrary bytes either decode or raise DecodeError — nothing else."""
    try:
        insn = decode(data, 0)
    except DecodeError:
        return
    assert 1 <= insn.length <= len(data)


@settings(max_examples=100)
@given(st.binary(min_size=1, max_size=40))
def test_gadget_finder_total(data):
    """The finder terminates and returns well-formed gadgets on noise."""
    from repro.gadgets import find_gadgets_in_bytes
    for gadget in find_gadgets_in_bytes(bytes(data), base=0):
        assert gadget.instructions[-1].is_return
        assert gadget.length >= 1


# ----------------------------------------------------------------------
# Add-family (0x00..0x05) modrm/sib/disp edge cases
# ----------------------------------------------------------------------

def _expected_modrm_tail(modrm, sib):
    """Bytes after the opcode for a modrm-form instruction."""
    mod, rm = modrm >> 6, modrm & 7
    if mod == 3:
        return 1
    length = 1
    disp = {0: 0, 1: 1, 2: 4}[mod]
    if rm == 4:  # SIB follows
        length += 1
        if mod == 0 and (sib & 7) == 5:
            disp = 4  # base=101 with mod=00: disp32, no base
    elif rm == 5 and mod == 0:
        disp = 4
    return length + disp


@settings(max_examples=400)
@given(st.integers(0, 5), st.integers(0, 255), st.integers(0, 255))
def test_add_family_lengths_follow_modrm_rules(form, modrm, sib):
    data = bytes([form, modrm, sib]) + bytes(8)
    insn = decode(data, 0)
    if form == 4:       # al, imm8
        expected = 2
    elif form == 5:     # eax, imm32
        expected = 5
    else:
        expected = 1 + _expected_modrm_tail(modrm, sib)
    assert insn.mnemonic == "add"
    assert insn.length == expected
    assert insn.raw == data[:expected]


def test_add_family_every_modrm_byte_decodes():
    """0x01 /r is total over all 256 modrm bytes (with padding)."""
    for modrm in range(256):
        data = bytes([0x01, modrm]) + bytes(10)
        insn = decode(data, 0)
        assert insn.mnemonic == "add"
        assert insn.raw == data[: insn.length]


@settings(max_examples=200)
@given(st.binary(min_size=1, max_size=16))
def test_decoded_raw_is_the_consumed_prefix(data):
    """``insn.raw`` must be exactly the bytes consumed, prefixes included."""
    try:
        insn = decode(data, 0)
    except DecodeError:
        return
    assert insn.raw == data[: insn.length]


# ----------------------------------------------------------------------
# Return-family encodings stay distinct
# ----------------------------------------------------------------------

def test_ret_family_distinct_mnemonics_and_lengths():
    ret = decode(b"\xc3", 0)
    retf = decode(b"\xcb", 0)
    ret_imm = decode(b"\xc2\x08\x00", 0)
    retf_imm = decode(b"\xca\x10\x00", 0)
    assert ret.mnemonic == "ret" and ret.length == 1
    assert retf.mnemonic == "retf" and retf.length == 1
    assert ret_imm.mnemonic == "ret" and ret_imm.length == 3
    assert ret_imm.operands[0].value == 8
    assert retf_imm.mnemonic == "retf" and retf_imm.operands[0].value == 16
    for insn in (ret, retf, ret_imm, retf_imm):
        assert insn.is_return
    assert len({insn.raw for insn in (ret, retf, ret_imm, retf_imm)}) == 4


def test_rep_prefixed_return_is_rejected():
    with pytest.raises(DecodeError):
        decode(b"\xf3\xc3", 0)


# ----------------------------------------------------------------------
# Prefix handling
# ----------------------------------------------------------------------

def test_operand_size_prefix_switches_to_16_bit():
    insn = decode(b"\x66\x01\xc8", 0)  # add ax-family, modrm c8
    assert insn.mnemonic == "add"
    assert insn.length == 3
    assert insn.raw == b"\x66\x01\xc8"
    assert all(op.name.startswith(("ax", "cx")) for op in insn.operands)


def test_prefix_count_is_bounded():
    assert decode(b"\x2e" * 4 + b"\xc3", 0).mnemonic == "ret"
    with pytest.raises(DecodeError):
        decode(b"\x2e" * 5 + b"\xc3", 0)


def test_prefixed_immediate_offset_accounts_for_prefixes():
    plain = decode(b"\x05\x44\x33\x22\x11", 0)      # add eax, imm32
    prefixed = decode(b"\x2e\x05\x44\x33\x22\x11", 0)
    assert plain.imm_offset == 1
    assert prefixed.imm_offset == 2
    assert prefixed.raw[0] == 0x2E


# ----------------------------------------------------------------------
# Decode-cache keys cannot alias distinct encodings
# ----------------------------------------------------------------------

def test_decode_cache_distinguishes_equivalent_encodings():
    """01 /r and 03 /r both mean "add eax, ecx" — the cache must keep
    the byte-level distinction (Parallax protects *encodings*)."""
    from repro.cache import cache_session
    from repro.x86.decoder import decode_all_cached

    direction_a = b"\x01\xc8\xc3"
    direction_b = b"\x03\xc1\xc3"
    with cache_session():
        one = decode_all_cached(direction_a)
        two = decode_all_cached(direction_b)
        assert [i.raw for i in one] != [i.raw for i in two]
        assert one[0].mnemonic == two[0].mnemonic == "add"
        # a hit returns a fresh list, equal contents
        again = decode_all_cached(direction_a)
        assert again is not one
        assert [i.raw for i in again] == [i.raw for i in one]
        # address participates in the key
        rebased = decode_all_cached(direction_a, address=0x1000)
        assert rebased[0].address == 0x1000 and one[0].address == 0


@settings(max_examples=200)
@given(st.binary(min_size=1, max_size=8), st.binary(min_size=1, max_size=8))
def test_decode_cache_keys_distinct_for_distinct_inputs(a, b):
    from repro.cache import content_key
    from repro.x86.decoder import DECODER_VERSION

    def key(data, address=0, stop_on_error=False):
        return content_key(
            "decode_all", DECODER_VERSION, data, address, stop_on_error
        )

    if a != b:
        assert key(a) != key(b)
    assert key(a) != key(a, address=1)
    assert key(a) != key(a, stop_on_error=True)
    # concatenation aliasing: trailing data byte vs address byte
    assert key(a + b"\x10", 0) != key(a, 0x10)
