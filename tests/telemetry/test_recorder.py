"""Flight recorder: ring bounds, disabled fast path, dump/export."""

import json

import pytest

from repro.telemetry import (
    FlightRecorder,
    get_recorder,
    set_recorder,
    telemetry_session,
)


def test_record_retains_events_in_order():
    rec = FlightRecorder()
    rec.record("protect", program="wget")
    rec.record("block_compile", start=0x1000, n=7)
    events = rec.to_events()
    assert [e["kind"] for e in events] == ["protect", "block_compile"]
    assert events[0]["program"] == "wget"
    assert events[1]["start"] == 0x1000
    assert events[0]["seq"] == 1 and events[1]["seq"] == 2
    # monotonic timestamps
    assert 0 <= events[0]["ts"] <= events[1]["ts"]
    assert all(e["type"] == "event" for e in events)


def test_ring_bounds_and_dropped_count():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record("k", i=i)
    assert len(rec) == 4
    assert rec.dropped == 6
    # the newest events survive
    assert [e["i"] for e in rec.to_events()] == [6, 7, 8, 9]
    summary = rec.summary()
    assert summary["recorded"] == 10
    assert summary["retained"] == 4
    assert summary["dropped"] == 6
    assert summary["capacity"] == 4


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_disabled_recorder_is_a_noop():
    rec = FlightRecorder(enabled=False)
    rec.record("protect", program="wget")
    assert len(rec) == 0
    assert rec.dropped == 0
    assert rec.to_events() == []
    assert rec.summary()["recorded"] == 0


def test_kinds_counts_retained_events():
    rec = FlightRecorder()
    for _ in range(3):
        rec.record("chain_dispatch")
    rec.record("attack", name="bitflip")
    assert rec.kinds() == {"chain_dispatch": 3, "attack": 1}


def test_clear_resets_ring_and_sequence():
    rec = FlightRecorder(capacity=2)
    for i in range(5):
        rec.record("k", i=i)
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0
    rec.record("k", i=99)
    assert rec.to_events()[0]["seq"] == 1


def test_dump_jsonl_roundtrip(tmp_path):
    rec = FlightRecorder()
    rec.record("rewrite", image="wget", near=12)
    rec.record("block_invalidate", tier="page")
    path = tmp_path / "journal.jsonl"
    rec.write_jsonl(str(path))
    records = [json.loads(l) for l in path.read_text().splitlines()]
    # events first, exactly one trailing summary
    assert [r["type"] for r in records] == ["event", "event", "journal_summary"]
    assert records[0]["kind"] == "rewrite" and records[0]["near"] == 12
    assert records[1]["tier"] == "page"
    assert records[2]["kinds"] == {"rewrite": 1, "block_invalidate": 1}


def test_default_recorder_starts_disabled():
    rec = get_recorder()
    if rec.enabled:
        pytest.skip("another component enabled the default recorder")
    before = len(rec)
    rec.record("should_not_exist")
    assert len(rec) == before


def test_set_recorder_swaps_and_returns_previous():
    mine = FlightRecorder()
    previous = set_recorder(mine)
    try:
        assert get_recorder() is mine
    finally:
        set_recorder(previous)
    assert get_recorder() is previous


def test_telemetry_session_installs_and_restores_recorder():
    before = get_recorder()
    with telemetry_session(recorder=True):
        inside = get_recorder()
        assert inside is not before
        assert inside.enabled
        inside.record("protect", program="x")
        assert len(inside) == 1
    assert get_recorder() is before
