"""Native backend: compile IR functions to IA-32 machine code.

Produces gcc-flavoured code: frame pointer prologues, callee-saved
registers, cdecl argument passing.  The corpus generator uses this to
build the test binaries; the Parallax pipeline also uses it to compile
inserted runtime-support code (chain decryptors, loader helpers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..x86.asm import Assembler
from ..x86.operands import Imm, Mem, mem8, mem32
from ..x86.registers import EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP
from . import ir

#: jcc mnemonic per IR condition.
_CC = {
    "eq": "je",
    "ne": "jne",
    "lt": "jl",
    "le": "jle",
    "gt": "jg",
    "ge": "jge",
    "ult": "jb",
    "uge": "jae",
}

_CALLEE_SAVED = (EBX, ESI, EDI)


class CodegenOptions:
    """Knobs that shape the emitted code (and hence the gadget surface).

    The Fig. 6 experiment depends on the instruction mix; these options
    let the corpus generator emulate different compiler habits.

    Attributes:
        wide_immediates: emit group-1 arithmetic with imm32 even for
            small constants (more immediate-rule targets).
        xor_zero_idiom: use ``xor r, r`` for Const 0 (gcc -O2 habit).
        align_functions: pad function starts to this boundary (0 = off).
    """

    def __init__(
        self,
        wide_immediates: bool = False,
        xor_zero_idiom: bool = True,
        align_functions: int = 16,
    ):
        self.wide_immediates = wide_immediates
        self.xor_zero_idiom = xor_zero_idiom
        self.align_functions = align_functions


class NativeCompiler:
    """Compiles a set of IR functions into one code blob.

    All functions share an :class:`Assembler`; function names are labels,
    so cross-function calls resolve in the final fixup pass.
    """

    def __init__(self, base: int = 0x08048000, options: Optional[CodegenOptions] = None):
        self.asm = Assembler(base=base)
        self.options = options or CodegenOptions()
        self._function_spans: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def compile_function(self, function: ir.IRFunction) -> None:
        """Append the native code of ``function`` to the blob."""
        function.validate()
        opts = self.options
        if opts.align_functions:
            self.asm.align(opts.align_functions)
        start = self.asm.offset
        self.asm.label(function.name)
        self._emit_prologue()
        for op in function.body:
            self._emit_op(function, op)
        self._function_spans[function.name] = (start, self.asm.offset)

    def emit_start(self, main: str = "main", argv: Iterable[int] = ()) -> None:
        """Emit the process entry point: call main, exit with its result."""
        a = self.asm
        if self.options.align_functions:
            a.align(self.options.align_functions)
        start = a.offset
        a.label("_start")
        args = list(argv)
        for value in reversed(args):
            a.push(Imm(value, 32))
        a.call(main)
        if args:
            a.add(ESP, 4 * len(args))
        a.mov(EBX, EAX)
        a.mov(EAX, 1)
        a.int(0x80)
        self._function_spans["_start"] = (start, self.asm.offset)

    def finish(self):
        """Return (code_bytes, {name: (start_offset, end_offset)})."""
        return self.asm.assemble(), dict(self._function_spans)

    # ------------------------------------------------------------------
    # Per-op emission
    # ------------------------------------------------------------------

    def _emit_prologue(self) -> None:
        a = self.asm
        a.push(EBP)
        a.mov(EBP, ESP)
        for reg in _CALLEE_SAVED:
            a.push(reg)

    def _emit_epilogue(self) -> None:
        a = self.asm
        for reg in reversed(_CALLEE_SAVED):
            a.pop(reg)
        a.pop(EBP)
        a.ret()

    def _imm(self, value: int) -> Imm:
        if self.options.wide_immediates:
            return Imm(value, 32)
        return Imm(value, 8) if -128 <= (value & 0xFFFFFFFF) < 128 or value >= 0xFFFFFF80 else Imm(value, 32)

    def _emit_op(self, function: ir.IRFunction, op: ir.Op) -> None:
        a = self.asm
        scoped = lambda name: f"{function.name}.{name}"

        if isinstance(op, ir.Label):
            a.label(scoped(op.name))
        elif isinstance(op, ir.Const):
            if op.value == 0 and self.options.xor_zero_idiom:
                a.xor(op.dst, op.dst)
            else:
                a.mov(op.dst, Imm(op.value, 32))
        elif isinstance(op, ir.Mov):
            a.mov(op.dst, op.src)
        elif isinstance(op, ir.AddConst):
            a.add(op.dst, Imm(op.value, 32))
        elif isinstance(op, ir.OHUpdate):
            a.add(mem32(disp=op.cell), op.src)
        elif isinstance(op, ir.OHMark):
            a.add(mem32(disp=op.cell), Imm(op.value, 32))
        elif isinstance(op, ir.BinOp):
            if op.op == "mul":
                a.imul(op.dst, op.src)
            else:
                a.emit(op.op, op.dst, op.src)
        elif isinstance(op, ir.Neg):
            a.neg(op.dst)
        elif isinstance(op, ir.Not):
            a.not_(op.dst)
        elif isinstance(op, ir.Shift):
            a.emit(op.op, op.dst, Imm(op.amount, 8))
        elif isinstance(op, ir.Load):
            a.mov(op.dst, mem32(op.base, disp=op.disp))
        elif isinstance(op, ir.Store):
            a.mov(mem32(op.base, disp=op.disp), op.src)
        elif isinstance(op, ir.Load8):
            a.movzx(op.dst, mem8(op.base, disp=op.disp))
        elif isinstance(op, ir.Store8):
            low8 = _low_byte_reg(op.src)
            a.mov(mem8(op.base, disp=op.disp), low8)
        elif isinstance(op, ir.Param):
            a.mov(op.dst, mem32(EBP, disp=8 + 4 * op.index))
        elif isinstance(op, ir.Call):
            for arg in reversed(op.args):
                a.push(arg)
            a.call(op.callee)
            if op.args:
                a.add(ESP, self._imm(4 * len(op.args)))
            if op.dst is not None and op.dst is not EAX:
                a.mov(op.dst, EAX)
        elif isinstance(op, ir.Syscall):
            a.int(0x80)
        elif isinstance(op, ir.Jump):
            a.jmp(scoped(op.target))
        elif isinstance(op, ir.Branch):
            if isinstance(op.b, int):
                a.cmp(op.a, self._imm(op.b))
            else:
                a.cmp(op.a, op.b)
            a.emit(_CC[op.cond], scoped(op.target))
        elif isinstance(op, ir.Ret):
            if op.src is not None and op.src is not EAX:
                a.mov(EAX, op.src)
            self._emit_epilogue()
        else:
            raise ir.IRError(f"native backend cannot emit {op!r}")


def _low_byte_reg(reg):
    """al/bl/cl/dl for the corresponding 32-bit register."""
    from ..x86.registers import GP8

    if reg.code >= 4:
        raise ir.IRError(
            f"Store8 source must be eax/ecx/edx/ebx (got {reg.name}); "
            "esi/edi have no byte alias in our subset"
        )
    return GP8[reg.code]


def compile_functions(
    functions: List[ir.IRFunction],
    base: int = 0x08048000,
    options: Optional[CodegenOptions] = None,
    entry_main: Optional[str] = "main",
    argv: Iterable[int] = (),
):
    """Compile functions (+ entry stub) into (code, spans, entry_offset).

    ``entry_main=None`` skips the _start stub (for runtime-support blobs).
    """
    compiler = NativeCompiler(base=base, options=options)
    for function in functions:
        compiler.compile_function(function)
    entry_offset = None
    if entry_main is not None:
        entry_offset = compiler.asm.offset
        # align shifts the actual start; recompute from the span below.
        compiler.emit_start(entry_main, argv=argv)
        entry_offset = compiler._function_spans["_start"][0]
    code, spans = compiler.finish()
    return code, spans, entry_offset
