"""Standard gadget-set emission."""

import pytest

from repro.gadgets import GadgetKind, GadgetOp
from repro.ropc import StandardGadgetError, emit_standard_gadgets
from repro.x86 import EAX, EBX, ECX, ESP


def test_emits_and_classifies_back():
    kinds = [
        GadgetKind(GadgetOp.LOAD_CONST, dst=EAX),
        GadgetKind(GadgetOp.MOV_REG, dst=EBX, src=EAX),
        GadgetKind(GadgetOp.BINOP, dst=EAX, src=ECX, subop="xor"),
        GadgetKind(GadgetOp.LOAD_MEM, dst=EAX, src=EBX, disp=8),
        GadgetKind(GadgetOp.STORE_MEM, dst=EBX, src=EAX, disp=0),
        GadgetKind(GadgetOp.SHIFT, dst=EAX, subop="sar", amount=31),
        GadgetKind(GadgetOp.SBB_SELF, dst=EAX),
        GadgetKind(GadgetOp.MOV_ESP, src=EAX),
        GadgetKind(GadgetOp.POP_ESP),
        GadgetKind(GadgetOp.SYSCALL),
        GadgetKind(GadgetOp.NOP),
    ]
    code, gadgets = emit_standard_gadgets(kinds, base=0x1000)
    assert len(gadgets) == len(kinds)
    for kind, gadget in zip(kinds, gadgets):
        assert gadget.kind == kind
        assert gadget.provenance == "standard"


def test_unsupported_kind_raises():
    with pytest.raises(StandardGadgetError):
        emit_standard_gadgets([GadgetKind(GadgetOp.OTHER)], base=0)
