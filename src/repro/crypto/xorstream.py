"""Word-wise xor keystream for cheap chain encryption.

The paper's xor-encrypted function chains use a lightweight keystream;
we use a 32-bit xorshift generator seeded by the key, matching the
emulated decryptor in the runtime-support IR.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF


def xorshift32(state: int) -> int:
    """One step of the xorshift32 PRNG (Marsaglia)."""
    state &= MASK32
    state ^= (state << 13) & MASK32
    state ^= state >> 17
    state ^= (state << 5) & MASK32
    return state & MASK32


def xor_keystream_words(seed: int, count: int) -> list:
    """``count`` keystream words from ``seed`` (seed 0 is remapped)."""
    state = seed & MASK32 or 0x9E3779B9
    out = []
    for _ in range(count):
        state = xorshift32(state)
        out.append(state)
    return out


def xor_crypt_words(seed: int, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` (length a multiple of 4) word-wise."""
    if len(data) % 4:
        raise ValueError("data length must be a multiple of 4")
    words = [int.from_bytes(data[i : i + 4], "little") for i in range(0, len(data), 4)]
    stream = xor_keystream_words(seed, len(words))
    out = bytearray()
    for word, ks in zip(words, stream):
        out += ((word ^ ks) & MASK32).to_bytes(4, "little")
    return bytes(out)
