"""Serve throughput curve: req/s and latency percentiles vs concurrency.

Stands up an in-process ``repro serve`` instance (:class:`ServerThread`)
and drives it with an asyncio load generator at several concurrency
levels.  Each level runs two passes over the same request set:

* **cold** — every request is unique (fresh seeds), so each one rides
  admission → single-flight → batched pool dispatch → full protection
  pipeline; this measures the compute path.
* **warm** — the identical requests replayed, so every one is a
  sharded-cache hit that never touches the pool; this measures the
  serving overhead floor.

Per-request latencies feed :class:`repro.telemetry.windows.RollingWindow`
instances, whose nearest-rank quantiles produce the p50/p95/p99 columns
— the same machinery ``/stats`` and ``repro top`` use, so the numbers
in this artifact are directly comparable to the live dashboards.

A separate coalescing section fires N *concurrent identical* requests
at a fresh key and checks the single-flight invariant end to end:
exactly one leader, everyone else a follower, all responses
byte-identical.

Emits ``BENCH_serve.json`` next to this file (override with
``--output`` or ``REPRO_BENCH_SERVE``) and appends a ``serve`` entry
to ``benchmarks/history/`` for ``check_regression.py``.  Runs
standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --levels 4 16 64 --min-warm-speedup 5.0
"""

import argparse
import asyncio
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import _shared  # noqa: E402

from repro.serve import AsyncServeClient, ServeConfig, ServerThread  # noqa: E402
from repro.telemetry.windows import RollingWindow  # noqa: E402

DEFAULT_OUTPUT = os.environ.get(
    "REPRO_BENCH_SERVE",
    os.path.join(os.path.dirname(__file__), "BENCH_serve.json"),
)

DEFAULT_LEVELS = (4, 16, 64)

#: Request mix: protect jobs across the whole corpus (rotating), the
#: cheapest kind — the curve measures the serving layer, not the
#: emulator.
PROGRAMS = tuple(_shared.PROGRAM_NAMES)


def _requests_for_level(level: int, seed_base: int, count: int):
    """``count`` unique protect jobs (fresh seeds => cold keys)."""
    return [
        {
            "program": PROGRAMS[i % len(PROGRAMS)],
            "seed": seed_base + i,
            "tenant": f"bench-c{level}",
        }
        for i in range(count)
    ]


async def _drive(host, port, concurrency, bodies):
    """Fan ``bodies`` over ``concurrency`` keep-alive connections.

    Returns ``(wall_seconds, latencies, roles, statuses)`` where
    ``latencies[i]`` is request i's client-observed seconds and
    ``roles`` counts ``X-Singleflight`` response headers.
    """
    queue = asyncio.Queue()
    for index, body in enumerate(bodies):
        queue.put_nowait((index, body))
    latencies = [0.0] * len(bodies)
    roles = {}
    statuses = {}

    async def worker():
        async with AsyncServeClient(host, port) as client:
            while True:
                try:
                    index, body = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t0 = time.perf_counter()
                status, headers, _payload = await client.post("/protect", body)
                latencies[index] = time.perf_counter() - t0
                role = headers.get("x-singleflight", "?")
                roles[role] = roles.get(role, 0) + 1
                statuses[status] = statuses.get(status, 0) + 1

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return time.perf_counter() - start, latencies, roles, statuses


def _window_stats(latencies):
    """Percentiles via the telemetry rolling-window machinery."""
    window = RollingWindow(window_seconds=3600.0, clock=lambda: 0.0)
    now = 0.0
    for latency in latencies:
        window.observe(latency, now=now)
        now += 1e-6
    return {
        "p50_ms": round(window.quantile(0.50, now) * 1e3, 3),
        "p95_ms": round(window.quantile(0.95, now) * 1e3, 3),
        "p99_ms": round(window.quantile(0.99, now) * 1e3, 3),
        "mean_ms": round(window.mean(now) * 1e3, 3),
    }


def _pass_row(wall, latencies, roles, statuses):
    assert set(statuses) == {200}, f"non-200 responses: {statuses}"
    row = {
        "requests": len(latencies),
        "wall_s": round(wall, 4),
        "req_per_s": round(len(latencies) / wall, 2),
        "roles": roles,
    }
    row.update(_window_stats(latencies))
    return row


async def _coalesce_check(host, port, concurrency, body):
    """N concurrent *identical* requests: 1 leader, N-1 followers,
    byte-identical responses."""
    barrier_results = []

    async def one():
        async with AsyncServeClient(host, port) as client:
            status, headers, payload = await client.post("/protect", body)
            barrier_results.append(
                (status, headers.get("x-singleflight"), json.dumps(payload, sort_keys=True))
            )

    await asyncio.gather(*(one() for _ in range(concurrency)))
    roles = {}
    for _status, role, _body in barrier_results:
        roles[role] = roles.get(role, 0) + 1
    bodies = {body for _status, _role, body in barrier_results}
    return {
        "concurrency": concurrency,
        "roles": roles,
        "distinct_bodies": len(bodies),
        "statuses": sorted({s for s, _r, _b in barrier_results}),
    }


def run_suite(
    levels=DEFAULT_LEVELS,
    requests_per_level=None,
    jobs=None,
    executor="thread",
    batch_max=4,
    coalesce_n=100,
    output=DEFAULT_OUTPUT,
):
    jobs = jobs or min(4, os.cpu_count() or 2)
    seed_base = time.time_ns() % 1_000_000_000
    config = ServeConfig(
        port=0, jobs=jobs, executor=executor, batch_max=batch_max,
        queue_depth=max(levels) * 4,
    )
    curve = {}
    with ServerThread(config) as srv:
        host, port = config.host, srv.port
        for level in levels:
            count = requests_per_level or max(2 * level, 24)
            bodies = _requests_for_level(level, seed_base, count)
            seed_base += count
            cold = _pass_row(*asyncio.run(_drive(host, port, level, bodies)))
            warm = _pass_row(*asyncio.run(_drive(host, port, level, bodies)))
            warm_hits = warm["roles"].get("cache-hit", 0) + warm["roles"].get(
                "follower", 0
            )
            curve[f"c{level}"] = {
                "concurrency": level,
                "cold": cold,
                "warm": warm,
                "warm_hit_fraction": round(warm_hits / count, 4),
                "warm_speedup": round(
                    warm["req_per_s"] / cold["req_per_s"], 2
                ),
            }
        coalesce_body = {"program": "gzip", "seed": seed_base, "tenant": "herd"}
        coalesce = asyncio.run(
            _coalesce_check(host, port, coalesce_n, coalesce_body)
        )
    payload = {
        "jobs": jobs,
        "executor": executor,
        "batch_max": batch_max,
        "levels": list(levels),
        "curve": curve,
        "coalesce": coalesce,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    history = {}
    for key, row in curve.items():
        history[f"{key}.cold_rps"] = row["cold"]["req_per_s"]
        history[f"{key}.warm_rps"] = row["warm"]["req_per_s"]
        history[f"{key}.warm_speedup"] = row["warm_speedup"]
    _shared.record_history("serve", history)
    return payload


def _print_report(payload):
    print(f"serve curve (jobs={payload['jobs']}, "
          f"executor={payload['executor']}, batch_max={payload['batch_max']})")
    print(f"{'conc':>5} {'pass':<5} {'req/s':>9} {'p50':>9} {'p95':>9} "
          f"{'p99':>9}  roles")
    for key in (f"c{level}" for level in payload["levels"]):
        row = payload["curve"][key]
        for phase in ("cold", "warm"):
            r = row[phase]
            role_bits = ",".join(
                f"{role}:{count}" for role, count in sorted(r["roles"].items())
            )
            print(f"{row['concurrency']:>5} {phase:<5} {r['req_per_s']:>9,.1f} "
                  f"{r['p50_ms']:>8.1f}m {r['p95_ms']:>8.1f}m "
                  f"{r['p99_ms']:>8.1f}m  {role_bits}")
        print(f"{'':>5} warm speedup {row['warm_speedup']}x "
              f"(hit fraction {row['warm_hit_fraction']:.0%})")
    c = payload["coalesce"]
    print(f"coalesce: {c['concurrency']} identical -> roles {c['roles']}, "
          f"{c['distinct_bodies']} distinct body")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--levels", nargs="+", type=int,
                        default=list(DEFAULT_LEVELS),
                        help="concurrency levels to measure")
    parser.add_argument("--requests-per-level", type=int, default=None,
                        help="requests per pass (default: max(2*level, 24))")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker pool size (default: min(4, cpus))")
    parser.add_argument("--executor", choices=("process", "thread"),
                        default="thread",
                        help="worker pool kind (default: thread — "
                             "in-process, deterministic in CI)")
    parser.add_argument("--batch-max", type=int, default=4,
                        help="scheduler batch cap (default: 4)")
    parser.add_argument("--coalesce-n", type=int, default=100,
                        help="herd size for the single-flight check")
    parser.add_argument("--min-warm-speedup", type=float, default=0.0,
                        help="fail unless the top level's warm pass beats "
                             "cold by this factor")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_serve.json")
    args = parser.parse_args(argv)

    payload = run_suite(
        levels=args.levels,
        requests_per_level=args.requests_per_level,
        jobs=args.jobs,
        executor=args.executor,
        batch_max=args.batch_max,
        coalesce_n=args.coalesce_n,
        output=args.output,
    )
    _print_report(payload)

    failures = []
    top = payload["curve"][f"c{max(args.levels)}"]
    if top["warm_speedup"] < args.min_warm_speedup:
        failures.append(
            f"warm speedup {top['warm_speedup']}x at c{max(args.levels)} "
            f"below required {args.min_warm_speedup}x"
        )
    roles = payload["coalesce"]["roles"]
    if roles.get("leader", 0) != 1:
        failures.append(f"expected exactly 1 single-flight leader, got {roles}")
    if payload["coalesce"]["distinct_bodies"] != 1:
        failures.append("coalesced responses were not byte-identical")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
