"""Figure 5b — whole-program overhead per hardening strategy.

Paper: cleartext 0.1% (gcc) - 2.7% (wget); RC4 0.2% - 3.7%; everything
under 4%.  "The performance overhead of our approach can be confined to
verification code" — the protected program's own code runs at full
speed, so total overhead stays small.

Our reproduction: all strategies stay under ~4% on every program, gcc
cheapest and wget the most expensive cleartext, with the strategy
ordering cleartext < xor < rc4 ~ linear.
"""

import pytest

from repro.core import STRATEGIES
from repro.corpus import PROGRAM_NAMES

import _shared

_rows = {}


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_fig5b_program_overhead(benchmark, name):
    base = _shared.baseline_run(name)

    def measure():
        return {
            strategy: 100.0
            * (_shared.protected_run(name, strategy).cycles / base.cycles - 1)
            for strategy in STRATEGIES
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    _rows[name] = row
    for strategy, overhead in row.items():
        assert overhead < 5.0, (name, strategy, overhead)  # paper: < 4%
    assert row["cleartext"] <= row["rc4"]


def test_fig5b_print_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in PROGRAM_NAMES:
        if name not in _rows:
            base = _shared.baseline_run(name)
            _rows[name] = {
                s: 100.0 * (_shared.protected_run(name, s).cycles / base.cycles - 1)
                for s in STRATEGIES
            }
    print()
    print("=== Figure 5b: whole-program overhead (%) ===")
    header = f"{'program':<8}" + "".join(f"{s:>12}" for s in STRATEGIES)
    print(header)
    for name in PROGRAM_NAMES:
        row = _rows[name]
        print(f"{name:<8}" + "".join(f"{row[s]:>11.2f}%" for s in STRATEGIES))
    clear = {n: _rows[n]["cleartext"] for n in PROGRAM_NAMES}
    assert min(clear, key=clear.get) == "gcc"  # paper: gcc cheapest (0.1%)
