"""The §IV-A running example, as shipped in examples/ptrace_detector.py."""

import pytest

from examples import ptrace_detector as demo
from repro.emu import run_image


@pytest.fixture(scope="module")
def protected():
    image, js_addr, mov_addr = demo.build_detector_image()
    return demo.protect(image, js_addr, mov_addr), js_addr, mov_addr


def test_layout_places_ret_in_branch_offset():
    image, js_addr, _ = demo.build_detector_image()
    assert image.read(js_addr + 1, 1) == b"\xc3"


def test_pristine_behaviour(protected):
    image, _, _ = protected
    assert run_image(image).exit_status == 42
    assert run_image(image, debugger_attached=True).exit_status == 99


def test_listing2_nop_attack_detected(protected):
    image, js_addr, _ = protected
    tampered = demo.crack_listing2(image, js_addr)
    # the crack does bypass the ptrace check...
    run = run_image(tampered, debugger_attached=True)
    assert run.exit_status != 99
    # ...but the program no longer works (chain corrupted)
    assert run.crashed or run.exit_status != 42


def test_immediate_rewrite_attack_detected(protected):
    image, js_addr, mov_addr = protected
    tampered = demo.crack_immediate(image, js_addr, mov_addr)
    run = run_image(tampered, debugger_attached=True)
    assert run.crashed or run.exit_status not in (42, 99)


def test_protection_does_not_slow_protected_code(protected):
    """The paper's key performance property: the detector itself runs at
    native speed; only the verification chain pays."""
    pristine, _, _ = demo.build_detector_image()
    from repro.emu import Emulator

    native = Emulator(pristine, max_steps=10_000)
    native.call_function(pristine.symbols["check_ptrace"].vaddr)
    protected_img, _, _ = protected
    prot = Emulator(protected_img, max_steps=10_000)
    prot.call_function(protected_img.symbols["check_ptrace"].vaddr)
    assert prot.cycles == native.cycles
