"""Protectability report arithmetic."""

from repro.rewrite import ProtectabilityReport, RULE_IMM, RULE_NEAR, format_fig6_table


def test_percentages_and_union():
    report = ProtectabilityReport("demo", total_code_bytes=100)
    report.rule(RULE_NEAR).add_span(range(0, 10))
    report.rule(RULE_IMM).add_span(range(5, 30))
    assert report.percent(RULE_NEAR) == 10.0
    assert report.percent(RULE_IMM) == 25.0
    assert report.percent_any() == 30.0  # union, not sum (paper's note)


def test_empty_report():
    report = ProtectabilityReport("empty", total_code_bytes=0)
    assert report.percent(RULE_NEAR) == 0.0
    assert report.percent_any() == 0.0


def test_table_formatting():
    report = ProtectabilityReport("demo", total_code_bytes=100)
    report.rule(RULE_NEAR).add_span(range(0, 5))
    table = format_fig6_table([report])
    assert "demo" in table
    assert "average" in table
    assert "5.0" in table
