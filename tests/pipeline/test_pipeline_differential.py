"""Differential guarantees of the parallel, cached pipeline.

The load-bearing property: caching and parallelism are *pure
plumbing*.  Whatever combination of cache state and worker count a run
uses, every protected image must be byte-identical and every report
equal to the uncached sequential reference.
"""

import pytest

from repro.cache import cache_session
from repro.core import ProtectConfig
from repro.corpus import PROGRAM_NAMES
from repro.pipeline import config_for_program, protect_all, protect_one


@pytest.fixture(scope="module")
def pipeline_runs(tmp_path_factory):
    """Full-corpus protect-all under four regimes sharing one cache dir."""
    cache_dir = str(tmp_path_factory.mktemp("parallax-cache"))
    with cache_session(cache_dir=cache_dir):
        uncached = protect_all(use_cache=False)
        cold = protect_all()
        warm = protect_all()
        parallel = protect_all(jobs=4)
    return {
        "uncached": uncached,
        "cold": cold,
        "warm": warm,
        "parallel": parallel,
    }


def test_all_regimes_cover_the_corpus_in_order(pipeline_runs):
    for results in pipeline_runs.values():
        assert [r.name for r in results] == list(PROGRAM_NAMES)


def test_images_byte_identical_across_regimes(pipeline_runs):
    reference = pipeline_runs["uncached"]
    for regime in ("cold", "warm", "parallel"):
        for ref, got in zip(reference, pipeline_runs[regime]):
            assert ref.image.canonical_bytes() == got.image.canonical_bytes(), (
                regime,
                got.name,
            )


def test_reports_identical_across_regimes(pipeline_runs):
    reference = pipeline_runs["uncached"]
    for regime in ("cold", "warm", "parallel"):
        for ref, got in zip(reference, pipeline_runs[regime]):
            assert ref.report.to_dict() == got.report.to_dict(), (regime, got.name)


def test_cache_hit_flags_reflect_cache_state(pipeline_runs):
    assert not any(r.cache_hit for r in pipeline_runs["uncached"])
    assert not any(r.cache_hit for r in pipeline_runs["cold"])
    assert all(r.cache_hit for r in pipeline_runs["warm"])
    assert all(r.cache_hit for r in pipeline_runs["parallel"])


def test_result_to_dict_shape(pipeline_runs):
    payload = pipeline_runs["warm"][0].to_dict()
    assert payload["program"] == PROGRAM_NAMES[0]
    assert payload["cache_hit"] is True
    assert payload["worker_pid"] > 0
    assert payload["elapsed_s"] >= 0
    assert "chains" in payload["report"]


def test_parallel_compute_matches_sequential_without_cache():
    """jobs=N must *compute* the same bytes, not merely replay a cache."""
    names = ["wget", "gzip"]
    with cache_session(enabled=False):
        sequential = protect_all(names=names, jobs=1, use_cache=False)
        fanned = protect_all(names=names, jobs=2, use_cache=False)
    pids = {r.worker_pid for r in fanned}
    assert len(pids) == 2  # genuinely ran in two processes
    for seq, par in zip(sequential, fanned):
        assert seq.image.canonical_bytes() == par.image.canonical_bytes()
        assert seq.report.to_dict() == par.report.to_dict()


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        protect_all(jobs=0)


def test_config_for_program_defaults_to_digest_function():
    config = config_for_program("nginx", None)
    assert config.verification_functions == ["digest_nginx"]
    explicit = config_for_program(
        "nginx", ProtectConfig(verification_functions=["digest_wget"])
    )
    assert explicit.verification_functions == ["digest_wget"]


def test_protect_one_respects_session_cache(small_wget):
    config = ProtectConfig(verification_functions=["digest_wget"])
    with cache_session():
        first = protect_one(small_wget, config)
        second = protect_one(small_wget, config)
    assert first.image.canonical_bytes() == second.image.canonical_bytes()
    # store_blobs: the hit deserializes a fresh image, never an alias
    assert first.image is not second.image
    with cache_session(enabled=False):
        recomputed = protect_one(small_wget, config)
    assert recomputed.image.canonical_bytes() == first.image.canonical_bytes()
