"""Labeled metric families: series keys, cardinality guard, export."""

import pytest

from repro.telemetry import MetricsRegistry, prometheus_text
from repro.telemetry.metrics import (
    CARDINALITY_OVERFLOW_COUNTER,
    DEFAULT_MAX_SERIES,
    format_series,
)


def test_labeled_series_are_independent_instruments():
    registry = MetricsRegistry()
    registry.counter("protect.runs").inc(1)
    registry.counter("protect.runs", labels={"request": "r1"}).inc(2)
    registry.counter("protect.runs", labels={"request": "r2"}).inc(3)
    samples = registry.to_dict()
    assert samples["protect.runs"]["value"] == 1
    assert samples['protect.runs{request="r1"}']["value"] == 2
    assert samples['protect.runs{request="r2"}']["value"] == 3
    # same labels -> same instrument
    registry.counter("protect.runs", labels={"request": "r1"}).inc()
    assert registry.get("protect.runs", {"request": "r1"}).value == 3
    assert registry.family_total("protect.runs") == 1 + 3 + 3


def test_series_key_renders_sorted_labels():
    assert format_series("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
    registry = MetricsRegistry()
    registry.gauge("g", labels={"z": "9", "a": "0"}).set(1.0)
    assert list(registry.to_dict()) == ['g{a="0",z="9"}']


def test_sample_name_field_stays_bare():
    registry = MetricsRegistry()
    registry.counter("c", labels={"k": "v"}).inc()
    (key, sample), = registry.to_dict().items()
    assert key == 'c{k="v"}'
    assert sample["name"] == "c"
    assert sample["labels"] == {"k": "v"}


def test_base_labels_stamp_every_instrument():
    registry = MetricsRegistry(base_labels={"request": "r7"})
    registry.counter("protect.runs").inc()
    registry.histogram("lat", buckets=(1.0,), labels={"rule": "x"}).observe(0.5)
    keys = set(registry.to_dict())
    assert 'protect.runs{request="r7"}' in keys
    assert 'lat{request="r7",rule="x"}' in keys


def test_le_label_name_is_reserved():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c", labels={"le": "1"})


def test_cardinality_guard_collapses_runaway_series():
    registry = MetricsRegistry(max_series=4)
    for i in range(10):
        registry.counter("hot", labels={"addr": f"0x{i:x}"}).inc()
    family = registry.series("hot")
    # 4 real series + the shared overflow series
    assert len(family) == 5
    overflow = registry.get("hot", {"overflow": "true"})
    assert overflow is not None and overflow.value == 6
    guard = registry.get(CARDINALITY_OVERFLOW_COUNTER)
    assert guard is not None and guard.value == 6
    # totals survive the collapse
    assert registry.family_total("hot") == 10


def test_unlabeled_series_is_always_admitted():
    registry = MetricsRegistry(max_series=1)
    registry.counter("c", labels={"k": "a"}).inc()
    # the unlabeled series is not subject to the labeled-series cap
    registry.counter("c").inc(5)
    assert registry.get("c").value == 5
    assert registry.get(CARDINALITY_OVERFLOW_COUNTER) is None


def test_max_series_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS_MAX_SERIES", "2")
    registry = MetricsRegistry()
    assert registry.max_series == 2
    monkeypatch.delenv("REPRO_METRICS_MAX_SERIES")
    assert MetricsRegistry().max_series == DEFAULT_MAX_SERIES


def test_merge_samples_preserves_labels_and_applies_extra():
    source = MetricsRegistry()
    source.counter("c", labels={"engine": "trace"}).inc(2)
    source.counter("c").inc(1)
    dest = MetricsRegistry()
    dest.merge_samples(source.to_dict(), extra_labels={"request": "r1"})
    samples = dest.to_dict()
    assert samples['c{engine="trace",request="r1"}']["value"] == 2
    assert samples['c{request="r1"}']["value"] == 1


def test_merge_samples_sample_labels_win_over_extra():
    source = MetricsRegistry()
    source.counter("c", labels={"request": "inner"}).inc(1)
    dest = MetricsRegistry()
    dest.merge_samples(source.to_dict(), extra_labels={"request": "outer"})
    assert 'c{request="inner"}' in dest.to_dict()


def test_contains_accepts_family_and_series_key():
    registry = MetricsRegistry()
    registry.counter("c", labels={"k": "v"}).inc()
    assert "c" in registry
    assert 'c{k="v"}' in registry
    assert 'c{k="other"}' not in registry
    assert "absent" not in registry


# ----------------------------------------------------------------------
# Prometheus rendering
# ----------------------------------------------------------------------


def test_prometheus_renders_labels_with_one_type_line_per_family():
    registry = MetricsRegistry()
    registry.counter("protect.runs", labels={"request": "r1"}).inc(2)
    registry.counter("protect.runs", labels={"request": "r2"}).inc(3)
    registry.counter("protect.runs").inc(1)
    text = prometheus_text(registry)
    assert text.count("# TYPE protect_runs_total counter") == 1
    assert 'protect_runs_total{request="r1"} 2' in text
    assert 'protect_runs_total{request="r2"} 3' in text
    assert "protect_runs_total 1" in text.splitlines()


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter(
        "c", labels={"path": 'a\\b"c\nd'}
    ).inc()
    text = prometheus_text(registry)
    assert 'c_total{path="a\\\\b\\"c\\nd"} 1' in text


def test_prometheus_sanitizes_label_names():
    registry = MetricsRegistry()
    registry.counter("c", labels={"bad-name": "v", "0lead": "w"}).inc()
    text = prometheus_text(registry)
    assert 'bad_name="v"' in text
    assert '_0lead="w"' in text


def test_prometheus_labeled_histogram_bucket_series():
    registry = MetricsRegistry()
    registry.histogram(
        "lat", buckets=(1.0, 2.0), labels={"rule": "r"}
    ).observe(1.5)
    text = prometheus_text(registry)
    assert 'lat_bucket{rule="r",le="1.0"} 0' in text
    assert 'lat_bucket{rule="r",le="2.0"} 1' in text
    assert 'lat_bucket{rule="r",le="+Inf"} 1' in text
    assert 'lat_count{rule="r"} 1' in text
    assert text.count("# TYPE lat histogram") == 1


def test_prometheus_roundtrips_exported_samples_dict():
    registry = MetricsRegistry()
    registry.counter("c", labels={"k": "v"}).inc(4)
    assert prometheus_text(registry.to_dict()) == prometheus_text(registry)
