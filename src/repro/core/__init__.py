"""Parallax core: selection, protection pipeline, dynamic chains, stubs."""

from .config import (
    ProtectConfig,
    STRATEGIES,
    STRATEGY_CLEARTEXT,
    STRATEGY_LINEAR,
    STRATEGY_RC4,
    STRATEGY_XOR,
)
from .microchains import (
    MicrochainError,
    MicrochainProtected,
    protect_microchains,
)
from .protector import (
    ENC_BASE,
    GADGETS_BASE,
    Parallax,
    ProtectError,
    ProtectedProgram,
    ROPCHAINS_BASE,
    ROPDATA_BASE,
    RT_BASE,
    STUBS_BASE,
    protect_program,
)
from .report import ChainRecord, ProtectionReport
from .selection import (
    CandidateInfo,
    SelectionError,
    is_chain_translatable,
    rank_candidates,
    select_verification_function,
)
from .stubs import StubLayout, build_loader_stub

__all__ = [
    "ProtectConfig", "STRATEGIES",
    "STRATEGY_CLEARTEXT", "STRATEGY_XOR", "STRATEGY_RC4", "STRATEGY_LINEAR",
    "Parallax", "ProtectError", "ProtectedProgram", "protect_program",
    "GADGETS_BASE", "STUBS_BASE", "ROPDATA_BASE", "ROPCHAINS_BASE",
    "RT_BASE", "ENC_BASE",
    "ChainRecord", "ProtectionReport",
    "CandidateInfo", "SelectionError", "is_chain_translatable",
    "rank_candidates", "select_verification_function",
    "StubLayout", "build_loader_stub",
    "MicrochainError", "MicrochainProtected", "protect_microchains",
]
