"""§V-B — probabilistic function chains by linear combination.

The paper: N index arrays give up to N^l chain variants; each execution
checks a probabilistically chosen gadget subset, so an attacker cannot
be sure a modification survives every run.

Measured here: the size of the variant space, the number of distinct
gadgets exercised across variants (vs a single deterministic chain),
and actual runtime variation of the regenerated chain bytes.
"""

import pytest

import _shared
from repro.corpus import build_wget
from repro.core import Parallax, ProtectConfig


def test_variant_space(benchmark):
    def measure():
        program = build_wget(blocks=2, chunks=10)
        single = Parallax(
            ProtectConfig(strategy="cleartext", verification_functions=["digest_wget"])
        ).protect(program)
        prob = Parallax(
            ProtectConfig(
                strategy="linear",
                verification_functions=["digest_wget"],
                n_variants=4,
            )
        ).protect(program)
        one = len(set(single.report.chains[0].gadget_addresses))
        many = len(set(prob.report.chains[0].gadget_addresses))
        record = prob.report.chains[0]
        return one, many, record.variants, record.word_count

    one, many, variants, words = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("=== §V-B variant space ===")
    print(f"deterministic chain gadget set : {one}")
    print(f"probabilistic  chain gadget set: {many} (across {variants} variants)")
    print(f"variant space upper bound      : {variants}^{words} = {float(variants**words):.2e}")
    assert many > one            # a small chain verifies a larger gadget set
    assert variants ** words > 10**6
