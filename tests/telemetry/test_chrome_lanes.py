"""Chrome-trace export: per-worker process lanes via metadata events."""

from repro.telemetry import chrome_trace


def _span(name, span_id, start, dur, **attributes):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": None,
        "start_ts": start,
        "duration_s": dur,
        "status": "ok",
        "attributes": attributes,
    }


def test_worker_pid_spans_land_in_their_own_lane():
    payload = chrome_trace(
        [
            _span("protect_all", 1, 0.0, 2.0),
            _span("protect", 2, 0.1, 0.9, worker_pid=4242),
            _span("protect", 3, 0.2, 0.8, worker_pid=4243),
        ],
        pid=1000,
    )
    events = payload["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["pid"] for e in spans if e["name"] == "protect"} == {4242, 4243}
    assert next(e for e in spans if e["name"] == "protect_all")["pid"] == 1000


def test_metadata_events_name_every_lane():
    payload = chrome_trace(
        [_span("protect", 2, 0.1, 0.9, worker_pid=4242)],
        pid=1000,
        process_name="repro",
    )
    metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    names = {
        (e["pid"], e["name"]): e["args"]["name"] for e in metas
    }
    assert names[(1000, "process_name")] == "repro"
    assert names[(1000, "thread_name")] == "spans"
    assert names[(4242, "process_name")] == "repro worker 4242"
    assert names[(4242, "thread_name")] == "worker spans"
    # metadata precedes the span events so viewers name lanes up front
    first_span = next(
        i for i, e in enumerate(payload["traceEvents"]) if e["ph"] == "X"
    )
    assert all(
        e["ph"] != "M" for e in payload["traceEvents"][first_span:]
    )


def test_worker_meta_emitted_once_per_pid():
    payload = chrome_trace(
        [
            _span("a", 1, 0.0, 1.0, worker_pid=7),
            _span("b", 2, 1.0, 1.0, worker_pid=7),
        ],
        pid=1,
    )
    metas = [
        e
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["pid"] == 7 and e["name"] == "process_name"
    ]
    assert len(metas) == 1


def test_unparseable_worker_pid_falls_back_to_parent_lane():
    payload = chrome_trace(
        [_span("a", 1, 0.0, 1.0, worker_pid="not-a-pid")], pid=55
    )
    (span,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert span["pid"] == 55
