"""decode_gadget_at buffer-boundary semantics.

A gadget whose return terminates *exactly* at the buffer end is valid;
anything extending past the end is not.  The bound check runs before an
instruction is accepted, so the distinction holds even for a
(hypothetically permissive) decoder that fabricates instructions past
the end — it is a property of the finder, not of decoder strictness.
"""

import pytest

import repro.gadgets.finder as finder_mod
from repro.gadgets import decode_gadget_at, find_gadgets_in_bytes
from repro.gadgets.types import GadgetOp


def test_ret_terminating_exactly_at_buffer_end_is_a_gadget():
    data = bytes([0x58, 0xC3])  # pop eax; ret — ret is the last byte
    gadget = decode_gadget_at(data, 0, base=0x400)
    assert gadget is not None
    assert gadget.kind.op == GadgetOp.LOAD_CONST
    assert gadget.end == 0x400 + len(data)


def test_ret_imm16_terminating_exactly_at_buffer_end_is_a_gadget():
    data = bytes([0x58, 0xC2, 0x04, 0x00])  # pop eax; ret 4 — ends at end
    gadget = decode_gadget_at(data, 0)
    assert gadget is not None
    assert gadget.ret_imm == 4
    assert gadget.end == len(data)


def test_ret_imm16_truncated_by_buffer_end_is_rejected():
    # ret 4's immediate is cut off: 0xC2 needs two more bytes.
    for data in (bytes([0x58, 0xC2]), bytes([0x58, 0xC2, 0x04])):
        assert decode_gadget_at(data, 0) is None
        assert find_gadgets_in_bytes(data) == []


def test_offset_at_or_past_buffer_end_is_rejected():
    data = bytes([0xC3])
    assert decode_gadget_at(data, len(data)) is None
    assert decode_gadget_at(data, len(data) + 3) is None
    assert decode_gadget_at(b"", 0) is None


def test_bound_check_runs_before_the_instruction_is_accepted(monkeypatch):
    """Even if the decoder fabricated a return that overruns the buffer,
    the finder must reject it: the bound check precedes acceptance, so a
    buffer-end gadget and an overrunning one are distinguished by the
    finder itself, not by decoder behavior."""

    class OverrunningRet:
        length = 4  # claims 4 bytes from a 2-byte buffer
        is_return = True
        is_control_flow = True

    def fake_decode(data, pos, address=None):
        return OverrunningRet()

    monkeypatch.setattr(finder_mod, "decode", fake_decode)
    monkeypatch.setattr(
        finder_mod, "classify",
        lambda instructions: pytest.fail(
            "classify() must never see an overrunning instruction"
        ),
    )
    assert decode_gadget_at(b"\x00\xc3", 0) is None
    # The memoized scanner takes the same bound-first path.
    assert find_gadgets_in_bytes(b"\x00\xc3") == []
