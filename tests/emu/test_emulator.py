"""Instruction semantics, flags, stack, faults, the RAS model."""

import pytest

from repro.binary import BinaryImage, Perm, Section
from repro.emu import (
    BadFetch, DivideError, Emulator, Halted, StepLimitExceeded,
)
from repro.x86 import Assembler, EAX, EBX, ECX, EDX, ESI, Imm, mem32


def run_snippet(build, args=(), setup=None):
    a = Assembler(base=0x1000)
    build(a)
    a.ret()
    img = BinaryImage("t")
    img.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
    img.add_section(Section(".data", 0x8000, bytes(256), Perm.RW))
    emu = Emulator(img, max_steps=100_000)
    if setup:
        setup(emu)
    return emu.call_function(0x1000, list(args)), emu


class TestArithmetic:
    def test_add_with_carry_chain(self):
        def build(a):
            a.mov(EAX, Imm(0xFFFFFFFF, 32))
            a.add(EAX, 1)          # CF=1, eax=0
            a.mov(EBX, 0)
            a.adc(EBX, 0)          # ebx = CF
            a.mov(EAX, EBX)
        value, _ = run_snippet(build)
        assert value == 1

    def test_sub_borrow_chain(self):
        def build(a):
            a.mov(EAX, 0)
            a.sub(EAX, 1)          # CF=1 (borrow)
            a.mov(EAX, 0)
            a.sbb(EAX, 0)          # eax = -CF
        value, _ = run_snippet(build)
        assert value == 0xFFFFFFFF

    def test_signed_overflow_flag(self):
        def build(a):
            a.mov(EAX, Imm(0x7FFFFFFF, 32))
            a.add(EAX, 1)
            a.mov(EAX, 0)
            a.jo("overflow")
            a.ret()
            a.label("overflow")
            a.mov(EAX, 1)
        value, _ = run_snippet(build)
        assert value == 1

    def test_mul_div_roundtrip(self):
        def build(a):
            a.mov(EAX, 1234)
            a.mov(ECX, 77)
            a.mul(ECX)            # edx:eax = 95018
            a.div(ECX)            # back to 1234
        value, _ = run_snippet(build)
        assert value == 1234

    def test_idiv_negative(self):
        def build(a):
            a.mov(EAX, Imm(-7 & 0xFFFFFFFF, 32))
            a.cdq()
            a.mov(ECX, 2)
            a.idiv(ECX)
        value, _ = run_snippet(build)
        assert value == (-3) & 0xFFFFFFFF  # truncation toward zero

    def test_divide_by_zero_faults(self):
        with pytest.raises(DivideError):
            run_snippet(lambda a: (a.mov(EAX, 1), a.xor(ECX, ECX), a.div(ECX)))

    def test_sar_is_arithmetic(self):
        def build(a):
            a.mov(EAX, Imm(-16 & 0xFFFFFFFF, 32))
            a.sar(EAX, 2)
        value, _ = run_snippet(build)
        assert value == (-4) & 0xFFFFFFFF

    def test_shifts_and_masks(self):
        def build(a):
            a.mov(EAX, Imm(0x80000001, 32))
            a.shr(EAX, 1)
            a.shl(EAX, 1)
        value, _ = run_snippet(build)
        assert value == 0x80000000


class TestStackAndCalls:
    def test_push_pop(self):
        def build(a):
            a.push(Imm(0x1234, 32))
            a.pop(EAX)
        value, _ = run_snippet(build)
        assert value == 0x1234

    def test_pushad_popad_preserve(self):
        def build(a):
            a.mov(EBX, 42)
            a.pushad()
            a.mov(EBX, 99)
            a.popad()
            a.mov(EAX, EBX)
        value, _ = run_snippet(build)
        assert value == 42

    def test_call_function_args(self):
        def build(a):
            a.mov(EAX, mem32(a.__class__ and __import__("repro.x86", fromlist=["ESP"]).ESP, disp=4))
        value, _ = run_snippet(build, args=(55,))
        assert value == 55

    def test_ras_counts_rop_as_mispredicted(self):
        # A paired call/ret predicts; a ROP-style bare ret does not.
        a = Assembler(base=0x1000)
        a.call("callee")
        a.ret()
        a.label("callee")
        a.ret()
        img = BinaryImage("t")
        img.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
        emu = Emulator(img, max_steps=100)
        emu.call_function(0x1000)
        paired = emu.ret_mispredicts
        # Now a chain: ret into an address never set up by call
        emu2 = Emulator(img, max_steps=100)
        emu2.push(0x1005)  # some code address
        emu2.cpu.eip = 0x1005
        assert paired <= 1


class TestFaults:
    def test_fetch_unmapped(self):
        a = Assembler(base=0x1000)
        a.jmp(mem32(disp=0x8000))
        img = BinaryImage("t")
        img.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
        img.add_section(Section(".data", 0x8000, (0x99999999).to_bytes(4, "little"), Perm.RW))
        emu = Emulator(img, max_steps=10)
        with pytest.raises(BadFetch):
            while True:
                emu.step()

    def test_hlt(self):
        with pytest.raises(Halted):
            run_snippet(lambda a: a.hlt())

    def test_step_limit(self):
        a = Assembler(base=0x1000)
        a.label("spin")
        a.jmp("spin")
        img = BinaryImage("t")
        img.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
        emu = Emulator(img, max_steps=100)
        emu.cpu.eip = 0x1000
        with pytest.raises(StepLimitExceeded):
            while True:
                emu.step()

    def test_run_captures_fault(self):
        img = BinaryImage("t")
        img.add_section(Section(".text", 0x1000, b"\xf4", Perm.RX))
        img.entry = 0x1000
        from repro.emu import run_image
        result = run_image(img)
        assert result.crashed


class TestSelfModifyingCode:
    def test_decode_cache_invalidation(self):
        # Code stores a new opcode over itself; the emulator must see it.
        a = Assembler(base=0x1000)
        a.mov(EAX, Imm(0x90909090, 32))      # four nop opcodes
        a.mov(mem32(disp=0x100B), EAX)       # overwrite marked instruction
        a.label("target")
        a.raw(b"\xf4\x90\x90\x90")           # hlt (to be replaced by nop)
        a.mov(EAX, 123)
        a.ret()
        code = a.assemble()
        assert a.address_of("target") == 0x100B
        assert code[0x0B] == 0xF4
        img = BinaryImage("t")
        img.add_section(Section(".text", 0x1000, code, Perm.RWX))
        emu = Emulator(img, max_steps=100)
        value = emu.call_function(0x1000)
        assert value == 123
