"""Verification-code replacement attacks (§VI-B).

The adversary tampers with the chain-loading machinery itself: wiping
the chain, replacing it with garbage, or fully reverse-engineering the
verification function and re-creating it as native code (the paper's
admitted endgame, countered by the §VI-C cross-checksumming network
which is orthogonal to Parallax itself).
"""

from __future__ import annotations

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..core.protector import ProtectedProgram, ROPCHAINS_BASE


def wipe_chain_patch(protected: ProtectedProgram) -> Patch:
    """Zero the live chain area — the crudest replacement attempt."""
    image = protected.image
    section = image.section(".ropchains")
    old = bytes(section.data)
    return Patch(section.vaddr, old, bytes(len(old)), reason="wipe_chain")


def garbage_chain_patch(protected: ProtectedProgram, seed: int = 0xBAD) -> Patch:
    """Replace the chain with plausible-looking but wrong gadget words."""
    import random

    rng = random.Random(seed)
    image = protected.image
    section = image.section(".ropchains")
    old = bytes(section.data)
    text = image.text
    words = [
        (text.vaddr + rng.randrange(text.size)) & 0xFFFFFFFF
        for _ in range(len(old) // 4)
    ]
    new = b"".join(w.to_bytes(4, "little") for w in words)
    return Patch(section.vaddr, old, new, reason="garbage_chain")


def reconstruct_function_patch(protected: ProtectedProgram, name: str) -> Patch:
    """Re-create the verification function natively (full reverse
    engineering): recompile its IR and overwrite the redirected entry.

    This models the strongest §VI-B adversary.  It succeeds at running
    the program — but it silently removes the implicit verification,
    which is exactly why the paper layers cross-checksumming over the
    (data-resident, Wurster-immune) chains.
    """
    from ..ropc import compile_functions

    program = protected.program
    image = protected.image
    symbol = image.symbols[name]
    code, spans, _ = compile_functions(
        [program.functions[name]], base=symbol.vaddr, entry_main=None
    )
    start, end = spans[name]
    body = code[start:end]
    if len(body) > symbol.size:
        raise ValueError("reconstructed function does not fit")
    old = image.read(symbol.vaddr, len(body))
    return Patch(symbol.vaddr, old, body, reason=f"reconstruct({name})")
