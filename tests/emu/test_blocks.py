"""The superblock engine: caching, invalidation, self-modifying-code
aborts, step-budget parity and exact-step execution."""

import pytest

import repro.emu.blocks as blocks_mod
from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator, StepLimitExceeded
from repro.x86 import Assembler, EAX, EBX, ECX, EDX, Imm, mem32

BASE = 0x1000


def make_image(build):
    a = Assembler(base=BASE)
    build(a)
    a.ret()
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, a.assemble(), Perm.RX))
    img.add_section(Section(".data", 0x8000, bytes(256), Perm.RW))
    return img


def build_loop(a, n=50):
    a.mov(ECX, Imm(n, 32))
    a.mov(EAX, 0)
    a.label("top")
    a.add(EAX, ECX)
    a.dec(ECX)
    a.jne("top")


def call_both(img, args=(), max_steps=100_000):
    """Call BASE under both engines; assert identical observable state."""
    out = []
    for engine in ("step", "block"):
        emu = Emulator(img, max_steps=max_steps, engine=engine)
        value = emu.call_function(BASE, list(args))
        out.append((value, emu.steps, emu.cycles, emu.ret_mispredicts))
    assert out[0] == out[1], "engines diverged"
    return out[0]


def test_loop_matches_step_engine():
    assert call_both(make_image(build_loop))[0] == sum(range(1, 51))


def test_blocks_are_cached_across_calls():
    emu = Emulator(make_image(build_loop), max_steps=100_000, engine="block")
    emu.call_function(BASE)
    compiled = emu.blocks.compiled
    assert compiled >= 1
    assert emu.blocks.hits >= 1  # the loop re-enters its own body block
    emu.call_function(BASE)
    assert emu.blocks.compiled == compiled  # warm: no recompilation


def test_self_modifying_store_aborts_block():
    # Overwrite four upcoming `inc ebx` with `dec ebx` from within the
    # same straight-line block; execution must see the new bytes.
    probe = Assembler(base=BASE)
    probe.mov(EAX, Imm(0, 32))
    probe.mov(mem32(EAX), Imm(0x4B4B4B4B, 32))
    target = probe.here

    def build(a):
        a.mov(EAX, Imm(target, 32))
        a.mov(mem32(EAX), Imm(0x4B4B4B4B, 32))
        a.raw(b"\x43\x43\x43\x43")  # inc ebx x4 -> becomes dec ebx x4
        a.mov(EAX, EBX)

    img = make_image(build)
    value, _, _, _ = call_both(img)
    assert value == 0xFFFFFFFC  # the dec's ran, not the inc's

    emu = Emulator(img, max_steps=100_000, engine="block")
    emu.call_function(BASE)
    assert emu.blocks.write_aborts >= 1


def test_code_write_invalidates_cached_blocks():
    a = Assembler(base=BASE)
    build_loop(a)
    a.ret()
    a.raw(b"\xcc")  # never-executed pad byte: the tamper target
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, a.assemble(), Perm.RX))
    emu = Emulator(img, max_steps=100_000, engine="block")
    first = emu.call_function(BASE)
    compiled = emu.blocks.compiled
    # Tamper the pad byte: behaviour is unchanged, but the code page's
    # version bumps, so every block compiled over it must be dropped.
    emu.memory.write_u8(BASE + img.text.size - 1, 0x90)
    assert emu.call_function(BASE) == first
    assert emu.blocks.invalidated >= 1
    assert emu.blocks.compiled > compiled  # recompiled after the write


def test_block_cache_generations_rotate(monkeypatch):
    monkeypatch.setattr(blocks_mod, "BLOCK_CACHE_GENERATION", 1)
    img = make_image(build_loop)
    emu = Emulator(img, max_steps=100_000, engine="block")
    value = emu.call_function(BASE)
    assert value == sum(range(1, 51))
    # generation size 1 forces rotation, but old-generation promotion
    # keeps the loop blocks warm: far fewer compiles than iterations.
    assert emu.blocks.compiled < 10
    assert emu.blocks.hits > 40


def test_step_limit_parity():
    img = make_image(build_loop)
    states = []
    for engine in ("step", "block"):
        emu = Emulator(img, max_steps=37, engine=engine)
        with pytest.raises(StepLimitExceeded):
            emu.call_function(BASE)
        states.append((emu.steps, emu.cycles, emu.cpu.eip, list(emu.cpu.regs)))
    assert states[0] == states[1]


def test_run_steps_lands_on_exact_boundary():
    img = make_image(build_loop)
    reference = Emulator(img, max_steps=100_000, engine="step")
    reference.cpu.eip = BASE
    for _ in range(17):  # lands mid-way through the loop-body block
        reference.step()

    emu = Emulator(img, max_steps=100_000, engine="block")
    emu.cpu.eip = BASE
    emu.blocks.run_steps(17)
    assert emu.steps == reference.steps == 17
    assert emu.cpu.eip == reference.cpu.eip
    assert emu.cpu.regs == reference.cpu.regs
    assert emu.cycles == reference.cycles


def test_stack_code_is_never_cached():
    # Code on an unversioned page (the stack) has no write counter, so
    # neither the decode cache nor the block cache may retain it.
    code = Assembler(base=0x00BC_0000)
    code.mov(EAX, Imm(7, 32))
    code.ret()
    img = make_image(build_loop)
    emu = Emulator(img, max_steps=100_000, engine="block")
    assert not emu.memory.page_is_versioned(0x00BC_0000)
    emu.memory.write(0x00BC_0000, code.assemble())
    assert emu.call_function(0x00BC_0000) == 7
    compiled = emu.blocks.compiled
    assert emu.call_function(0x00BC_0000) == 7
    assert emu.blocks.compiled == compiled + 1  # recompiled, not cached


def test_decode_cache_generations_rotate(monkeypatch):
    import repro.emu.emulator as emulator_mod

    monkeypatch.setattr(emulator_mod, "DECODE_CACHE_GENERATION", 2)
    emu = Emulator(make_image(build_loop), max_steps=100_000, engine="step")
    assert emu.call_function(BASE) == sum(range(1, 51))
    assert len(emu._decode_cache) <= 2
