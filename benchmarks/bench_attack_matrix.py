"""§VI / §IX — the attack matrix.

Static tampering vs the Wurster instruction-cache attack, against an
unprotected binary, self-checksumming, and Parallax.  Expected:

=============  ============  =======================
scheme         static patch  wurster i-cache patch
=============  ============  =======================
unprotected    undetected    undetected
checksumming   DETECTED      undetected  <- Wurster's result
parallax       DETECTED      DETECTED    <- the paper's contribution
=============  ============  =======================
"""

import pytest

from repro.attacks import evaluate_patch_attack, evaluate_wurster_attack
from repro.baselines import ChecksummedProgram
from repro.binary import Patch
from repro.core import Parallax, ProtectConfig
from repro.corpus import build_gzip

COLD_FUNCTION = "gz_fill_005"


def _setting():
    program = build_gzip(blocks=2, positions=6)
    goal = program.run()
    cold = program.image.symbols[COLD_FUNCTION]
    parallax = Parallax(
        ProtectConfig(
            strategy="cleartext",
            verification_functions=["digest_gzip"],
            protect_addresses=list(range(cold.vaddr, cold.end)),
        )
    ).protect(program)
    checksummed = ChecksummedProgram(build_gzip(blocks=2, positions=6), guards=3)
    return program, goal, parallax, checksummed


def _patch(image, protected=None):
    symbol = image.symbols[COLD_FUNCTION]
    if protected is not None:
        addr = next(
            a for a in protected.report.chains[0].gadget_addresses
            if symbol.vaddr <= a < symbol.end
        )
    else:
        addr = symbol.vaddr + 8
    old = image.read(addr, 1)
    return Patch(addr, old, bytes([old[0] ^ 0xFF]))


def test_attack_matrix(benchmark):
    def run_matrix():
        program, goal, parallax, checksummed = _setting()
        rows = {}
        for label, image, prot in (
            ("unprotected", program.image, None),
            ("checksumming", checksummed.image, None),
            ("parallax", parallax.image, parallax),
        ):
            patch = _patch(image, prot)
            rows[label] = (
                evaluate_patch_attack(image, [patch], goal, label).detected,
                evaluate_wurster_attack(image, [patch], goal, label).detected,
            )
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    print("=== Attack matrix (static, wurster) detected? ===")
    for label, (static, wurster) in rows.items():
        print(f"{label:<14} static={'DETECTED' if static else 'undetected':<12} "
              f"wurster={'DETECTED' if wurster else 'undetected'}")
    assert rows["unprotected"] == (False, False)
    assert rows["checksumming"] == (True, False)   # Wurster defeats it
    assert rows["parallax"] == (True, True)        # Parallax does not care
