"""The trace-linking engine: promotion and deferred compilation, side
exits, invalidation, generation rotation and fused ret-group parity."""

import pytest

import repro.emu.traces as traces_mod
from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator
from repro.x86 import Assembler, EAX, EBX, ECX, EDX, ESI, ESP, Imm

BASE = 0x1000
DATA = 0x8000

ENGINES = ("step", "block", "trace")


def make_image(build, data=bytes(256)):
    a = Assembler(base=BASE)
    build(a)
    a.ret()
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, a.assemble(), Perm.RX))
    img.add_section(Section(".data", DATA, data, Perm.RW))
    return img


def build_loop(a, n=50):
    # Trace-shaped loop: superblocks terminate at jmp/call/ret and run
    # *through* conditional jumps, so the back edge must be a ``jmp``
    # (a jcc back edge side-exits mid-block, which truncates any
    # recording).  The ``je`` exit stays interior: while the loop is
    # hot it falls through (the block completes) and the final
    # iteration's taken ``je`` is a genuine trace side exit.
    a.mov(ECX, Imm(n, 32))
    a.mov(EAX, 0)
    a.label("top")
    a.add(EAX, ECX)
    a.jmp("mid")
    a.label("mid")
    a.dec(ECX)
    a.je("done")
    a.jmp("top")
    a.label("done")


def call_all(img, args=(), max_steps=1_000_000):
    """Call BASE under all three engines; assert identical state."""
    out = {}
    for engine in ENGINES:
        emu = Emulator(img, max_steps=max_steps, engine=engine)
        value = emu.call_function(BASE, list(args))
        out[engine] = (value, emu.steps, emu.cycles, emu.ret_mispredicts)
    assert all(sig == out["step"] for sig in out.values()), out
    return out["step"]


def test_loop_matches_step_engine():
    img = make_image(lambda a: build_loop(a, 200))
    assert call_all(img)[0] == sum(range(1, 201))
    emu = Emulator(img, max_steps=1_000_000, engine="trace")
    emu.call_function(BASE)
    # the loop promoted, recorded, confirmed and compiled within one
    # call; a looping trace iterates in place, so one dispatch retires
    # hundreds of instructions
    assert emu.traces.compiled >= 1
    assert emu.traces.hits >= 1
    assert emu.traces.retired > 500
    # the final iteration's taken `je` is an in-trace guard failure
    assert emu.traces.side_exit_fallbacks >= 1


def test_promotion_requires_threshold_and_confirmation():
    # 9 iterations: the head barely crosses TRACE_HOT_THRESHOLD (8) and
    # the recording/confirmation dispatches eat the rest — no compile.
    emu = Emulator(
        make_image(lambda a: build_loop(a, 9)),
        max_steps=1_000_000, engine="trace",
    )
    emu.call_function(BASE)
    assert emu.traces.compiled == 0
    # 64 iterations: promotion + recording + deferred-compile proof all
    # complete, and the trace then serves the remaining iterations.
    emu = Emulator(
        make_image(lambda a: build_loop(a, 64)),
        max_steps=1_000_000, engine="trace",
    )
    emu.call_function(BASE)
    assert emu.traces.compiled >= 1
    assert emu.traces.hits >= 1


def test_deferred_compile_demands_reuse_proof(monkeypatch):
    # Divisor 1 makes the proof requirement 1 + len(path) re-dispatches;
    # a 14-iteration loop promotes and records but never proves enough
    # reuse, so the path stays parked and nothing is compiled.
    monkeypatch.setattr(traces_mod, "PENDING_CONFIRM_DIVISOR", 1)
    emu = Emulator(
        make_image(lambda a: build_loop(a, 14)),
        max_steps=1_000_000, engine="trace",
    )
    emu.call_function(BASE)
    assert emu.traces.compiled == 0
    assert emu.traces._pending  # recorded path parked, awaiting proof
    # enough further executions convert the parked path into a trace
    emu.call_function(BASE)
    assert emu.traces.compiled >= 1
    assert not emu.traces._pending


def test_cold_branch_direction_side_exits():
    # The first 100 iterations fall through the `jle` (the compiled
    # trace's hot direction); once ecx drops to 100 the guard on that
    # interior jcc fails every iteration: side exit, block-engine
    # fallback at the actual target.
    def build(a):
        a.mov(ECX, Imm(200, 32))
        a.mov(EAX, 0)
        a.label("top")
        a.add(EAX, ECX)
        a.jmp("mid")
        a.label("mid")
        a.cmp(ECX, Imm(100, 32))
        a.jle("rare")
        a.dec(ECX)
        a.je("done")
        a.jmp("top")
        a.label("rare")
        a.add(EAX, Imm(1000, 32))
        a.dec(ECX)
        a.je("done")
        a.jmp("top")
        a.label("done")

    img = make_image(build)
    assert call_all(img)[0] == sum(range(1, 201)) + 100 * 1000
    emu = Emulator(img, max_steps=1_000_000, engine="trace")
    emu.call_function(BASE)
    assert emu.traces.compiled >= 1
    assert emu.traces.side_exit_fallbacks >= 50


def test_code_write_invalidates_cached_traces():
    a = Assembler(base=BASE)
    build_loop(a)
    a.ret()
    a.raw(b"\xcc")  # never-executed pad byte: the tamper target
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, a.assemble(), Perm.RX))
    emu = Emulator(img, max_steps=1_000_000, engine="trace")
    first = emu.call_function(BASE)
    compiled = emu.traces.compiled
    assert compiled >= 1
    # Tamper the pad byte: behaviour unchanged, but the code page's
    # version bumps, so every trace spanning it must be dropped and the
    # head's hotness reset — the path re-records before recompiling.
    emu.memory.write_u8(BASE + img.text.size - 1, 0x90)
    assert emu.call_function(BASE) == first
    assert emu.traces.invalidated >= 1
    assert emu.traces.compiled > compiled


def test_trace_cache_generations_rotate(monkeypatch):
    monkeypatch.setattr(traces_mod, "TRACE_CACHE_GENERATION", 1)
    img = make_image(lambda a: build_loop(a, 200))
    emu = Emulator(img, max_steps=1_000_000, engine="trace")
    assert emu.call_function(BASE) == sum(range(1, 201))
    # generation size 1 forces rotation on every remember; survivors are
    # promoted from the old generation instead of being recompiled.
    assert emu.traces.compiled < 10
    assert emu.traces.retired > 500


def test_stack_code_is_never_traced():
    # Code on an unversioned page has no write counter: nothing could
    # ever invalidate a trace over it, so no trace may be built.
    code = Assembler(base=0x00BC_0000)
    code.mov(EAX, Imm(7, 32))
    code.ret()
    img = make_image(build_loop)
    emu = Emulator(img, max_steps=1_000_000, engine="trace")
    assert not emu.memory.page_is_versioned(0x00BC_0000)
    emu.memory.write(0x00BC_0000, code.assemble())
    for _ in range(traces_mod.TRACE_HOT_THRESHOLD * 3):
        assert emu.call_function(0x00BC_0000) == 7
    assert 0x00BC_0000 not in emu.traces._cache
    assert 0x00BC_0000 not in emu.traces._old


# ----------------------------------------------------------------------
# ROP-chain workload: the fused pop*+ret epilogue
# ----------------------------------------------------------------------

def _chain_image():
    """A gadget chain dispatched from a stack pivot into .data — the
    paper's verification-chain shape, re-run enough times to trace."""
    a = Assembler(base=BASE)
    a.mov(ESI, ESP)             # save the real stack
    a.mov(ECX, Imm(40, 32))
    a.label("top")
    a.mov(ESP, Imm(DATA, 32))   # pivot onto the prepared chain
    a.ret()                     # dispatch gadget 1
    a.label("back")             # final gadget returns here
    a.dec(ECX)
    a.jne("top")
    a.mov(ESP, ESI)             # restore the real stack
    a.mov(EAX, EBX)
    a.ret()
    a.label("g1")               # pop ebx; ret
    a.pop(EBX)
    a.ret()
    a.label("g2")               # pop edx; pop eax; ret
    a.pop(EDX)
    a.pop(EAX)
    a.ret()

    code = a.assemble()
    g1 = a.address_of("g1")
    g2 = a.address_of("g2")
    back = a.address_of("back")
    chain = b"".join(
        v.to_bytes(4, "little")
        for v in (g1, 0x11111111, g2, 0x22222222, 0x33333333,
                  g1, 0x44444444, back)
    )
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, code, Perm.RX))
    img.add_section(Section(".data", DATA, chain + bytes(64), Perm.RW))
    return img


@pytest.mark.parametrize("fused", [True, False])
def test_gadget_chain_identical_across_engines(monkeypatch, fused):
    monkeypatch.setattr(traces_mod, "FUSE_RET_GROUPS", fused)
    img = _chain_image()
    value = call_all(img)[0]
    assert value == 0x44444444  # ebx after the last pop gadget
    emu = Emulator(img, max_steps=1_000_000, engine="trace")
    emu.call_function(BASE)
    assert emu.traces.compiled >= 1
    assert emu.traces.hits >= 1


def test_fused_and_unfused_chain_signatures_match(monkeypatch):
    """FUSE_RET_GROUPS is pure codegen strategy: every observable —
    result, steps, cycles, mispredicts, memory fast-path counters —
    must be bit-identical either way."""
    img = _chain_image()
    sigs = {}
    for fused in (True, False):
        monkeypatch.setattr(traces_mod, "FUSE_RET_GROUPS", fused)
        emu = Emulator(img, max_steps=1_000_000, engine="trace")
        value = emu.call_function(BASE)
        sigs[fused] = (
            value, emu.steps, emu.cycles, emu.ret_mispredicts,
            emu.memory.fast_loads, emu.memory.fast_stores,
        )
    assert sigs[True] == sigs[False]
