"""Gadget machinery: discovery, semantic classification, the gadget mapping."""

from .catalog import GadgetCatalog
from .finder import (
    MAX_GADGET_INSNS,
    MAX_LOOKBACK_BYTES,
    decode_gadget_at,
    find_gadgets,
    find_gadgets_in_bytes,
)
from .semantics import classify
from .types import COMPILER_USABLE, Gadget, GadgetKind, GadgetOp

__all__ = [
    "GadgetCatalog",
    "MAX_GADGET_INSNS",
    "MAX_LOOKBACK_BYTES",
    "decode_gadget_at",
    "find_gadgets",
    "find_gadgets_in_bytes",
    "classify",
    "COMPILER_USABLE",
    "Gadget",
    "GadgetKind",
    "GadgetOp",
]
