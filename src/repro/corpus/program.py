"""Program container: IR functions + data + a runnable BinaryImage."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..binary import BinaryImage, Perm, Section
from ..emu import RunResult, run_image
from ..ropc import CodegenOptions, compile_functions, ir
from ..x86.registers import EAX, EBX, ECX, EDX, EDI, ESI

TEXT_BASE = 0x08048000
RODATA_BASE = 0x08070000
DATA_BASE = 0x08090000

#: Section bases reserved for the Parallax pipeline's additions.
GADGETS_BASE = 0x080A0000
STUBS_BASE = 0x080B0000
ROPDATA_BASE = 0x080C0000
ROPCHAINS_BASE = 0x080D0000


class DataBuilder:
    """Allocates named blobs in a data section."""

    def __init__(self, base: int):
        self.base = base
        self.blob = bytearray()
        self.names: Dict[str, Tuple[int, int]] = {}

    def add(self, name: str, data: bytes, align: int = 4) -> int:
        while (self.base + len(self.blob)) % align:
            self.blob.append(0)
        addr = self.base + len(self.blob)
        self.blob += data
        self.names[name] = (addr, len(data))
        return addr

    def reserve(self, name: str, size: int, align: int = 4) -> int:
        return self.add(name, bytes(size), align=align)

    def addr(self, name: str) -> int:
        return self.names[name][0]

    def size_of(self, name: str) -> int:
        return self.names[name][1]


class Program:
    """A corpus program: everything Parallax and the benchmarks need.

    Attributes:
        name: program name ("wget", ...).
        functions: name -> IRFunction, every function in the binary.
        image: the compiled, runnable :class:`BinaryImage`.
        candidates: names of chain-translatable verification candidates.
        rodata/data: the :class:`DataBuilder` maps for address lookups.
    """

    def __init__(
        self,
        name: str,
        functions: List[ir.IRFunction],
        rodata: DataBuilder,
        data: DataBuilder,
        options: Optional[CodegenOptions] = None,
        candidates: Iterable[str] = (),
    ):
        self.name = name
        self.functions = {f.name: f for f in functions}
        self.rodata = rodata
        self.data = data
        self.options = options or CodegenOptions()
        self.candidates = list(candidates)
        self.image = self._build_image(functions)

    def _build_image(self, functions: List[ir.IRFunction]) -> BinaryImage:
        code, spans, entry = compile_functions(
            functions, base=TEXT_BASE, options=self.options, entry_main="main"
        )
        image = BinaryImage(self.name)
        image.add_section(Section(".text", TEXT_BASE, code, Perm.RX))
        if self.rodata.blob:
            image.add_section(
                Section(".rodata", RODATA_BASE, bytes(self.rodata.blob), Perm.R)
            )
        if self.data.blob:
            image.add_section(
                Section(".data", DATA_BASE, bytes(self.data.blob), Perm.RW)
            )
        image.entry = TEXT_BASE + entry
        by_name = {f.name: f for f in functions}
        for fname, (start, end) in spans.items():
            image.add_function(
                fname, TEXT_BASE + start, end - start, ir=by_name.get(fname)
            )
        for name, (addr, size) in {**self.rodata.names, **self.data.names}.items():
            image.add_object(name, addr, size)
        image.metadata["candidates"] = list(self.candidates)
        return image

    # ------------------------------------------------------------------

    def run(
        self,
        debugger_attached: bool = False,
        max_steps: int = 10_000_000,
        image: Optional[BinaryImage] = None,
        engine: Optional[str] = None,
    ) -> RunResult:
        """Execute the program's workload (optionally a modified image)."""
        target = image if image is not None else self.image
        return run_image(
            target,
            debugger_attached=debugger_attached,
            max_steps=max_steps,
            engine=engine,
        )

    def code_size(self) -> int:
        return self.image.text.size

    def __repr__(self) -> str:
        return (
            f"<Program {self.name}: {len(self.functions)} functions, "
            f"{self.code_size()} code bytes>"
        )


def call_const(f: ir.IRFunction, callee: str, *values: int, dst=EAX) -> None:
    """Emit a call with constant arguments (loaded into scratch regs)."""
    arg_regs = (EBX, ECX, EDX)
    if len(values) > len(arg_regs):
        raise ir.IRError("call_const supports at most 3 arguments")
    used = []
    for value, reg in zip(values, arg_regs):
        f.emit(ir.Const(reg, value))
        used.append(reg)
    f.emit(ir.Call(dst, callee, used))


def input_bytes(seed: int, length: int, alphabet: Optional[bytes] = None) -> bytes:
    """Deterministic pseudo-random input data."""
    rng = random.Random(seed)
    if alphabet is None:
        return bytes(rng.randrange(256) for _ in range(length))
    return bytes(alphabet[rng.randrange(len(alphabet))] for _ in range(length))
