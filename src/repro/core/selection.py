"""Verification-function selection — the §VII-B algorithm.

    "(1) We first analyze the call graph of the program to find
    functions which are called repeatedly from several locations ...
    (2) We then profile the program, and select the functions from the
    previous step which contribute less than a threshold to the total
    execution time (2% in our experiments).  (3) Finally, we select
    from this the function containing the most types of operations."

We add a zeroth step the paper leaves implicit: the function must be
*chain-translatable* (leaf, word-oriented) — checked by dry-running the
ROP compiler.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.callgraph import callgraph_from_ir
from ..emu.profiler import profile_run
from ..ropc import ir
from ..ropc.compiler import RopCompileError, RopCompiler


class SelectionError(Exception):
    """No function qualifies as verification code."""


class CandidateInfo:
    """Why a function was (not) selected; useful for reports."""

    __slots__ = ("name", "translatable", "call_sites", "time_share", "op_kinds")

    def __init__(self, name, translatable, call_sites, time_share, op_kinds):
        self.name = name
        self.translatable = translatable
        self.call_sites = call_sites
        self.time_share = time_share
        self.op_kinds = op_kinds

    def __repr__(self) -> str:
        return (
            f"<Candidate {self.name} translatable={self.translatable} "
            f"sites={self.call_sites} share={self.time_share:.2%} "
            f"ops={self.op_kinds}>"
        )


def is_chain_translatable(function) -> bool:
    """Dry-run the ROP compiler on ``function``."""
    if function is None:
        return False
    try:
        RopCompiler(frame_cell=0, resume_cell=4).compile(function)
    except (RopCompileError, ir.IRError):
        return False
    return True


def rank_candidates(program, time_threshold: float = 0.02) -> List[CandidateInfo]:
    """Score every function of ``program`` against the selection steps."""
    graph = callgraph_from_ir(program.functions.values())
    _result, profiler = profile_run(program.image)

    infos = []
    for name, function in program.functions.items():
        if name in ("main", "_start"):
            continue
        infos.append(
            CandidateInfo(
                name=name,
                translatable=function.is_leaf and is_chain_translatable(function),
                call_sites=graph.call_sites(name),
                time_share=profiler.time_fraction(name),
                op_kinds=len(function.op_kinds()),
            )
        )
    return infos


def select_verification_function(
    program, time_threshold: float = 0.02, infos: Optional[List[CandidateInfo]] = None
) -> str:
    """Pick the verification function per §VII-B.

    Returns the function name.  Raises :class:`SelectionError` when
    nothing qualifies.
    """
    if infos is None:
        infos = rank_candidates(program, time_threshold)
    eligible = [
        info
        for info in infos
        if info.translatable
        and info.call_sites >= 2          # step 1: several locations
        and 0 < info.time_share < time_threshold  # step 2: cheap but exercised
    ]
    if not eligible:
        # Relax step 1 before giving up: a single call site still
        # verifies, just less often.
        eligible = [
            info
            for info in infos
            if info.translatable and 0 < info.time_share < time_threshold
        ]
    if not eligible:
        raise SelectionError(
            f"{program.name}: no chain-translatable function below the "
            f"{time_threshold:.0%} profile threshold"
        )
    # step 3: most operation types; ties broken toward more call sites.
    best = max(eligible, key=lambda info: (info.op_kinds, info.call_sites))
    return best.name
