"""IA-32 register definitions.

Registers are interned: ``Register.by_name("eax")`` and the module-level
constant ``EAX`` are the same object, so identity comparison is safe.
"""

from __future__ import annotations


class Register:
    """A named x86 register with its hardware encoding number and width.

    Attributes:
        name: canonical lower-case name, e.g. ``"eax"``.
        code: the 3-bit encoding used in modrm/reg fields.
        width: operand width in bits (8, 16 or 32).
    """

    __slots__ = ("name", "code", "width")

    _BY_NAME: dict = {}

    def __init__(self, name: str, code: int, width: int):
        self.name = name
        self.code = code
        self.width = width
        Register._BY_NAME[name] = self

    def __repr__(self) -> str:
        return self.name

    def __reduce__(self):
        # Preserve interning across pickling (multiprocessing results,
        # the on-disk gadget cache): unpickling resolves back to the
        # module-level singleton, keeping identity comparison safe.
        return (Register.by_name, (self.name,))

    @property
    def is_gp32(self) -> bool:
        return self.width == 32

    def full(self) -> "Register":
        """Return the 32-bit register this register aliases.

        ``AL.full()`` and ``AH.full()`` are both ``EAX``; a 32-bit register
        returns itself.
        """
        if self.width == 32:
            return self
        return GP32[self.code & 0x3] if self.width == 8 and self.code >= 4 else GP32[self.code]

    @classmethod
    def by_name(cls, name: str) -> "Register":
        return cls._BY_NAME[name.lower()]

    @classmethod
    def gp32(cls, code: int) -> "Register":
        return GP32[code]

    @classmethod
    def gp16(cls, code: int) -> "Register":
        return GP16[code]

    @classmethod
    def gp8(cls, code: int) -> "Register":
        return GP8[code]


EAX = Register("eax", 0, 32)
ECX = Register("ecx", 1, 32)
EDX = Register("edx", 2, 32)
EBX = Register("ebx", 3, 32)
ESP = Register("esp", 4, 32)
EBP = Register("ebp", 5, 32)
ESI = Register("esi", 6, 32)
EDI = Register("edi", 7, 32)

AX = Register("ax", 0, 16)
CX = Register("cx", 1, 16)
DX = Register("dx", 2, 16)
BX = Register("bx", 3, 16)
SP = Register("sp", 4, 16)
BP = Register("bp", 5, 16)
SI = Register("si", 6, 16)
DI = Register("di", 7, 16)

AL = Register("al", 0, 8)
CL = Register("cl", 1, 8)
DL = Register("dl", 2, 8)
BL = Register("bl", 3, 8)
AH = Register("ah", 4, 8)
CH = Register("ch", 5, 8)
DH = Register("dh", 6, 8)
BH = Register("bh", 7, 8)

GP32 = (EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI)
GP16 = (AX, CX, DX, BX, SP, BP, SI, DI)
GP8 = (AL, CL, DL, BL, AH, CH, DH, BH)

#: Registers the ROP compiler may freely clobber inside chains (caller-saved
#: by our toy ABI; everything except esp).
SCRATCH32 = (EAX, ECX, EDX, EBX, EBP, ESI, EDI)
