"""CLI observability surface: labels, journal streaming, `repro top`,
recorder sizing, and signal-triggered telemetry dumps."""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture
def cli_small_wget(monkeypatch, small_wget):
    """Route the CLI's program builder at the fast test corpus."""
    monkeypatch.setattr("repro.cli.build_program", lambda name: small_wget)


def _read_ndjson(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_label_flag_scopes_exported_metrics(tmp_path, capsys, cli_small_wget):
    metrics_path = tmp_path / "m.json"
    prom_path = tmp_path / "m.prom"
    assert main([
        "protect", "wget",
        "--label", "request=r1", "--label", "tenant=acme",
        "--metrics", str(metrics_path), "--prom", str(prom_path),
    ]) == 0
    samples = json.loads(metrics_path.read_text())
    key = 'protect.runs{request="r1",tenant="acme"}'
    assert key in samples
    assert samples[key]["labels"] == {"request": "r1", "tenant": "acme"}
    prom = prom_path.read_text()
    assert 'protect_runs_total{request="r1",tenant="acme"} 1' in prom


def test_malformed_label_rejected():
    with pytest.raises(SystemExit):
        main(["protect", "wget", "--label", "no-equals-sign"])


def test_journal_follow_streams_ndjson_with_summary(
    tmp_path, capsys, cli_small_wget
):
    follow_path = tmp_path / "live.ndjson"
    assert main([
        "protect", "wget", "--label", "request=r7",
        "--journal-follow", str(follow_path),
    ]) == 0
    records = _read_ndjson(follow_path)
    assert records, "stream is empty"
    # events stream in recorded order, labeled, and a summary trailer
    # marks the run finished for `repro top`
    assert records[-1]["type"] == "journal_summary"
    events = [r for r in records if r["type"] == "event"]
    assert any(e["kind"] == "protect" for e in events)
    assert all(e.get("ctx") == {"request": "r7"} for e in events)
    assert records[-1]["recorded"] == len(events)


def test_recorder_events_caps_the_journal(tmp_path, capsys, cli_small_wget):
    journal_path = tmp_path / "j.ndjson"
    assert main([
        "protect", "wget",
        "--recorder-events", "4", "--journal", str(journal_path),
    ]) == 0
    records = _read_ndjson(journal_path)
    events = [r for r in records if r["type"] == "event"]
    assert len(events) == 4
    summary = next(r for r in records if r["type"] == "journal_summary")
    assert summary["capacity"] == 4
    assert summary["dropped"] > 0


def test_top_once_renders_dashboard_from_stream(
    tmp_path, capsys, cli_small_wget
):
    follow_path = tmp_path / "live.ndjson"
    assert main(
        ["protect", "wget", "--journal-follow", str(follow_path)]
    ) == 0
    capsys.readouterr()
    assert main(["top", str(follow_path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "protect" in out
    assert "run finished" in out


def test_sigterm_dumps_telemetry_before_dying(tmp_path):
    """A killed run still writes its exports (crash-dump satellite)."""
    metrics_path = tmp_path / "m.json"
    journal_path = tmp_path / "j.ndjson"
    script = textwrap.dedent(
        f"""
        import os, sys, time
        sys.argv = [
            "repro", "run", "gzip",
            "--metrics", {str(metrics_path)!r},
            "--journal", {str(journal_path)!r},
        ]
        import repro.cli, repro.corpus

        real_build = repro.corpus.build_program

        def build_and_signal(name):
            program = real_build(name)
            os.kill(os.getpid(), {int(signal.SIGTERM)})
            time.sleep(60)  # never reached: SIGTERM fires on return
            return program

        repro.cli.build_program = build_and_signal
        sys.exit(repro.cli.main(sys.argv[1:]))
        """
    )
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        timeout=120,
    )
    # the handler re-raises, so the process still dies by SIGTERM
    assert proc.returncode == -signal.SIGTERM, proc.stderr.decode()
    samples = json.loads(metrics_path.read_text())
    assert samples, "metrics dump is empty"
    records = _read_ndjson(journal_path)
    assert any(r["type"] == "journal_summary" for r in records)
