"""IR -> ROP chain compilation, executed in the emulator."""

import pytest

from repro.binary import BinaryImage, Perm, Section
from repro.core.stubs import build_loader_stub
from repro.emu import Emulator, EmulationError
from repro.gadgets import GadgetCatalog
from repro.ropc import RopCompileError, RopCompiler, emit_standard_gadgets, ir
from repro.ropc.chain import MissingGadget
from repro.ropc.interpreter import Interpreter, IRMemory
from repro.x86 import EAX, EBX, ECX, EDX, ESI

FRAME, RESUME, CHAIN, GADGETS, STUB, DATA = (
    0x8090000, 0x8090004, 0x8091000, 0x8060000, 0x8070000, 0x8092000,
)


def run_as_chain(function, args, blobs=(), rng=None):
    compiler = RopCompiler(FRAME, RESUME)
    chain = compiler.compile(function)
    gcode, gadgets = emit_standard_gadgets(chain.required_kinds(), base=GADGETS)
    catalog = GadgetCatalog(gadgets)
    resolved = chain.resolve(catalog, rng=rng)
    payload = resolved.to_bytes(CHAIN)
    stub = build_loader_stub(STUB, FRAME, RESUME, CHAIN)

    img = BinaryImage("t")
    img.add_section(Section(".gadgets", GADGETS, gcode, Perm.RX))
    img.add_section(Section(".stub", STUB, stub.code, Perm.RX))
    img.add_section(Section(".ropdata", 0x8090000, bytes(64), Perm.RW))
    img.add_section(Section(".ropchains", CHAIN, payload, Perm.RW))
    img.add_section(Section(".data", DATA, bytes(0x1000), Perm.RW))
    emu = Emulator(img, max_steps=1_000_000)
    for addr, data in blobs:
        emu.memory.write(addr, data)
    return emu.call_function(STUB, args)


def reference(function, args, blobs=()):
    mem = IRMemory()
    for addr, data in blobs:
        mem.load_blob(addr, data)
    return Interpreter({}, mem).run(function, args)


def test_straight_line_arith():
    f = ir.IRFunction("f", params=2)
    f.emit(ir.Param(EBX, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Mov(EAX, EBX))
    f.emit(ir.BinOp("mul", EAX, ECX))
    f.emit(ir.AddConst(EAX, 100))
    f.emit(ir.Neg(EAX))
    f.emit(ir.Not(EAX))
    f.emit(ir.Shift("shl", EAX, 2))
    f.emit(ir.Ret())
    assert run_as_chain(f, [6, 7]) == reference(f, [6, 7])


@pytest.mark.parametrize("cond", list(ir.CONDITIONS))
def test_all_branch_conditions(cond):
    f = ir.IRFunction("f", params=2)
    f.emit(ir.Param(EBX, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Branch(cond, EBX, ECX, "taken"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    f.emit(ir.Label("taken"))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.Ret())
    for a, b in [(1, 2), (2, 1), (5, 5), (0x80000000, 1), (1, 0x80000000)]:
        assert run_as_chain(f, [a, b]) == reference(f, [a, b]), (cond, a, b)


def test_loop_with_memory():
    f = ir.IRFunction("sumbuf", params=2)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.AddConst(ESI, 4))
    f.emit(ir.AddConst(ECX, 0xFFFFFFFF))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Store(ESI, EAX, 0))  # esi points past the buffer now
    f.emit(ir.Ret())
    blob = b"".join(i.to_bytes(4, "little") for i in (10, 20, 30))
    assert run_as_chain(f, [DATA, 3], [(DATA, blob)]) == 60


def test_syscall_in_chain():
    """ptrace inside a chain: the non-deterministic case OH cannot do."""
    from repro.corpus import builders
    f = builders.ptrace_detect()
    assert run_as_chain(f, []) == 1  # no debugger


def test_non_leaf_rejected():
    f = ir.IRFunction("caller", 0)
    f.emit(ir.Call(EAX, "other"))
    f.emit(ir.Ret())
    with pytest.raises(RopCompileError):
        RopCompiler(FRAME, RESUME).compile(f)


def test_byte_ops_rejected():
    f = ir.IRFunction("bytes", 1)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Load8(EAX, ESI, 0))
    f.emit(ir.Ret())
    with pytest.raises(RopCompileError):
        RopCompiler(FRAME, RESUME).compile(f)


def test_missing_gadget_raises():
    f = ir.IRFunction("f", 0)
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.Ret())
    chain = RopCompiler(FRAME, RESUME).compile(f)
    with pytest.raises(MissingGadget):
        chain.resolve(GadgetCatalog([]))


def test_probabilistic_resolution_varies():
    import random
    f = ir.IRFunction("f", 0)
    f.emit(ir.Const(EAX, 7))
    f.emit(ir.Ret())
    chain = RopCompiler(FRAME, RESUME).compile(f)
    kinds = chain.required_kinds()
    # two copies of every gadget -> sampling can differ
    code1, g1 = emit_standard_gadgets(kinds, base=GADGETS)
    code2, g2 = emit_standard_gadgets(kinds, base=GADGETS + 0x100)
    catalog = GadgetCatalog(g1 + g2)
    rng = random.Random(7)
    payloads = {
        chain.resolve(catalog, rng=rng, fixed_shape=True).to_bytes(CHAIN)
        for _ in range(8)
    }
    assert len(payloads) > 1


def test_far_gadget_pad_layout():
    """A far LOAD_CONST still chains correctly (pad after next address)."""
    from repro.gadgets import find_gadgets_in_bytes
    from repro.x86 import Assembler
    a = Assembler(base=GADGETS)
    a.pop(EBX); a.retf()          # far load_const for ebx
    a.pop(EAX); a.ret()
    a.mov(ESI, EAX); a.ret()      # unrelated fill
    gcode = a.assemble()

    f = ir.IRFunction("f", 0)
    f.emit(ir.Const(EBX, 5))
    f.emit(ir.Const(EAX, 10))
    f.emit(ir.BinOp("add", EAX, EBX))
    f.emit(ir.Ret())
    compiler = RopCompiler(FRAME, RESUME)
    chain = compiler.compile(f)
    found = find_gadgets_in_bytes(gcode, base=GADGETS)
    extra_kinds = [k for k in chain.required_kinds()]
    gcode2, gadgets2 = emit_standard_gadgets(extra_kinds, base=GADGETS + 0x100)
    catalog = GadgetCatalog(found + gadgets2)
    # force the far gadget for ebx by preferring it
    catalog.mark_preferred(GADGETS)
    resolved = chain.resolve(catalog)
    assert any(
        item.gadget.far
        for item in resolved.items
        if hasattr(item, "gadget") and item.gadget is not None
    )
    payload = resolved.to_bytes(CHAIN)
    stub = build_loader_stub(STUB, FRAME, RESUME, CHAIN)
    img = BinaryImage("t")
    img.add_section(Section(".g1", GADGETS, gcode, Perm.RX))
    img.add_section(Section(".g2", GADGETS + 0x100, gcode2, Perm.RX))
    img.add_section(Section(".stub", STUB, stub.code, Perm.RX))
    img.add_section(Section(".ropdata", 0x8090000, bytes(64), Perm.RW))
    img.add_section(Section(".ropchains", CHAIN, payload, Perm.RW))
    emu = Emulator(img, max_steps=100_000)
    assert emu.call_function(STUB, []) == 15
