"""End-to-end serving-layer tests over a real socket (thread executor).

The heavyweight fixtures are module-scoped: one server instance backs
all the read-mostly tests; dedicated short-lived servers cover quota,
backpressure and drain, whose configs must differ.  Global state the
server touches (telemetry, the cache manager) is snapshotted and
restored so these tests leave no trace on the rest of the suite.
"""

import asyncio
import base64
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.cache as cache_mod
from repro import telemetry
from repro.core import Parallax
from repro.corpus import build_program_cached
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.jobs import job_config, make_task
from repro.serve.server import ProtectionServer


@pytest.fixture(scope="module")
def serve_env():
    """Snapshot/restore the process-wide state the server mutates."""
    old_manager = cache_mod._manager
    with telemetry.telemetry_session(metrics=True, tracing=False, recorder=True):
        yield
    cache_mod._manager = old_manager


@pytest.fixture(scope="module")
def server(serve_env):
    config = ServeConfig(port=0, executor="thread", jobs=2)
    with ServerThread(config) as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = ServeClient("127.0.0.1", server.port, timeout=180)
    yield c
    c.close()


def direct_protect(kind="protect", program="gzip", **fields):
    """The ground truth: run the pipeline directly, no server."""
    task = make_task(kind, program, **fields)
    return Parallax(job_config(task)).protect(build_program_cached(program))


# -- basic routes -------------------------------------------------------


def test_healthz(client):
    status, _headers, payload = client.get("/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["executor"] == "thread"


def test_protect_roundtrip_matches_direct_pipeline(client):
    direct = direct_protect(program="gzip", seed=7)
    status, headers, payload = client.job("protect", "gzip", seed=7)
    assert status == 200
    assert headers["x-singleflight"] in ("leader", "cache-hit")
    assert payload["fingerprint"] == direct.image.fingerprint()
    artifact = base64.b64decode(payload["artifact_b64"])
    assert artifact == direct.image.canonical_bytes()
    assert payload["chains"] == len(direct.report.chains)
    assert payload["report"] == direct.report.to_dict()


def test_repeat_request_is_cache_hit(client):
    first = client.job("protect", "gzip", seed=11)
    second = client.job("protect", "gzip", seed=11)
    assert first[0] == second[0] == 200
    assert second[1]["x-singleflight"] == "cache-hit"
    assert first[2] == second[2]


def test_verify_job(client):
    status, _headers, payload = client.job("verify", "gzip", seed=0)
    assert status == 200
    assert payload["behaviour_preserved"] is True
    assert payload["protected"]["crashed"] is False
    assert payload["overhead_percent"] is not None


def test_attack_matrix_job(client):
    status, _headers, payload = client.job("attack-matrix", "gzip", seed=0)
    assert status == 200
    assert payload["all_detected"] is True
    assert payload["attacks"]["static"]["detected"] is True
    assert payload["attacks"]["wurster"]["detected"] is True


def test_validation_errors_are_400(client):
    assert client.job("protect", "nosuch")[0] == 400
    assert client.post("/protect", {"program": "gzip", "strategy": "bogus"})[0] == 400
    assert client.post("/protect", {"program": "gzip", "seed": "NaN"})[0] == 400


def test_unknown_route_is_404(client):
    assert client.get("/nope")[0] == 404
    assert client.post("/nope", {})[0] == 404


def test_unsupported_method_is_405(client):
    assert client.request("PUT", "/protect", {"program": "gzip"})[0] == 405


# -- the acceptance criterion: 100 concurrent identical requests -------


def test_hundred_concurrent_identical_requests_execute_once(server):
    direct = direct_protect(program="lame", seed=123)
    expected = base64.b64encode(direct.image.canonical_bytes()).decode()

    def one(_i):
        with ServeClient("127.0.0.1", server.port, timeout=180) as c:
            status, headers, payload = c.job("protect", "lame", seed=123)
            return status, headers["x-singleflight"], payload["artifact_b64"]

    with ThreadPoolExecutor(100) as pool:
        results = list(pool.map(one, range(100)))

    assert all(status == 200 for status, _role, _artifact in results)
    roles = [role for _status, role, _artifact in results]
    # Exactly one leader computed; everyone else coalesced onto it (or,
    # for stragglers arriving after it finished, hit the cache it
    # populated).  Either way the pipeline ran exactly once.
    assert roles.count("leader") == 1, roles
    assert set(roles) <= {"leader", "follower", "cache-hit"}
    artifacts = {artifact for _status, _role, artifact in results}
    assert artifacts == {expected}


# -- observability routes ----------------------------------------------


def test_metrics_endpoint_serves_prometheus_text(client):
    client.job("protect", "gzip", seed=0, tenant="acme")
    status, headers, text = client.get("/metrics")
    assert status == 200
    assert headers["content-type"].startswith("text/plain")
    assert "# TYPE" in text
    assert "serve_singleflight_leader_total" in text
    assert "serve_requests_total" in text
    # Tenant labels flow from the request context into the exporter.
    assert 'tenant="acme"' in text


def test_stats_endpoint_exposes_windows_and_singleflight(client):
    client.job("protect", "gzip", seed=1)
    status, _headers, payload = client.get("/stats")
    assert status == 200
    assert payload["singleflight"]["leaders"] >= 1
    assert "serve.request" in payload["windows"]
    assert payload["windows"]["serve.request"]["count"] >= 1


def test_journal_filters_by_request_label(client):
    client.job("protect", "gzip", seed=2, tenant="acme", request="r-77")
    client.job("protect", "gzip", seed=3, tenant="other")
    status, headers, text = client.get("/journal?request=r-77")
    assert status == 200
    assert headers["content-type"] == "application/x-ndjson"
    events = [json.loads(line) for line in text.strip().splitlines()]
    assert events
    assert all(e["ctx"]["request"] == "r-77" for e in events)
    assert any(e["kind"] == "serve.request" for e in events)
    # And the tenant filter slices the same journal differently.
    _status, _h, other = client.get("/journal?tenant=other")
    other_events = [json.loads(line) for line in other.strip().splitlines()]
    assert other_events
    assert all(e["ctx"]["tenant"] == "other" for e in other_events)


# -- admission control --------------------------------------------------


def test_quota_exhaustion_returns_429_with_retry_after(serve_env):
    config = ServeConfig(
        port=0, executor="thread", jobs=1, quota_rate=0.001, quota_burst=2
    )
    with ServerThread(config) as srv:
        with ServeClient("127.0.0.1", srv.port, timeout=180) as c:
            assert c.job("protect", "gzip", seed=0, tenant="t")[0] == 200
            assert c.job("protect", "gzip", seed=0, tenant="t")[0] == 200
            status, headers, payload = c.job(
                "protect", "gzip", seed=0, tenant="t"
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert "quota" in payload["error"] or "over" in payload["error"]
            # Another tenant is unaffected.
            assert c.job("protect", "gzip", seed=0, tenant="u")[0] == 200


def test_queue_backpressure_returns_429(serve_env):
    config = ServeConfig(
        port=0, executor="thread", jobs=1, queue_depth=1, batch_max=1
    )
    with ServerThread(config) as srv:

        def one(seed):
            with ServeClient("127.0.0.1", srv.port, timeout=180) as c:
                status, headers, _payload = c.job("protect", "lame", seed=seed)
                return status, headers

        with ThreadPoolExecutor(6) as pool:
            results = list(pool.map(one, range(6)))
        statuses = [status for status, _headers in results]
        assert 200 in statuses
        assert 429 in statuses, statuses
        for status, headers in results:
            if status == 429:
                assert int(headers["retry-after"]) >= 1


# -- graceful drain -----------------------------------------------------


def test_drain_finishes_inflight_and_journals_shutdown(serve_env):
    async def body():
        server = ProtectionServer(ServeConfig(port=0, executor="thread", jobs=1))
        await server.start()
        port = server.port
        server.request_shutdown("test")
        await server.run_until_shutdown()
        return port

    port = asyncio.run(body())
    # The listener is gone after drain.
    with pytest.raises(OSError):
        with ServeClient("127.0.0.1", port, timeout=2) as c:
            c.get("/healthz")
    kinds = [e["kind"] for e in telemetry.get_recorder().iter_events()]
    assert "serve.drain" in kinds
    assert "serve.drained" in kinds


def test_post_during_drain_is_503(serve_env):
    async def body():
        server = ProtectionServer(ServeConfig(port=0, executor="thread", jobs=1))
        await server.start()
        server._draining = True
        from repro.serve.http import Request

        request = Request(
            "POST", "/protect", {}, {},
            json.dumps({"program": "gzip"}).encode(),
        )
        response = await server._handle_request(request)
        server._draining = False
        server.request_shutdown("test")
        await server.run_until_shutdown()
        return response

    response = asyncio.run(body())
    assert response.startswith(b"HTTP/1.1 503 ")
    assert b"Retry-After" in response


def test_server_thread_stop_is_idempotent(serve_env):
    config = ServeConfig(port=0, executor="thread", jobs=1)
    srv = ServerThread(config)
    with srv:
        with ServeClient("127.0.0.1", srv.port, timeout=30) as c:
            assert c.get("/healthz")[0] == 200
        srv.stop()
    srv.stop()  # exit + explicit double-stop must not raise
