"""Synthetic corpus: the six test programs of the paper's evaluation."""

from . import builders
from .generator import FunctionGenerator, MixProfile
from .program import (
    DATA_BASE,
    DataBuilder,
    GADGETS_BASE,
    Program,
    RODATA_BASE,
    ROPCHAINS_BASE,
    ROPDATA_BASE,
    STUBS_BASE,
    TEXT_BASE,
    call_const,
    input_bytes,
)
from .programs import (
    BUILDERS,
    PROGRAM_NAMES,
    build_all,
    build_bzip2,
    build_gcc,
    build_gzip,
    build_lame,
    build_nginx,
    build_program,
    build_program_cached,
    build_wget,
)

__all__ = [
    "builders",
    "FunctionGenerator",
    "MixProfile",
    "DataBuilder",
    "Program",
    "call_const",
    "input_bytes",
    "TEXT_BASE", "RODATA_BASE", "DATA_BASE", "GADGETS_BASE",
    "STUBS_BASE", "ROPDATA_BASE", "ROPCHAINS_BASE",
    "BUILDERS", "PROGRAM_NAMES",
    "build_all", "build_program", "build_program_cached",
    "build_wget", "build_nginx", "build_bzip2",
    "build_gzip", "build_gcc", "build_lame",
]
