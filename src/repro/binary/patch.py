"""Patch records: reversible byte modifications of an image.

Used by the rewriting engine (gadget insertion) and by the attack
simulations (tampering).  Every patch remembers the original bytes so it
can be reverted — the code-restore attack in
:mod:`repro.attacks.restore` depends on that.
"""

from __future__ import annotations

from typing import List

from .image import BinaryImage


class Patch:
    """One contiguous byte replacement."""

    __slots__ = ("vaddr", "old", "new", "reason")

    def __init__(self, vaddr: int, old: bytes, new: bytes, reason: str = ""):
        if len(old) != len(new):
            raise ValueError("patch must preserve length")
        self.vaddr = vaddr
        self.old = bytes(old)
        self.new = bytes(new)
        self.reason = reason

    @property
    def size(self) -> int:
        return len(self.new)

    @property
    def end(self) -> int:
        return self.vaddr + len(self.new)

    def apply(self, image: BinaryImage) -> None:
        current = image.read(self.vaddr, len(self.old))
        if current != self.old:
            raise ValueError(
                f"patch at {self.vaddr:#x} expected {self.old.hex()} found {current.hex()}"
            )
        image.write(self.vaddr, self.new)

    def revert(self, image: BinaryImage) -> None:
        current = image.read(self.vaddr, len(self.new))
        if current != self.new:
            raise ValueError(f"revert at {self.vaddr:#x}: patch not applied")
        image.write(self.vaddr, self.old)

    def overlaps(self, other: "Patch") -> bool:
        return self.vaddr < other.end and other.vaddr < self.end

    def __repr__(self) -> str:
        tag = f" ({self.reason})" if self.reason else ""
        return f"<Patch {self.vaddr:#x}: {self.old.hex()} -> {self.new.hex()}{tag}>"


class PatchSet:
    """An ordered collection of non-conflicting patches."""

    def __init__(self):
        self.patches: List[Patch] = []

    def add(self, patch: Patch) -> Patch:
        for existing in self.patches:
            if existing.overlaps(patch):
                raise ValueError(
                    f"patch at {patch.vaddr:#x} conflicts with existing patch at "
                    f"{existing.vaddr:#x}"
                )
        self.patches.append(patch)
        return patch

    def conflicts(self, patch: Patch) -> bool:
        return any(existing.overlaps(patch) for existing in self.patches)

    def apply(self, image: BinaryImage) -> None:
        for patch in self.patches:
            patch.apply(image)

    def revert(self, image: BinaryImage) -> None:
        for patch in reversed(self.patches):
            patch.revert(image)

    def __len__(self) -> int:
        return len(self.patches)

    def __iter__(self):
        return iter(self.patches)
