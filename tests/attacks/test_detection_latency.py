"""Tamper-detection-latency stamps: the dynamic half of the observatory.

Every detected attack must carry a finite ``cycles_to_detection``; the
stamps must be identical under both emulator engines; and the latency
histograms must land in the metrics registry per attack x rewrite-rule
cell.
"""

import pytest

from repro.attacks import (
    evaluate_patch_attack,
    evaluate_restore_attack,
    evaluate_wurster_attack,
)
from repro.attacks.patching import corrupt_byte
from repro.binary import Patch
from repro.telemetry import telemetry_session


@pytest.fixture(scope="module")
def gadget_patch(protected_wget_cleartext):
    image = protected_wget_cleartext.image
    target = next(
        a for a in protected_wget_cleartext.report.chains[0].gadget_addresses
        if image.section_at(a).name == ".text"
    )
    return corrupt_byte(image, target)


def test_static_patch_latency_is_finite(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    outcome = evaluate_patch_attack(
        protected_wget_cleartext.image, [gadget_patch],
        small_wget_baseline, "static",
    )
    assert outcome.detected
    assert outcome.tamper_cycles == 0  # tampered before entry
    assert outcome.cycles_to_detection is not None
    assert outcome.cycles_to_detection > 0
    # the tampered gadget executed, and no later than the failure
    assert outcome.cycles_to_corruption is not None
    assert 0 < outcome.cycles_to_corruption <= outcome.cycles_to_detection


def test_wurster_patch_latency_is_finite(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    outcome = evaluate_wurster_attack(
        protected_wget_cleartext.image, [gadget_patch],
        small_wget_baseline, "wurster",
    )
    assert outcome.detected
    assert outcome.tamper_cycles == 0
    assert outcome.cycles_to_detection is not None
    assert outcome.cycles_to_corruption is not None
    assert outcome.cycles_to_corruption <= outcome.cycles_to_detection


def test_stamps_identical_under_both_engines(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    stamps = {}
    for engine in ("step", "block"):
        outcome = evaluate_patch_attack(
            protected_wget_cleartext.image, [gadget_patch],
            small_wget_baseline, "static", engine=engine,
        )
        assert outcome.detected
        stamps[engine] = (
            outcome.tamper_cycles,
            outcome.corruption_cycles,
            outcome.detection_cycles,
        )
    assert stamps["step"] == stamps["block"]


def test_undetected_attack_has_no_detection_latency(
    small_wget, small_wget_baseline
):
    from repro.attacks import stub_out_function

    patch = stub_out_function(small_wget.image, "ptrace_detect", 1)
    outcome = evaluate_patch_attack(
        small_wget.image, [patch], small_wget_baseline,
        "crack", debugger_attached=True,
    )
    assert not outcome.detected
    assert outcome.detection_cycles is None
    assert outcome.cycles_to_detection is None
    # the stubbed function still ran, so corruption was observed
    assert outcome.corruption_cycles is not None


def test_restore_attack_stamps_tamper_midrun(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    image = protected_wget_cleartext.image
    # never restoring == static attack from the trigger onwards: caught
    outcome = evaluate_restore_attack(
        image, gadget_patch, image.entry, 10**9, small_wget_baseline,
    )
    assert outcome.detected
    assert outcome.tamper_cycles is not None
    assert outcome.cycles_to_detection is not None
    assert outcome.cycles_to_detection >= 0


def test_fast_restore_window_leaves_no_corruption(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    """A tamper window too small to overlap a chain call: undetected,
    and the tampered gadget never executed while corrupt."""
    image = protected_wget_cleartext.image
    outcome = evaluate_restore_attack(
        image, gadget_patch, image.entry, 5, small_wget_baseline,
    )
    assert not outcome.detected
    assert outcome.corruption_cycles is None
    assert outcome.cycles_to_detection is None


def test_latency_histograms_per_attack_rule_cell(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    with telemetry_session(metrics=True, tracing=False) as (metrics, _):
        outcome = evaluate_patch_attack(
            protected_wget_cleartext.image, [gadget_patch],
            small_wget_baseline, "static", rule="existing_near_ret",
        )
        assert outcome.detected
        samples = metrics.to_dict()
    overall = samples["attacks.cycles_to_detection"]
    assert overall["count"] == 1
    assert overall["sum"] == outcome.cycles_to_detection
    cell = samples[
        'attacks.cycles_to_detection{attack="static",rule="existing_near_ret"}'
    ]
    assert cell["count"] == 1
    assert (
        'attacks.cycles_to_corruption{attack="static",rule="existing_near_ret"}'
        in samples
    )


def test_outcome_to_dict_round_trips(
    protected_wget_cleartext, small_wget_baseline, gadget_patch
):
    outcome = evaluate_patch_attack(
        protected_wget_cleartext.image, [gadget_patch],
        small_wget_baseline, "static",
    )
    payload = outcome.to_dict()
    assert payload["attack"] == "static"
    assert payload["detected"] is True
    assert payload["tamper_cycles"] == 0
    assert payload["cycles_to_detection"] == outcome.cycles_to_detection
    assert payload["cycles_to_corruption"] == outcome.cycles_to_corruption
