"""The parallel protection pipeline: ``protect-all`` in library form.

Fans :meth:`Parallax.protect` out across corpus programs with
``multiprocessing``, backed by the content-addressed cache in
:mod:`repro.cache`:

* **worker count** — ``jobs=1`` runs inline (no subprocesses, parent
  tracer sees every span); ``jobs>1`` forks a pool;
* **deterministic ordering** — results come back in input order
  regardless of which worker finishes first, and each protection is
  independent and seeded, so ``jobs=1`` and ``jobs=N`` produce
  byte-identical images;
* **per-worker telemetry** — every task runs under a private metrics
  registry whose samples are merged into the parent's process-wide
  registry in input order (:meth:`MetricsRegistry.merge_samples`), and
  under a private tracer whose finished spans are adopted into the
  parent trace (:meth:`Tracer.ingest`), so ``--metrics``/``--trace``
  output is one registry/trace no matter the worker count;
* **caching** — workers share the parent's on-disk cache tier, so a
  warm ``protect-all`` deserializes instead of re-protecting, and a
  second run of the same corpus is nearly free.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import List, Optional, Sequence

from ..cache import cache_manager, configure_cache
from ..core.config import ProtectConfig
from ..core.protector import Parallax, ProtectedProgram
from ..corpus import PROGRAM_NAMES, build_program_cached
from ..telemetry import (
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_recorder,
    get_tracer,
    suspend_context,
    task_telemetry,
)
from .pool import mp_context, worker_init

__all__ = [
    "PipelineResult",
    "config_for_program",
    "protect_all",
    "protect_one",
]


class PipelineResult:
    """One program's outcome from a pipeline run."""

    __slots__ = (
        "name",
        "image",
        "report",
        "elapsed",
        "cache_hit",
        "worker_pid",
        "behaviour_preserved",
    )

    def __init__(
        self,
        name: str,
        image,
        report,
        elapsed: float,
        cache_hit: bool,
        worker_pid: int,
        behaviour_preserved: Optional[bool] = None,
    ):
        self.name = name
        self.image = image
        self.report = report
        self.elapsed = elapsed
        self.cache_hit = cache_hit
        self.worker_pid = worker_pid
        #: None unless the pipeline was asked to verify behaviour.
        self.behaviour_preserved = behaviour_preserved

    def to_dict(self) -> dict:
        payload = {
            "program": self.name,
            "elapsed_s": round(self.elapsed, 6),
            "cache_hit": self.cache_hit,
            "worker_pid": self.worker_pid,
            "report": self.report.to_dict(),
        }
        if self.behaviour_preserved is not None:
            payload["behaviour_preserved"] = self.behaviour_preserved
        return payload

    def __repr__(self) -> str:
        hit = "hit" if self.cache_hit else "miss"
        return (
            f"<PipelineResult {self.name} {self.elapsed:.3f}s "
            f"cache-{hit} pid={self.worker_pid}>"
        )


def config_for_program(name: str, base: Optional[ProtectConfig]) -> ProtectConfig:
    """Specialize ``base`` for one corpus program.

    When the base config names no verification functions, the
    program's ``digest_*`` helper is used — the function the §VII-B
    selection algorithm converges on for every corpus program, without
    paying for a profiling run per program.
    """
    base = base or ProtectConfig()
    verification = base.verification_functions
    if verification is None:
        verification = [f"digest_{name}"]
    return ProtectConfig(
        strategy=base.strategy,
        verification_functions=list(verification),
        protect_addresses=base.protect_addresses,
        n_variants=base.n_variants,
        seed=base.seed,
        time_threshold=base.time_threshold,
        guard_chains=base.guard_chains,
    )


def protect_one(
    program,
    config: Optional[ProtectConfig] = None,
    use_cache: bool = True,
) -> ProtectedProgram:
    """Protect one already-built program through the cached pipeline.

    The single-program entry point the benchmarks use; equivalent to
    ``Parallax(config).protect(program)`` but named for intent.
    """
    return Parallax(config).protect(program, use_cache=use_cache)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _run_task(task: dict) -> dict:
    """Build, protect (and optionally verify) one program.

    Runs under a private metrics registry so per-worker counts can be
    merged deterministically in the parent; returns only picklable
    data.  Used both by pool workers and the ``jobs=1`` inline path.

    When the parent's tracer is enabled (``task["tracing"]``), a
    private tracer captures this task's spans too; the parent adopts
    them via :meth:`Tracer.ingest` under its ``pipeline.program`` span,
    so worker spans are no longer dropped in multiprocessing runs.
    Likewise a private flight recorder captures this task's events when
    the parent's recorder is on (``task["recording"]``), shipped back
    for :meth:`FlightRecorder.ingest`.

    Any active :class:`~repro.telemetry.context.TelemetryContext` is
    suspended for the task body: samples collect in the private
    registry here and the *parent* labels them exactly once at merge
    time, keeping the inline ``jobs=1`` path identical to pool workers
    (which run context-free via ``worker_init``).
    """
    name = task["name"]
    config: ProtectConfig = task["config"]
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(enabled=bool(task.get("tracing")))
    recorder = FlightRecorder(enabled=bool(task.get("recording")))
    # The private objects are installed thread-locally (ContextVar), not
    # by swapping the process-wide telemetry: two threads running inline
    # pipelines concurrently must not see each other's task registries.
    with task_telemetry(registry, tracer, recorder), suspend_context():
        start = time.perf_counter()
        program = build_program_cached(name)
        protected = Parallax(config).protect(
            program, use_cache=task["use_cache"]
        )
        elapsed = time.perf_counter() - start
        behaviour = None
        if task["verify"]:
            baseline = program.run(max_steps=task["max_steps"])
            run = protected.run(max_steps=task["max_steps"])
            behaviour = (
                not run.crashed
                and run.stdout == baseline.stdout
                and run.exit_status == baseline.exit_status
            )
        samples = registry.to_dict()
        spans = tracer.to_events()
        events = recorder.to_events()
    hits = samples.get("cache.protect.hits", {}).get("value", 0)
    return {
        "name": name,
        "blob": pickle.dumps(
            (protected.image, protected.report), protocol=pickle.HIGHEST_PROTOCOL
        ),
        "elapsed": elapsed,
        "cache_hit": hits > 0,
        "behaviour_preserved": behaviour,
        "metrics": samples,
        "spans": spans,
        "events": events,
        "pid": os.getpid(),
    }


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def protect_all(
    names: Optional[Sequence[str]] = None,
    config: Optional[ProtectConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    verify: bool = False,
    max_steps: int = 300_000_000,
) -> List[PipelineResult]:
    """Protect every named corpus program, optionally in parallel.

    Args:
        names: program names; defaults to the full six-program corpus.
        config: base :class:`ProtectConfig`, specialized per program by
            :func:`config_for_program`.
        jobs: worker processes; ``1`` runs inline.
        cache_dir: enable the on-disk cache tier at this path for this
            run (and its workers).  ``None`` keeps the process-wide
            cache configuration as-is.
        use_cache: ``False`` forces full recomputation everywhere (the
            differential tests' control arm).
        verify: also run baseline and protected images and record
            behavioural equality per program (slow: full emulation).
        max_steps: emulation budget for ``verify``.

    Returns:
        :class:`PipelineResult` list in input order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    names = list(names if names is not None else PROGRAM_NAMES)
    manager = cache_manager()
    if cache_dir is not None and (
        manager.cache_dir != cache_dir or not manager.enabled
    ):
        manager = configure_cache(cache_dir=cache_dir)
    effective_cache_dir = manager.cache_dir
    cache_enabled = manager.enabled

    tasks = [
        {
            "name": name,
            "config": config_for_program(name, config),
            "use_cache": use_cache,
            "verify": verify,
            "max_steps": max_steps,
            "tracing": get_tracer().enabled,
            "recording": get_recorder().enabled,
        }
        for name in names
    ]

    metrics = get_metrics()
    tracer = get_tracer()
    recorder = get_recorder()
    results: List[PipelineResult] = []

    def _merge(entry: dict) -> None:
        """Adopt one finished task into the parent's telemetry.

        Called per result *as it arrives* (not after the whole batch),
        so labeled contexts, recorder subscribers, rolling windows and
        a ``repro top`` tailing the journal see pool progress live.
        When the parent runs under a TelemetryContext, ``metrics`` /
        ``recorder`` are the context's labeled objects — the context's
        labels are applied exactly once, here.
        """
        metrics.merge_samples(entry["metrics"])
        if entry.get("events"):
            recorder.ingest(entry["events"], pid=entry["pid"])
        image, report = pickle.loads(entry["blob"])
        with tracer.span(
            "pipeline.program",
            program=entry["name"],
            worker_pid=entry["pid"],
            cache_hit=entry["cache_hit"],
        ) as span:
            span.set_attribute("elapsed_s", entry["elapsed"])
            # Adopt the worker's spans under this program's span so
            # multiprocessing runs trace like inline ones; the
            # worker_pid attribute lanes them per process in the
            # Chrome-trace export.
            if entry.get("spans"):
                tracer.ingest(
                    entry["spans"],
                    parent_id=span.span_id,
                    extra_attributes={"worker_pid": entry["pid"]},
                )
        if recorder.enabled:
            recorder.record(
                "pipeline.task",
                program=entry["name"],
                seconds=entry["elapsed"],
                cache_hit=entry["cache_hit"],
                pid=entry["pid"],
            )
        results.append(
            PipelineResult(
                entry["name"],
                image,
                report,
                entry["elapsed"],
                entry["cache_hit"],
                entry["pid"],
                entry["behaviour_preserved"],
            )
        )

    with tracer.span(
        "protect_all", programs=len(tasks), jobs=jobs,
        cache_dir=effective_cache_dir or "",
    ):
        if jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                _merge(_run_task(task))
        else:
            ctx = mp_context()
            pool_size = min(jobs, len(tasks))
            with ctx.Pool(
                pool_size,
                initializer=worker_init,
                initargs=(effective_cache_dir, cache_enabled),
            ) as pool:
                # imap preserves input order, so merging incrementally
                # keeps the deterministic merge order of the old
                # collect-then-merge loop.
                for entry in pool.imap(_run_task, tasks, chunksize=1):
                    _merge(entry)

        metrics.counter("pipeline.programs").inc(len(results))
        metrics.counter("pipeline.cache_hits").inc(
            sum(1 for r in results if r.cache_hit)
        )
        metrics.gauge("pipeline.jobs").set(jobs)
    return results
