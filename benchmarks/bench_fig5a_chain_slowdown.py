"""Figure 5a — verification-function slowdown per hardening strategy.

Paper: cleartext 3.7x (gcc) - 46.7x (wget); RC4 7.6x - 64.3x, the worst
strategy; probabilistic and xor in between; lame's short chain makes the
RC4 key schedule dominate.

Our reproduction: cleartext 16x (gcc) - 44x (wget) with the same
ordering (wget's branchy digest is the slowest chain, gcc's
straight-line digest the fastest); RC4 and linear carry the largest
multipliers, dominated by per-call key-schedule/regeneration cost on
short chains — most extreme for the shortest chains, as in the paper.
"""

import pytest

from repro.core import STRATEGIES
from repro.corpus import PROGRAM_NAMES

import _shared

_rows = {}


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_fig5a_chain_slowdown(benchmark, name):
    native = _shared.digest_call_cycles(name, _shared.program(name).image)

    def measure():
        row = {}
        for strategy in STRATEGIES:
            image = _shared.protected(name, strategy).image
            row[strategy] = _shared.digest_call_cycles(name, image) / native
        return row

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    _rows[name] = row
    assert row["cleartext"] > 3.0          # chains are much slower...
    assert row["rc4"] > row["cleartext"]   # ...and RC4 is slower still
    assert row["xor"] >= row["cleartext"]


def test_fig5a_print_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in PROGRAM_NAMES:
        if name not in _rows:
            native = _shared.digest_call_cycles(name, _shared.program(name).image)
            _rows[name] = {
                s: _shared.digest_call_cycles(name, _shared.protected(name, s).image)
                / native
                for s in STRATEGIES
            }
    print()
    print("=== Figure 5a: verification function slowdown (x) ===")
    header = f"{'program':<8}" + "".join(f"{s:>12}" for s in STRATEGIES)
    print(header)
    for name in PROGRAM_NAMES:
        row = _rows[name]
        print(f"{name:<8}" + "".join(f"{row[s]:>11.1f}x" for s in STRATEGIES))
    clear = {n: _rows[n]["cleartext"] for n in PROGRAM_NAMES}
    assert max(clear, key=clear.get) == "wget"  # paper: wget 46.7x (top)
    assert min(clear, key=clear.get) == "gcc"   # paper: gcc 3.7x (bottom)
