"""The §IV-B rewriting rules."""

import pytest

from repro.rewrite import (
    ImmediateSplitter, RewriteEngine, plant_ret_byte, plant_ret_byte_add,
)
from repro.rewrite.fieldsearch import best_field_gadget, coverage_for_fields
from repro.x86 import Assembler, EAX, EBX, ECX, Imm
from repro.binary import BinaryImage, Perm, Section


def image_of(code):
    img = BinaryImage("t")
    img.add_section(Section(".text", 0x1000, code, Perm.RX))
    return img


class TestPlanting:
    def test_plant_ret_byte_xor(self):
        for value in (0, 0x12345678, 0xFFFFFFFF):
            for index in range(4):
                planted, diff = plant_ret_byte(value, index)
                assert planted ^ diff == value
                assert (planted >> (8 * index)) & 0xFF == 0xC3

    def test_plant_ret_byte_add(self):
        for value in (0, 0x12345678, 0xFFFFFFFF):
            for index in range(4):
                planted, comp = plant_ret_byte_add(value, index)
                assert (planted + comp) & 0xFFFFFFFF == value
                assert (planted >> (8 * index)) & 0xFF == 0xC3


class TestImmediateSplitter:
    def test_semantics_preserved(self):
        from repro.corpus import builders
        from repro.ropc.interpreter import Interpreter, IRMemory
        original = builders.mix32()
        split = ImmediateSplitter().transform(original)
        for x in (0, 1, 0xDEADBEEF):
            assert (
                Interpreter().run(original, [x]) == Interpreter().run(split, [x])
            )

    def test_planted_bytes_present_in_binary(self):
        from repro.corpus import builders
        from repro.ropc import compile_functions
        split = ImmediateSplitter().transform(builders.checksum_words())
        code, spans, _ = compile_functions([split], base=0x1000, entry_main=None)
        # every split Const now carries a 0xc3 in its imm32
        assert code.count(0xC3) > 3


class TestFieldSearch:
    def test_best_field_gadget_in_mov_imm(self):
        a = Assembler(base=0x1000)
        a.pop(EBX)                      # decodable prefix material
        a.mov(EAX, Imm(0x11223344, 32))
        a.ret()
        code = a.assemble()
        # field = the imm32 of the mov (offset 2..5)
        crafted = best_field_gadget(code, 0x1000, 2, 4)
        assert crafted is not None
        assert max(crafted.planted.values()) == 0xC3

    def test_coverage_bridges_across_fields(self):
        # Two adjacent mov-imm32s: a consumer byte planted at the end of
        # the first field swallows the second mov's opcode, landing in
        # the second field, where the ret is planted.  Coverage then
        # spans both instructions.
        a = Assembler(base=0x1000)
        a.mov(EBX, Imm(0x11111111, 32))   # field at 1..4
        a.mov(EAX, Imm(0x22222222, 32))   # field at 6..9
        a.ret()
        code = a.assemble()
        covered, candidates = coverage_for_fields(
            code, 0x1000, [(1, 4), (6, 4)]
        )
        assert {1, 4, 5, 6, 9} <= covered   # both fields + the gap opcode
        best = max(candidates, key=lambda c: c.length)
        assert best.length >= 9


class TestEngine:
    @pytest.fixture(scope="class")
    def analysis(self):
        from repro.corpus import build_gzip
        program = build_gzip(blocks=1, positions=4)
        return RewriteEngine().analyze(program.image)

    def test_rule_ranges_match_paper_shape(self, analysis):
        report = analysis.report
        assert 2.0 < report.percent("existing_near_ret") < 10.0
        assert report.percent("far_ret") <= 2.0
        assert 30.0 < report.percent("immediate_mod") < 75.0
        assert report.percent("jump_mod") > 3.0
        assert 40.0 < report.percent_any() < 95.0

    def test_candidates_synthetic(self, analysis):
        assert all(c.gadget.synthetic for c in analysis.immediate_candidates)
        assert all(c.gadget.synthetic for c in analysis.jump_candidates)

    def test_protect_instructions_mapping(self, analysis):
        engine = RewriteEngine()
        image = analysis.image
        sym = image.symbols["checksum_words"]
        addrs = list(range(sym.vaddr, sym.vaddr + sym.size))
        protection = engine.protect_instructions(image, addrs[:20])
        assert protection  # at least some bytes protectable

    def test_select_non_conflicting(self, analysis):
        chosen = RewriteEngine.select_non_conflicting(analysis.immediate_candidates)
        taken = set()
        for candidate in chosen:
            span = range(candidate.insn.address, candidate.insn.address + candidate.insn.length)
            assert not any(b in taken for b in span)
            taken.update(span)
