"""Attack evaluation harness.

Applies an attack to a (protected or unprotected) image, runs the
result, and scores the outcome against the pristine behaviour:

* ``detected`` — the tampered program crashed or its observable
  behaviour (stdout/exit status) diverged from what the attacker
  wanted; the tamper response fired.
* ``undetected`` — the attacker's goal state was reached with no
  behavioural damage; the protection failed.

For anti-debugging cracks the attacker's goal is "runs normally even
under a debugger", so the goal reference is the pristine run *without*
a debugger.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..emu import RunResult, run_image
from ..telemetry import get_metrics, get_recorder, get_tracer


class AttackOutcome:
    """Result of one attack evaluation."""

    __slots__ = ("attack", "detected", "reason", "run")

    def __init__(self, attack: str, detected: bool, reason: str, run: RunResult):
        self.attack = attack
        self.detected = detected
        self.reason = reason
        self.run = run

    def __repr__(self) -> str:
        verdict = "DETECTED" if self.detected else "undetected"
        return f"<AttackOutcome {self.attack}: {verdict} ({self.reason})>"


def evaluate_patch_attack(
    image: BinaryImage,
    patches: Iterable[Patch],
    goal: RunResult,
    attack_name: str = "patch",
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
) -> AttackOutcome:
    """Apply ``patches`` to a clone of ``image``, run, score vs ``goal``.

    ``goal`` is the behaviour the attacker wants to reach (typically the
    pristine no-debugger run).
    """
    patches = list(patches)
    with get_tracer().span(
        "evaluate_attack", attack=attack_name, patches=len(patches)
    ) as span:
        tampered = image.clone()
        for patch in patches:
            patch.apply(tampered)
        run = run_image(
            tampered, debugger_attached=debugger_attached, max_steps=max_steps
        )
        outcome = score_run(attack_name, run, goal)
        span.set_attribute("detected", outcome.detected)
        span.set_attribute("reason", outcome.reason)
        return outcome


def score_run(attack_name: str, run: RunResult, goal: RunResult) -> AttackOutcome:
    if run.crashed:
        outcome = AttackOutcome(attack_name, True, f"crash: {run.fault}", run)
    elif run.stdout != goal.stdout:
        outcome = AttackOutcome(attack_name, True, "stdout diverged", run)
    elif run.exit_status != goal.exit_status:
        outcome = AttackOutcome(attack_name, True, "exit status diverged", run)
    else:
        outcome = AttackOutcome(attack_name, False, "attacker goal reached", run)
    metrics = get_metrics()
    metrics.counter("attacks.evaluated").inc()
    metrics.counter(
        "attacks.detected" if outcome.detected else "attacks.undetected"
    ).inc()
    recorder = get_recorder()
    if recorder.enabled:
        recorder.record(
            "attack",
            name=attack_name,
            detected=outcome.detected,
            reason=outcome.reason,
            exit_status=run.exit_status,
            steps=run.steps,
        )
    return outcome
