"""Engine hot-spot profiler: sampling, aggregation, metrics export."""

from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator, HotspotProfiler
from repro.telemetry import MetricsRegistry, telemetry_session
from repro.x86 import Assembler, EAX, ECX, Imm

BASE = 0x1000


def make_loop_image(n=50):
    a = Assembler(base=BASE)
    a.mov(ECX, Imm(n, 32))
    a.mov(EAX, 0)
    a.label("top")
    a.add(EAX, ECX)
    a.dec(ECX)
    a.jne("top")
    a.ret()
    img = BinaryImage("t")
    img.add_section(Section(".text", BASE, a.assemble(), Perm.RX))
    img.add_section(Section(".data", 0x8000, bytes(256), Perm.RW))
    return img


class FakeBlock:
    def __init__(self, start, mnems):
        self.start = start
        self.mnems = tuple(mnems)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


def test_step_and_block_samples_merge():
    hot = HotspotProfiler()
    for _ in range(3):
        hot.record_step("mov")
    hot.record_step("ret")
    block = FakeBlock(0x1000, ("mov", "add", "mov"))
    hot.record_block(block)
    hot.record_block(block)
    counts = hot.mnemonic_counts()
    # block executions expand to executions x occurrences
    assert counts["mov"] == 3 + 2 * 2
    assert counts["add"] == 2
    assert counts["ret"] == 1
    assert hot.block_samples == {0x1000: 2}
    assert hot.total_samples == sum(counts.values())
    assert hot.top_mnemonics(1) == [("mov", 7)]
    assert hot.top_blocks(1) == [(0x1000, 2)]


def test_ties_rank_deterministically_and_clear_resets():
    hot = HotspotProfiler()
    hot.record_step("b")
    hot.record_step("a")
    assert hot.top_mnemonics(2) == [("a", 1), ("b", 1)]  # count desc, then name
    hot.clear()
    assert hot.total_samples == 0
    assert hot.report() == "no hot-spot samples recorded"


def test_report_renders_mnemonic_and_block_tables():
    hot = HotspotProfiler()
    hot.record_step("mov")
    hot.record_block(FakeBlock(0x2000, ("ret",)))
    out = hot.report()
    assert "engine hot spots" in out
    assert "mov" in out and "ret" in out
    assert "0x00002000" in out  # block table keyed by start address


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


def test_step_engine_samples_every_instruction():
    emu = Emulator(make_loop_image(), max_steps=100_000, engine="step")
    emu.hotspots = HotspotProfiler()
    emu.call_function(BASE)
    counts = emu.hotspots.mnemonic_counts()
    assert sum(counts.values()) == emu.steps
    assert counts.get("add", 0) >= 50
    assert not emu.hotspots.block_samples  # no blocks in the step engine


def test_block_engine_samples_block_executions():
    emu = Emulator(make_loop_image(), max_steps=100_000, engine="block")
    emu.hotspots = HotspotProfiler()
    emu.call_function(BASE)
    hot = emu.hotspots
    assert hot.block_samples, "block engine must record block executions"
    assert max(hot.block_samples.values()) >= 40  # the loop body re-enters
    counts = hot.mnemonic_counts()
    assert counts.get("add", 0) >= 50


def test_no_sampling_without_a_profiler():
    emu = Emulator(make_loop_image(), max_steps=100_000, engine="block")
    emu.call_function(BASE)
    assert emu.hotspots is None  # call_function never auto-installs


# ----------------------------------------------------------------------
# Auto-install policy (REPRO_HOTSPOTS) and metrics export
# ----------------------------------------------------------------------


def test_auto_install_follows_metrics_and_env(monkeypatch):
    img = make_loop_image()
    monkeypatch.delenv("REPRO_HOTSPOTS", raising=False)
    emu = Emulator(img, max_steps=100_000, engine="step")
    emu._maybe_enable_hotspots(MetricsRegistry(enabled=False))
    assert emu.hotspots is None  # auto + metrics off -> no profiler
    emu._maybe_enable_hotspots(MetricsRegistry(enabled=True))
    assert emu.hotspots is not None and emu._hotspots_auto

    monkeypatch.setenv("REPRO_HOTSPOTS", "0")
    forced_off = Emulator(img, max_steps=100_000, engine="step")
    forced_off._maybe_enable_hotspots(MetricsRegistry(enabled=True))
    assert forced_off.hotspots is None  # "0" beats enabled metrics

    monkeypatch.setenv("REPRO_HOTSPOTS", "1")
    forced_on = Emulator(img, max_steps=100_000, engine="step")
    forced_on._maybe_enable_hotspots(MetricsRegistry(enabled=False))
    assert forced_on.hotspots is not None  # "1" beats disabled metrics


def test_auto_install_never_replaces_a_caller_profiler(monkeypatch):
    monkeypatch.setenv("REPRO_HOTSPOTS", "1")
    emu = Emulator(make_loop_image(), max_steps=100_000, engine="step")
    mine = HotspotProfiler()
    emu.hotspots = mine
    emu._maybe_enable_hotspots(MetricsRegistry(enabled=True))
    assert emu.hotspots is mine and not emu._hotspots_auto


def test_metrics_export_flushes_auto_profiler():
    emu = Emulator(make_loop_image(), max_steps=100_000, engine="step")
    emu.hotspots = HotspotProfiler()
    emu._hotspots_auto = True
    emu.call_function(BASE)
    registry = MetricsRegistry(enabled=True)
    emu._record_engine_metrics(registry)
    samples = registry.to_dict()
    assert samples['emu.hot.mnemonic{mnemonic="add"}']["value"] >= 50
    # auto-installed profilers are cleared after the flush so repeated
    # runs do not double-count
    assert emu.hotspots.total_samples == 0


def test_metrics_export_retains_explicit_profiler():
    emu = Emulator(make_loop_image(), max_steps=100_000, engine="block")
    mine = HotspotProfiler()
    emu.hotspots = mine  # caller-installed: _hotspots_auto stays False
    emu.call_function(BASE)
    registry = MetricsRegistry(enabled=True)
    emu._record_engine_metrics(registry)
    samples = registry.to_dict()
    assert any(name.startswith("emu.hot.block{") for name in samples)
    assert mine.total_samples > 0  # left intact for the caller


def test_run_under_metrics_session_exports_hot_counters(monkeypatch):
    monkeypatch.delenv("REPRO_HOTSPOTS", raising=False)
    with telemetry_session(metrics=True) as (metrics, _tracer):
        emu = Emulator(make_loop_image(), max_steps=100_000, engine="step")
        emu.cpu.eip = BASE
        emu.run()  # the bare `ret` faults; metrics still flush
        samples = metrics.to_dict()
    hot_names = [n for n in samples if n.startswith("emu.hot.mnemonic{")]
    assert hot_names, "run() must auto-install and flush the profiler"
    assert emu.hotspots is not None and emu.hotspots.total_samples == 0
