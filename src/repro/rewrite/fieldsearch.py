"""Field-level gadget synthesis — the core of the modification rules.

An immediate operand or branch displacement is a *field* of 1–4 bytes
whose value Parallax controls completely (by instruction splitting, xor
compensation, or target/variable relocation).  To craft a gadget that
overlaps the code before the field, we look for a decode path that
starts in the preceding instruction bytes and reaches an instruction
boundary *inside* the field; the remaining field bytes are then planted
with filler (nop) and a terminating ``ret``:

    real bytes ... | field byte .. byte | ...
    [ body instructions ][ nop .. nop ret]
    ^ gadget start                     ^ planted 0xc3

The body decodes from genuine (unmodifiable) bytes, so the gadget is
valid by construction; everything from its start to the end of the
field becomes protectable.  This is exactly the paper's "a partial
gadget may be combined with an adjacent immediate operand if this
operand can be modified to encode the missing portion of the desired
gadget" (§IV-B2), and its jump-offset twin (§IV-B3).
"""

from __future__ import annotations

from typing import List, Optional

from ..gadgets.finder import MAX_LOOKBACK_BYTES
from ..gadgets.semantics import classify
from ..gadgets.types import Gadget
from ..x86.decoder import decode
from ..x86.errors import DecodeError
from ..x86.instruction import Instruction

NOP = 0x90
RET = 0xC3


class FieldGadget:
    """A synthesizable gadget anchored in a controllable field.

    Attributes:
        gadget: the classified gadget (synthetic).
        start: gadget start address.
        planted: mapping of field byte offset -> value to plant
            (relative to the field start).
    """

    __slots__ = ("gadget", "planted")

    def __init__(self, gadget: Gadget, planted: dict):
        self.gadget = gadget
        self.planted = planted


def find_field_gadgets(
    data: bytes,
    base: int,
    field_start: int,
    field_width: int,
    max_insns: int = 6,
) -> List[FieldGadget]:
    """All gadgets craftable around one controllable field.

    Args:
        data: section bytes.
        base: section virtual address.
        field_start: offset of the field within ``data``.
        field_width: field size in bytes (1–4).
        max_insns: gadget length bound (paper: 6).
    """
    field_last = field_start + field_width - 1
    results: List[FieldGadget] = []
    lo = max(0, field_start - MAX_LOOKBACK_BYTES)

    for start in range(lo, field_last + 1):
        crafted = _craft_from(data, base, start, field_start, field_last, max_insns)
        if crafted is not None:
            results.append(crafted)
    return results


def best_field_gadget(
    data: bytes,
    base: int,
    field_start: int,
    field_width: int,
    max_insns: int = 6,
) -> Optional[FieldGadget]:
    """The longest craftable gadget for a field (None if impossible)."""
    best = None
    for crafted in find_field_gadgets(data, base, field_start, field_width, max_insns):
        if best is None or crafted.gadget.length > best.gadget.length:
            best = crafted
    return best


def _craft_from(
    data: bytes,
    base: int,
    start: int,
    field_start: int,
    field_last: int,
    max_insns: int,
) -> Optional[FieldGadget]:
    """Try to craft a gadget starting at ``start``.

    Decodes real bytes until a boundary falls inside the field, then
    plants nop-filler and a ret up to the field end.  Field bytes read
    by body instructions keep their current values (a legal choice — we
    control them).
    """
    instructions: List[Instruction] = []
    pos = start
    while len(instructions) < max_insns:
        if field_start <= pos <= field_last:
            break  # boundary inside the field: plant the tail here
        try:
            insn = decode(data, pos, address=base + pos)
        except DecodeError:
            return None
        if insn.is_return:
            return None  # plain existing gadget; not this rule's find
        if insn.is_control_flow:
            return None
        instructions.append(insn)
        pos += insn.length
        if pos > field_last:
            return None  # overshot the whole field
    else:
        return None

    filler = field_last - pos
    if len(instructions) + filler + 1 > max_insns:
        return None

    planted = {}
    for i in range(filler):
        planted[pos - field_start + i] = NOP
        instructions.append(
            Instruction("nop", (), raw=b"\x90", address=base + pos + i)
        )
    planted[field_last - field_start] = RET
    instructions.append(
        Instruction("ret", (), raw=b"\xc3", address=base + field_last)
    )

    gadget = classify(instructions)
    if gadget is None:
        return None
    gadget.synthetic = True
    gadget.provenance = "field"
    return FieldGadget(gadget, planted)


# ----------------------------------------------------------------------
# Field-composition coverage (dynamic program)
# ----------------------------------------------------------------------
#
# Fields are dense in compiled code (most instructions carry an
# immediate or displacement).  Parallax can plant bytes in *several*
# fields of one gadget: a byte near the end of field A can encode a
# "consumer" opcode whose operand swallows the fixed bytes between A
# and the next field B, so the decode path lands inside B — where
# filler and the terminating ret can be planted.  Chaining this across
# fields yields gadgets spanning long stretches of code, which is how
# the paper's rules reach their Fig. 6 coverage.
#
# Consumer feasibility, by fixed-gap length g (register-only consumers,
# no memory side effects):
#   g == 1: 1 plantable byte  (e.g. 0x04: add al, imm8)
#   g == 2: 2 plantable bytes (e.g. 0x66 0x05: add ax, imm16)
#   g == 4: 1 plantable byte  (e.g. 0xb8: mov eax, imm32)
#   g == 3: 3 plantable bytes (e.g. 0x66 0xc7 0xc0: mov word ax-form imm16)
#: plantable-byte cost to consume a fixed gap of g bytes.
_CONSUMER_COST = {1: 1, 2: 2, 3: 3, 4: 1}

#: Mnemonics that end a fixed-byte decode step inside the DP.
from ..x86.instruction import CONTROL_FLOW as _CONTROL_FLOW

_DP_FORBIDDEN = _CONTROL_FLOW | {
    "leave", "pushad", "popad", "div", "idiv", "in", "out", "cli",
    "sti", "enter", "into", "bound", "int3",
}


class SpanCandidate:
    """Lightweight record of a craftable overlapping gadget (DP result).

    Carries enough for coverage accounting and protection planning;
    :func:`materialize` upgrades it to a full classified gadget when the
    pipeline actually applies the rule.
    """

    __slots__ = ("start", "end", "anchor_field", "insn", "provenance")

    def __init__(self, start, end, anchor_field, insn=None, provenance="field_dp"):
        self.start = start
        self.end = end
        self.anchor_field = anchor_field
        self.insn = insn
        self.provenance = provenance

    @property
    def length(self):
        return self.end - self.start

    def span(self):
        return range(self.start, self.end)

    def __repr__(self):
        return f"<SpanCandidate {self.start:#x}..{self.end:#x}>"


def coverage_for_fields(data, base, fields, max_insns=6):
    """Protectable-byte coverage achievable over a set of fields.

    Args:
        data: section bytes.
        base: section virtual address.
        fields: list of (offset, width) controllable byte ranges,
            non-overlapping.
        max_insns: gadget instruction bound (nops/consumers count).

    Returns:
        (covered, candidates): a set of covered *offsets* and one
        :class:`SpanCandidate` per anchor field that can host a ret.
    """
    n = len(data)
    field_at = {}
    field_list = sorted(fields)
    for start, width in field_list:
        for i in range(width):
            field_at[start + i] = (start, width)

    # next_field_start[pos]: start of the first field at or after pos
    starts = [s for s, _ in field_list]
    import bisect

    def next_field(pos):
        idx = bisect.bisect_left(starts, pos)
        if idx < len(starts):
            return field_list[idx]
        return None

    # steps[pos] -> list of (next_pos, insn_count_cost) transitions
    # computed lazily; terminal[pos] = True if a ret can be planted at pos
    decode_cache = {}

    def fixed_step(pos):
        """Decode one real instruction at pos; None if unusable."""
        if pos in decode_cache:
            return decode_cache[pos]
        result = None
        try:
            insn = decode(data, pos, address=base + pos)
        except DecodeError:
            insn = None
        if insn is not None and not insn.is_return:
            if insn.mnemonic not in _DP_FORBIDDEN:
                writes_esp = any(
                    getattr(op, "name", None) == "esp" and i == 0
                    for i, op in enumerate(insn.operands)
                )
                if not writes_esp or insn.mnemonic in ("push", "pop"):
                    result = pos + insn.length
        decode_cache[pos] = result
        return result

    # Walk from every start; record the farthest-back start that reaches
    # a plantable termination, per anchor field.
    covered = set()
    best_for_anchor = {}

    def filler_insns(nbytes):
        # planted filler need not be single nops: mov ax, imm16 covers 4
        # bytes in one instruction, add al, imm8 covers 2, etc.
        return (nbytes + 3) // 4

    for start in range(n):
        pos = start
        insns = 0
        # budget walk
        while insns < max_insns and pos < n:
            field = field_at.get(pos)
            if field is not None:
                fstart, fwidth = field
                fend = fstart + fwidth  # one past last byte
                # Option A: plant filler then ret at the field's last byte.
                filler = filler_insns((fend - 1) - pos)
                if insns + filler + 1 <= max_insns:
                    end = fend  # gadget covers through the ret byte
                    covered.update(range(start, end))
                    prev = best_for_anchor.get(fstart)
                    if prev is None or base + start < prev.start:
                        best_for_anchor[fstart] = SpanCandidate(
                            base + start, base + end, (fstart, fwidth)
                        )
                # Option B: bridge across the fixed gap to the next field
                # with a consumer instruction planted at the field tail.
                nxt = next_field(fend)
                if nxt is not None:
                    gap = nxt[0] - fend
                    cost = _CONSUMER_COST.get(gap)
                    if cost is not None and (fend - pos) >= cost:
                        # filler up to the consumer, consumer, then land
                        steps = filler_insns((fend - pos) - cost) + 1
                        if insns + steps <= max_insns:
                            pos = nxt[0]
                            insns += steps
                            continue
                # Option C: filler through the rest of the field, falling
                # into the fixed bytes after it (no bridge needed if the
                # next bytes decode).
                filler = filler_insns(fend - pos)
                if insns + filler <= max_insns:
                    pos = fend
                    insns += filler
                    continue
                break
            nxt_pos = fixed_step(pos)
            if nxt_pos is None:
                break
            pos = nxt_pos
            insns += 1
    return covered, list(best_for_anchor.values())
