"""Telemetry-of-telemetry: enabled-overhead measurement and budget.

The whole telemetry substrate is justified by one claim: leaving it on
is cheap.  This module makes that claim falsifiable.
:func:`measure_overhead` times a representative workload with
telemetry fully disabled and again with metrics + tracing + recorder
enabled, and reports the enabled-overhead fraction; CI runs it (see
``benchmarks/bench_telemetry_overhead.py``) and fails the build when
the fraction exceeds the budget (default **5%**, override with
``REPRO_TELEMETRY_BUDGET``).

The same numbers are also observable *from inside a run*:
:func:`publish_overhead` turns a report into ``telemetry.overhead.*``
gauges, and :func:`self_accounting` snapshots the recorder's sampled
``self_seconds`` — so an exported metrics artifact carries the cost of
its own collection.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "DEFAULT_BUDGET",
    "OverheadReport",
    "measure_overhead",
    "publish_overhead",
    "self_accounting",
]

#: Maximum tolerated enabled-telemetry overhead as a fraction of the
#: disabled runtime.  ``REPRO_TELEMETRY_BUDGET`` overrides.
DEFAULT_BUDGET = 0.05

BUDGET_ENV = "REPRO_TELEMETRY_BUDGET"


def configured_budget() -> float:
    raw = os.environ.get(BUDGET_ENV)
    if raw is None:
        return DEFAULT_BUDGET
    budget = float(raw)
    if budget <= 0:
        raise ValueError(f"{BUDGET_ENV} must be positive, got {budget}")
    return budget


@dataclass
class OverheadReport:
    """Result of one off-vs-on overhead measurement."""

    off_seconds: float
    on_seconds: float
    budget: float
    repeats: int
    recorder_self_seconds: float = 0.0

    @property
    def fraction(self) -> float:
        """Enabled overhead relative to the disabled runtime (>= 0)."""
        if self.off_seconds <= 0:
            return 0.0
        return max(0.0, (self.on_seconds - self.off_seconds) / self.off_seconds)

    @property
    def within_budget(self) -> bool:
        return self.fraction <= self.budget

    def to_dict(self) -> dict:
        return {
            "off_seconds": self.off_seconds,
            "on_seconds": self.on_seconds,
            "fraction": self.fraction,
            "budget": self.budget,
            "within_budget": self.within_budget,
            "repeats": self.repeats,
            "recorder_self_seconds": self.recorder_self_seconds,
        }

    def __str__(self) -> str:
        verdict = "within" if self.within_budget else "OVER"
        return (
            f"telemetry overhead {self.fraction:.2%} "
            f"(off {self.off_seconds:.4f}s, on {self.on_seconds:.4f}s; "
            f"{verdict} {self.budget:.0%} budget)"
        )


def _best_of(workload: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        workload()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def measure_overhead(
    workload: Callable[[], None],
    repeats: int = 3,
    budget: Optional[float] = None,
    warmup: int = 1,
) -> OverheadReport:
    """Time ``workload`` telemetry-off vs telemetry-on (best of
    ``repeats``); interleaving-free: all off runs, then all on runs,
    after ``warmup`` untimed calls to absorb import/JIT warm-up.

    The "on" configuration is the most expensive supported one —
    metrics, tracing *and* the flight recorder enabled — so the
    reported fraction upper-bounds what any real run pays.
    """
    from . import get_recorder, telemetry_session

    budget = configured_budget() if budget is None else budget
    for _ in range(warmup):
        workload()
    with telemetry_session(metrics=False, tracing=False):
        off_seconds = _best_of(workload, repeats)
    with telemetry_session(metrics=True, tracing=True, recorder=True):
        on_seconds = _best_of(workload, repeats)
        recorder_self = get_recorder().self_seconds
    return OverheadReport(
        off_seconds=off_seconds,
        on_seconds=on_seconds,
        budget=budget,
        repeats=repeats,
        recorder_self_seconds=recorder_self,
    )


def publish_overhead(report: OverheadReport, registry=None) -> None:
    """Expose a report as ``telemetry.overhead.*`` gauges."""
    if registry is None:
        from . import get_metrics

        registry = get_metrics()
    registry.gauge("telemetry.overhead.fraction").set(report.fraction)
    registry.gauge("telemetry.overhead.off_seconds").set(report.off_seconds)
    registry.gauge("telemetry.overhead.on_seconds").set(report.on_seconds)
    registry.gauge("telemetry.overhead.budget").set(report.budget)
    registry.gauge("telemetry.overhead.recorder_self_seconds").set(
        report.recorder_self_seconds
    )


def self_accounting(registry=None) -> float:
    """Snapshot the recorder's own sampled cost into the registry.

    Returns the recorder's extrapolated ``self_seconds``; the CLI calls
    this just before exporting metrics so every artifact records what
    its journal cost to keep.
    """
    from . import get_recorder

    recorder = get_recorder()
    self_seconds = getattr(recorder, "self_seconds", 0.0)
    if registry is None:
        from . import get_metrics

        registry = get_metrics()
    registry.gauge("telemetry.overhead.recorder_self_seconds").set(self_seconds)
    return self_seconds
