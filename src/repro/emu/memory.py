"""Paged emulator memory with split instruction/data views.

Modern processors keep separate instruction and data caches.  Wurster et
al. exploited this to defeat checksumming tamper-proofing: a kernel patch
lets an attacker modify the *instruction* view of a page while loads keep
seeing the pristine *data* view — so checksums pass while the CPU runs
modified code.

:class:`Memory` models exactly that: normal reads/writes go to the
unified store; :meth:`patch_code_view` installs bytes that are visible
only to :meth:`fetch` (instruction fetch).  The Wurster attack in
:mod:`repro.attacks.wurster` is implemented on top of this hook, letting
us demonstrate that checksumming baselines are blind to it while Parallax
is not (Parallax chains *execute* the protected bytes, so they see the
instruction view).
"""

from __future__ import annotations

from typing import Dict, Optional

from .errors import BadMemoryAccess

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Sparse paged memory."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}
        #: instruction-view overlay: vaddr -> byte (only consulted by fetch)
        self._code_overlay: Dict[int, int] = {}
        #: per-page write counters; lets the emulator's decode cache
        #: detect self-modifying (or tampered) code cheaply.
        self._versions: Dict[int, int] = {}

    def page_version(self, vaddr: int) -> int:
        """Monotonic counter bumped whenever the page of ``vaddr`` changes."""
        return self._versions.get(vaddr >> 12, 0)

    def _bump(self, vaddr: int, length: int = 1) -> None:
        first = vaddr >> 12
        last = (vaddr + max(length - 1, 0)) >> 12
        for number in range(first, last + 1):
            self._versions[number] = self._versions.get(number, 0) + 1

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map(self, vaddr: int, data: bytes) -> None:
        """Map ``data`` at ``vaddr``, allocating pages as needed."""
        for i, byte in enumerate(data):
            addr = vaddr + i
            page = self._page_for(addr, create=True)
            page[addr & PAGE_MASK] = byte
        if data:
            self._bump(vaddr, len(data))

    def map_zero(self, vaddr: int, size: int) -> None:
        """Map ``size`` zero bytes at ``vaddr``."""
        first_page = vaddr >> 12
        last_page = (vaddr + size - 1) >> 12
        for number in range(first_page, last_page + 1):
            self._pages.setdefault(number, bytearray(PAGE_SIZE))

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr >> 12) in self._pages

    def _page_for(self, vaddr: int, create: bool = False) -> bytearray:
        number = vaddr >> 12
        page = self._pages.get(number)
        if page is None:
            if not create:
                raise BadMemoryAccess(f"unmapped address {vaddr:#x}")
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    # ------------------------------------------------------------------
    # Data view (loads and stores)
    # ------------------------------------------------------------------

    def read(self, vaddr: int, length: int) -> bytes:
        """Data-view read. Never sees the instruction overlay."""
        out = bytearray(length)
        pos = 0
        while pos < length:
            addr = vaddr + pos
            page = self._page_for(addr)
            off = addr & PAGE_MASK
            chunk = min(length - pos, PAGE_SIZE - off)
            out[pos : pos + chunk] = page[off : off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, vaddr: int, payload: bytes) -> None:
        """Data-view write (also updates what fetch sees, unless an
        instruction-overlay byte shadows it — as on real hardware until
        the i-cache line is flushed)."""
        pos = 0
        while pos < len(payload):
            addr = vaddr + pos
            page = self._page_for(addr, create=False)
            off = addr & PAGE_MASK
            chunk = min(len(payload) - pos, PAGE_SIZE - off)
            page[off : off + chunk] = payload[pos : pos + chunk]
            pos += chunk
        if payload:
            self._bump(vaddr, len(payload))

    def read_u8(self, vaddr: int) -> int:
        return self._page_for(vaddr)[vaddr & PAGE_MASK]

    def write_u8(self, vaddr: int, value: int) -> None:
        self._page_for(vaddr)[vaddr & PAGE_MASK] = value & 0xFF
        self._bump(vaddr)

    def read_u16(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 2), "little")

    def read_u32(self, vaddr: int) -> int:
        off = vaddr & PAGE_MASK
        if off <= PAGE_SIZE - 4:  # fast path: within one page
            page = self._page_for(vaddr)
            return int.from_bytes(page[off : off + 4], "little")
        return int.from_bytes(self.read(vaddr, 4), "little")

    def write_u16(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, vaddr: int, value: int) -> None:
        off = vaddr & PAGE_MASK
        if off <= PAGE_SIZE - 4:  # fast path: within one page
            page = self._page_for(vaddr)
            page[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
            number = vaddr >> 12
            self._versions[number] = self._versions.get(number, 0) + 1
            return
        self.write(vaddr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # ------------------------------------------------------------------
    # Instruction view (fetch)
    # ------------------------------------------------------------------

    def fetch(self, vaddr: int, length: int) -> bytes:
        """Instruction-view read: overlay bytes shadow the unified store."""
        data = bytearray(self.read(vaddr, length))
        if self._code_overlay:
            for i in range(length):
                byte = self._code_overlay.get(vaddr + i)
                if byte is not None:
                    data[i] = byte
        return bytes(data)

    def fetch_window(self, vaddr: int, length: int = 16) -> bytes:
        """Fetch up to ``length`` bytes for decoding, clamped to mapped pages."""
        out = bytearray()
        for i in range(length):
            addr = vaddr + i
            if not self.is_mapped(addr):
                break
            out.append(self._page_for(addr)[addr & PAGE_MASK])
        if self._code_overlay:
            for i in range(len(out)):
                byte = self._code_overlay.get(vaddr + i)
                if byte is not None:
                    out[i] = byte
        return bytes(out)

    # ------------------------------------------------------------------
    # Wurster-attack hook
    # ------------------------------------------------------------------

    def patch_code_view(self, vaddr: int, payload: bytes) -> None:
        """Modify the instruction view only (the Wurster et al. primitive).

        Data reads of the same addresses keep returning the pristine
        bytes, so checksumming code computes correct checksums over
        tampered code.
        """
        for i, byte in enumerate(payload):
            if not self.is_mapped(vaddr + i):
                raise BadMemoryAccess(f"unmapped address {vaddr + i:#x}")
            self._code_overlay[vaddr + i] = byte
        if payload:
            self._bump(vaddr, len(payload))

    def clear_code_view(self, vaddr: Optional[int] = None, length: int = 0) -> None:
        """Drop overlay bytes (all of them, or a range)."""
        if vaddr is None:
            addrs = list(self._code_overlay)
            self._code_overlay.clear()
            for addr in addrs:
                self._bump(addr)
            return
        for addr in range(vaddr, vaddr + length):
            self._code_overlay.pop(addr, None)
        if length:
            self._bump(vaddr, length)

    @property
    def code_view_dirty(self) -> bool:
        """True while any instruction-view overlay byte is installed."""
        return bool(self._code_overlay)
