"""Shared multiprocessing plumbing for pipeline fan-out.

Both the protect-all runner and the gadget finder's per-section fan-out
need the same things from a worker pool: a start-method choice that
prefers ``fork``, a worker initializer that mirrors the parent's cache
configuration (and silences worker telemetry — workers report samples
back explicitly instead), and order-preserving task mapping so results
merge deterministically no matter which worker finishes first.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence

__all__ = ["mp_context", "worker_init", "run_tasks"]


def mp_context():
    """The preferred multiprocessing context (``fork`` when available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def worker_init(cache_dir: Optional[str], enabled: bool) -> None:
    """Pool initializer: mirror the parent's cache configuration.

    Under the ``spawn`` start method nothing is inherited, so the
    parent's effective cache directory is re-applied explicitly; under
    ``fork`` this simply rebuilds the manager with empty memory tiers
    (the disk tier is the shared medium between processes).  Worker
    telemetry is disabled: tasks that want metrics run under private
    registries and ship samples back to the parent for ordered merging.
    """
    from ..cache import configure_cache

    configure_cache(cache_dir=cache_dir, enabled=enabled)
    from .. import telemetry

    telemetry.disable()
    # fork-started workers inherit the parent's ContextVar state; an
    # inherited TelemetryContext would swallow samples into a forked
    # copy of the parent's child registry that never flushes home.
    telemetry.clear_context()


def run_tasks(
    func: Callable[[dict], dict],
    tasks: Sequence[dict],
    jobs: int,
) -> List[dict]:
    """Map ``func`` over ``tasks`` on a worker pool, preserving order.

    ``jobs=1`` (or a single task) runs inline in this process — no
    subprocesses, the parent's telemetry and cache see everything.
    Otherwise a pool of ``min(jobs, len(tasks))`` workers is forked with
    :func:`worker_init` mirroring the parent's cache configuration, and
    results come back in input order (``imap`` preserves it).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    tasks = list(tasks)
    if jobs == 1 or len(tasks) <= 1:
        return [func(task) for task in tasks]
    from ..cache import cache_manager

    manager = cache_manager()
    ctx = mp_context()
    with ctx.Pool(
        min(jobs, len(tasks)),
        initializer=worker_init,
        initargs=(manager.cache_dir, manager.enabled),
    ) as pool:
        return list(pool.imap(func, tasks, chunksize=1))
