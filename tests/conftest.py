"""Shared fixtures: small corpus variants so the suite stays fast."""

import pytest

from repro.core import Parallax, ProtectConfig
from repro.corpus import build_gzip, build_wget


@pytest.fixture(scope="session")
def small_wget():
    """wget with a tiny workload (still calls its digest each block)."""
    return build_wget(blocks=2, chunks=10)


@pytest.fixture(scope="session")
def small_gzip():
    return build_gzip(blocks=2, positions=6)


@pytest.fixture(scope="session")
def small_wget_baseline(small_wget):
    result = small_wget.run()
    assert not result.crashed
    return result


@pytest.fixture(scope="session")
def protected_wget_cleartext(small_wget):
    config = ProtectConfig(
        strategy="cleartext", verification_functions=["digest_wget"]
    )
    return Parallax(config).protect(small_wget)


@pytest.fixture(scope="session")
def protected_wget_rc4(small_wget):
    config = ProtectConfig(strategy="rc4", verification_functions=["digest_wget"])
    return Parallax(config).protect(small_wget)


@pytest.fixture(scope="session")
def protected_wget_linear(small_wget):
    config = ProtectConfig(
        strategy="linear", verification_functions=["digest_wget"], n_variants=4
    )
    return Parallax(config).protect(small_wget)
