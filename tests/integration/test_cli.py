"""The command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("wget", "gcc", "lame"):
        assert name in out


def test_run_gzip(capsys):
    assert main(["run", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "exit" in out and "cycles" in out


def test_run_with_debugger_refused(capsys):
    # wget refuses to run under a debugger (exit 99, still a clean exit)
    assert main(["run", "wget", "--debugger"]) == 0
    assert "99" in capsys.readouterr().out


def test_analyze(capsys):
    assert main(["analyze", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "near-ret%" in out and "gzip" in out


def test_unknown_program_rejected():
    with pytest.raises(SystemExit):
        main(["run", "notaprogram"])
