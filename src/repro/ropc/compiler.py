"""ROP backend: translate an IR function into a verification chain.

This plays the role of the modified ROPC compiler in the paper's
prototype.  Straight-line operations map to typed gadgets; control flow
is implemented by *stack pivoting*: computing the next chain address
into a register and moving it into esp (conditionals select between two
chain addresses branch-free with the classic ``neg``/``sbb``/mask
trick, so no flag state needs to survive across unrelated gadgets).

Calling convention glue (reading arguments from the protected
function's original stack frame, delivering the return value through
the saved-register block, and resuming native execution) is described
in :mod:`repro.core.stubs`, which emits the matching loader stub.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..gadgets.types import GadgetKind, GadgetOp
from ..telemetry import get_metrics, get_tracer
from ..x86.registers import EAX, EBP, Register
from . import ir
from .chain import RopChain

#: Byte offset of the saved-eax slot inside the pushad block.
PUSHAD_EAX_OFFSET = 28
#: Offset of argument ``i`` from the saved (post-pushad) stack pointer:
#: 32 bytes of pushad block + 4 bytes of return address.
ARG_BASE_OFFSET = 36


class RopCompileError(Exception):
    pass


class RopCompiler:
    """Compiles IR functions to placeholder chains (kinds, not addresses).

    Args:
        frame_cell: address of the cell the loader stub stores the
            post-pushad stack pointer into.
        resume_cell: address of the cell holding the pivot-back esp.
        scratch: two registers the chain may clobber that the function
            does not use; ``ebp`` plus one free IR register by default.
    """

    def __init__(
        self,
        frame_cell: int,
        resume_cell: int,
        scratch: Optional[Sequence[Register]] = None,
    ):
        self.frame_cell = frame_cell
        self.resume_cell = resume_cell
        self._scratch_override = tuple(scratch) if scratch else None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def compile(self, function: ir.IRFunction) -> RopChain:
        with get_tracer().span("compile_chain", function=function.name) as span:
            function.validate()
            if not function.is_leaf:
                raise RopCompileError(
                    f"{function.name}: only leaf functions can become chains"
                )
            scratch = self._pick_scratch(function)
            chain = RopChain(name=f"rop_{function.name}")
            chain.frame_cell = self.frame_cell
            chain.resume_cell = self.resume_cell
            emitter = _Emitter(self, chain, scratch)
            for op in function.body:
                emitter.emit(op)
            metrics = get_metrics()
            metrics.counter("ropc.functions_compiled").inc()
            metrics.counter("ropc.ir_ops_compiled").inc(len(function.body))
            metrics.histogram("ropc.chain_words").observe(chain.word_count)
            span.set_attribute("ir_ops", len(function.body))
            span.set_attribute("words", chain.word_count)
            return chain

    def _pick_scratch(self, function: ir.IRFunction):
        if self._scratch_override is not None:
            return self._scratch_override
        used = set()
        for op in function.body:
            used.update(r.name for r in op.regs_used())
        free = [r for r in ir.IR_REGS if r.name not in used and r is not EAX]
        scratch = [EBP] + free
        if len(scratch) < 2:
            raise RopCompileError(
                f"{function.name}: needs a free register for chain scratch "
                f"(uses {sorted(used)})"
            )
        return tuple(scratch[:2])


class _Emitter:
    """Per-function emission state."""

    def __init__(self, compiler: RopCompiler, chain: RopChain, scratch):
        self.c = compiler
        self.chain = chain
        self.s1, self.s2 = scratch

    # -- kind helpers ----------------------------------------------------

    def _load_const(self, reg: Register, value_or_label) -> None:
        self.chain.gadget(GadgetKind(GadgetOp.LOAD_CONST, dst=reg))
        if isinstance(value_or_label, str):
            self.chain.label_ref(value_or_label)
        elif isinstance(value_or_label, _DeltaRef):
            self.chain.delta_ref(value_or_label.target, value_or_label.fall)
        else:
            self.chain.const(value_or_label)

    def _mov(self, dst: Register, src: Register) -> None:
        if dst is src:
            return
        self.chain.gadget(GadgetKind(GadgetOp.MOV_REG, dst=dst, src=src))

    def _binop(self, op: str, dst: Register, src: Register) -> None:
        subop = "imul" if op == "mul" else op
        self.chain.gadget(GadgetKind(GadgetOp.BINOP, dst=dst, src=src, subop=subop))

    def _load_mem(self, dst: Register, base: Register, disp: int = 0) -> None:
        self.chain.gadget(GadgetKind(GadgetOp.LOAD_MEM, dst=dst, src=base, disp=disp))

    def _store_mem(self, base: Register, src: Register, disp: int = 0) -> None:
        self.chain.gadget(GadgetKind(GadgetOp.STORE_MEM, dst=base, src=src, disp=disp))

    def _unop(self, op: str, dst: Register) -> None:
        self.chain.gadget(GadgetKind(op, dst=dst))

    def _shift(self, op: str, dst: Register, amount: int) -> None:
        self.chain.gadget(GadgetKind(GadgetOp.SHIFT, dst=dst, subop=op, amount=amount))

    def _pivot_to_reg(self, reg: Register) -> None:
        """esp = reg; execution continues at the chain word it names."""
        self.chain.gadget(GadgetKind(GadgetOp.MOV_ESP, src=reg))

    # -- frame access ----------------------------------------------------

    def _load_saved_frame(self, dst: Register) -> None:
        """dst = the protected function's post-pushad stack pointer."""
        self._load_const(dst, self.c.frame_cell)
        self._load_mem(dst, dst, 0)

    # -- condition masks --------------------------------------------------

    def _mask_into_s1(self, cond: str, a: Register, b) -> None:
        """s1 = all-ones iff (a cond b) else zero.

        Flag-dependent steps (neg/sbb, sub/sbb) are emitted back to
        back; the only instructions executed between two consecutive
        gadgets are ret (and chain pops), neither of which touches
        flags, so the carry survives.
        """
        s1, s2 = self.s1, self.s2
        if b is s1 or b is s2 or a is s1 or a is s2:
            raise RopCompileError("condition operands may not be scratch")

        if cond in ("eq", "ne", "ult", "uge"):
            if isinstance(b, int):
                self._load_const(s2, b)
                b = s2
            self._mov(s1, a)
            self._binop("sub", s1, b)
            if cond in ("eq", "ne"):
                self._unop(GadgetOp.NEG, s1)  # CF = (s1 != 0)
            # for ult/uge the sub already left CF = (a < b) unsigned
            self._sbb_self(s1)                # s1 = -CF
            if cond in ("eq", "uge"):
                self._unop(GadgetOp.NOT, s1)
        elif cond in ("lt", "ge", "gt", "le"):
            # Signed comparison via the bias trick, overflow-free:
            # lt(a, b) == ult(a ^ 0x80000000, b ^ 0x80000000).
            bias = 0x80000000
            lhs, rhs = (a, b) if cond in ("lt", "ge") else (b, a)
            if isinstance(lhs, int):
                self._load_const(s1, lhs ^ bias)
            else:
                self._mov(s1, lhs)
                self._load_const(s2, bias)
                self._binop("xor", s1, s2)
            if isinstance(rhs, int):
                self._load_const(s2, rhs ^ bias)
            else:
                self._load_const(s2, bias)
                self._binop("xor", s2, rhs)
            self._binop("sub", s1, s2)        # CF = signed lhs < rhs
            self._sbb_self(s1)                # mask
            if cond in ("ge", "le"):
                self._unop(GadgetOp.NOT, s1)
        else:
            raise RopCompileError(f"unsupported condition {cond!r}")

    def _sbb_self(self, reg: Register) -> None:
        self.chain.gadget(GadgetKind(GadgetOp.SBB_SELF, dst=reg))

    # -- op emission -------------------------------------------------------

    def emit(self, op: ir.Op) -> None:
        chain = self.chain
        s1, s2 = self.s1, self.s2

        if isinstance(op, ir.Label):
            chain.label(op.name)
        elif isinstance(op, ir.Const):
            self._load_const(op.dst, op.value)
        elif isinstance(op, ir.AddConst):
            if op.dst is s1:
                raise RopCompileError("AddConst destination collides with scratch")
            self._load_const(s1, op.value)
            self._binop("add", op.dst, s1)
        elif isinstance(op, ir.Mov):
            self._mov(op.dst, op.src)
        elif isinstance(op, ir.BinOp):
            self._binop(op.op, op.dst, op.src)
        elif isinstance(op, ir.Neg):
            self._unop(GadgetOp.NEG, op.dst)
        elif isinstance(op, ir.Not):
            self._unop(GadgetOp.NOT, op.dst)
        elif isinstance(op, ir.Shift):
            self._shift(op.op, op.dst, op.amount)
        elif isinstance(op, ir.Load):
            self._load_mem(op.dst, op.base, op.disp)
        elif isinstance(op, ir.Store):
            self._store_mem(op.base, op.src, op.disp)
        elif isinstance(op, (ir.Load8, ir.Store8)):
            raise RopCompileError(
                "byte memory ops are not chain-translatable; pick a "
                "word-oriented verification function"
            )
        elif isinstance(op, ir.Param):
            if op.dst is s1 or op.dst is s2:
                raise RopCompileError("param destination collides with scratch")
            self._load_saved_frame(op.dst)
            self._load_const(s1, ARG_BASE_OFFSET + 4 * op.index)
            self._binop("add", op.dst, s1)
            self._load_mem(op.dst, op.dst, 0)
        elif isinstance(op, ir.Syscall):
            chain.gadget(GadgetKind(GadgetOp.SYSCALL))
        elif isinstance(op, ir.Jump):
            chain.gadget(GadgetKind(GadgetOp.POP_ESP))
            chain.label_ref(op.target)
        elif isinstance(op, ir.Branch):
            self._emit_branch(op)
        elif isinstance(op, ir.Ret):
            self._emit_ret(op)
        else:
            raise RopCompileError(f"cannot translate {op!r}")

    def _emit_branch(self, op: ir.Branch) -> None:
        chain, s1, s2 = self.chain, self.s1, self.s2
        self._mask_into_s1(op.cond, op.a, op.b)
        # s2 = (target - fallthrough) & mask; s1 = fallthrough + s2
        fall = chain.fresh_label()
        self._load_const(s2, _DeltaRef(op.target, fall))
        self._binop("and", s2, s1)
        self._load_const(s1, fall)
        self._binop("add", s1, s2)
        self._pivot_to_reg(s1)
        chain.label(fall)

    def _emit_ret(self, op: ir.Ret) -> None:
        s1, s2 = self.s1, self.s2
        result = op.src if op.src is not None else EAX
        if result is s1 or result is s2:
            raise RopCompileError("return value register collides with scratch")
        # Store the result into the pushad block's eax slot so the
        # stub's popad delivers it to the caller.
        self._load_saved_frame(s1)
        self._load_const(s2, PUSHAD_EAX_OFFSET)
        self._binop("add", s1, s2)
        self._store_mem(s1, result, 0)
        # Pivot back: esp = [resume_cell]; the word there is the address
        # of the stub's resume sequence (popad; ret).
        self._load_const(s1, self.c.resume_cell)
        self._load_mem(s1, s1, 0)
        self._pivot_to_reg(s1)


class _DeltaRef:
    """Placeholder for (target_label_addr - fallthrough_label_addr)."""

    def __init__(self, target: str, fall: str):
        self.target = target
        self.fall = fall


def compile_single_op(
    op: ir.Op,
    resume_cell: int,
    scratch: Register,
) -> RopChain:
    """Compile one data-flow IR op into a standalone µ-chain (§V-C).

    The chain performs the op on the *live* register state (no
    pushad/popad — state must flow between µ-chains through the real
    registers) and pivots back through ``resume_cell``, which the inline
    setup code points at a slot holding the resume address.  ``scratch``
    is the one register the chain may clobber.
    """
    chain = RopChain(name=f"uchain_{type(op).__name__.lower()}")
    chain.resume_cell = resume_cell
    emitter = _Emitter(
        _SingleOpContext(resume_cell), chain, (scratch, scratch)
    )

    if isinstance(
        op,
        (ir.Const, ir.Mov, ir.BinOp, ir.AddConst, ir.Neg, ir.Not,
         ir.Shift, ir.Load, ir.Store),
    ):
        if isinstance(op, ir.AddConst) and op.dst is scratch:
            raise RopCompileError("AddConst µ-chain needs a distinct scratch")
        emitter.emit(op)
    else:
        raise RopCompileError(f"{op!r} is not µ-chain translatable")

    # epilogue: esp = [resume_cell]; ret pops the resume address
    emitter._load_const(scratch, resume_cell)
    emitter._load_mem(scratch, scratch, 0)
    emitter._pivot_to_reg(scratch)
    return chain


class _SingleOpContext:
    """Minimal compiler-context stand-in for µ-chain emission."""

    def __init__(self, resume_cell: int):
        self.frame_cell = 0
        self.resume_cell = resume_cell
