"""Sections of a binary image."""

from __future__ import annotations


class Perm:
    """Section permission bits."""

    R = 1
    W = 2
    X = 4

    RX = R | X
    RW = R | W
    RWX = R | W | X


class Section:
    """A contiguous, named region of the image address space.

    Attributes:
        name: e.g. ``".text"``, ``".data"``, ``".rodata"``, ``".ropchains"``.
        vaddr: virtual address of the first byte.
        data: mutable contents.
        perm: permission bits (:class:`Perm`).
    """

    __slots__ = ("name", "vaddr", "data", "perm")

    def __init__(self, name: str, vaddr: int, data: bytes = b"", perm: int = Perm.R):
        self.name = name
        self.vaddr = vaddr
        self.data = bytearray(data)
        self.perm = perm

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        """Address one past the last byte."""
        return self.vaddr + len(self.data)

    @property
    def executable(self) -> bool:
        return bool(self.perm & Perm.X)

    @property
    def writable(self) -> bool:
        return bool(self.perm & Perm.W)

    def contains(self, vaddr: int, length: int = 1) -> bool:
        return self.vaddr <= vaddr and vaddr + length <= self.end

    def read(self, vaddr: int, length: int) -> bytes:
        if not self.contains(vaddr, length):
            raise IndexError(f"read outside section {self.name}")
        off = vaddr - self.vaddr
        return bytes(self.data[off : off + length])

    def write(self, vaddr: int, payload: bytes) -> None:
        if not self.contains(vaddr, len(payload)):
            raise IndexError(f"write outside section {self.name}")
        off = vaddr - self.vaddr
        self.data[off : off + len(payload)] = payload

    def append(self, payload: bytes) -> int:
        """Append bytes; returns the vaddr they were placed at."""
        vaddr = self.end
        self.data += payload
        return vaddr

    def __repr__(self) -> str:
        flags = "".join(
            ch if self.perm & bit else "-"
            for ch, bit in (("r", Perm.R), ("w", Perm.W), ("x", Perm.X))
        )
        return f"<Section {self.name} {self.vaddr:#x}..{self.end:#x} {flags}>"
