"""Paged memory and the instruction/data split view."""

import pytest

from repro.emu import BadMemoryAccess, Memory


def test_map_read_write_roundtrip():
    mem = Memory()
    mem.map(0x1000, b"hello world")
    assert mem.read(0x1000, 11) == b"hello world"
    mem.write(0x1002, b"XY")
    assert mem.read(0x1000, 5) == b"heXYo"


def test_cross_page_access():
    mem = Memory()
    mem.map(0xFFC, b"\x01\x02\x03\x04\x05\x06\x07\x08")
    assert mem.read_u32(0xFFE) == 0x06050403
    mem.write_u32(0xFFE, 0xAABBCCDD)
    assert mem.read(0xFFC, 8) == b"\x01\x02\xdd\xcc\xbb\xaa\x07\x08"


def test_unmapped_access_raises():
    mem = Memory()
    with pytest.raises(BadMemoryAccess):
        mem.read(0x5000, 1)
    with pytest.raises(BadMemoryAccess):
        mem.write(0x5000, b"\x00")


def test_icache_split_view():
    """The Wurster primitive: fetch sees the patch, reads do not."""
    mem = Memory()
    mem.map(0x1000, b"\xc3\xc3\xc3\xc3")
    mem.patch_code_view(0x1001, b"\x90")
    assert mem.read(0x1000, 4) == b"\xc3\xc3\xc3\xc3"      # data view pristine
    assert mem.fetch(0x1000, 4) == b"\xc3\x90\xc3\xc3"     # fetch tampered
    assert mem.code_view_dirty
    mem.clear_code_view()
    assert mem.fetch(0x1000, 4) == b"\xc3\xc3\xc3\xc3"
    assert not mem.code_view_dirty


def test_page_versions_bump_on_write():
    mem = Memory()
    mem.map(0x1000, b"\x00" * 8)
    v0 = mem.page_version(0x1000)
    mem.write_u8(0x1004, 7)
    assert mem.page_version(0x1000) > v0
    v1 = mem.page_version(0x1000)
    mem.patch_code_view(0x1000, b"\x90")
    assert mem.page_version(0x1000) > v1


def test_fetch_window_clamps_at_unmapped():
    mem = Memory()
    mem.map_zero(0x1000, 0x1000)
    window = mem.fetch_window(0x1FFA, 16)
    assert len(window) == 6
