"""CPU register and flag state."""

from __future__ import annotations

from ..x86.registers import Register

MASK32 = 0xFFFFFFFF
MASK16 = 0xFFFF
MASK8 = 0xFF


class CPUState:
    """IA-32 general-purpose register file, eip and arithmetic flags.

    Registers are stored as eight unsigned 32-bit integers indexed by the
    hardware register code; 8/16-bit accesses alias into them exactly as
    on real hardware (``ah`` is bits 8..15 of ``eax``).
    """

    __slots__ = ("regs", "eip", "cf", "zf", "sf", "of")

    def __init__(self):
        self.regs = [0] * 8
        self.eip = 0
        self.cf = False
        self.zf = False
        self.sf = False
        self.of = False

    # ------------------------------------------------------------------
    # Register access
    # ------------------------------------------------------------------

    def get(self, reg: Register) -> int:
        if reg.width == 32:
            return self.regs[reg.code]
        if reg.width == 16:
            return self.regs[reg.code] & MASK16
        if reg.code < 4:  # al/cl/dl/bl
            return self.regs[reg.code] & MASK8
        return (self.regs[reg.code - 4] >> 8) & MASK8  # ah/ch/dh/bh

    def set(self, reg: Register, value: int) -> None:
        if reg.width == 32:
            self.regs[reg.code] = value & MASK32
        elif reg.width == 16:
            self.regs[reg.code] = (self.regs[reg.code] & ~MASK16) | (value & MASK16)
        elif reg.code < 4:
            self.regs[reg.code] = (self.regs[reg.code] & ~MASK8) | (value & MASK8)
        else:
            code = reg.code - 4
            self.regs[code] = (self.regs[code] & ~0xFF00) | ((value & MASK8) << 8)

    # Convenience properties for the hot registers.

    @property
    def eax(self) -> int:
        return self.regs[0]

    @eax.setter
    def eax(self, value: int) -> None:
        self.regs[0] = value & MASK32

    @property
    def esp(self) -> int:
        return self.regs[4]

    @esp.setter
    def esp(self, value: int) -> None:
        self.regs[4] = value & MASK32

    @property
    def ebp(self) -> int:
        return self.regs[5]

    @ebp.setter
    def ebp(self, value: int) -> None:
        self.regs[5] = value & MASK32

    # ------------------------------------------------------------------
    # Flags
    # ------------------------------------------------------------------

    def set_logic_flags(self, result: int, width: int) -> None:
        """Flags after and/or/xor/test: CF=OF=0, ZF/SF from result."""
        mask = (1 << width) - 1
        result &= mask
        self.cf = False
        self.of = False
        self.zf = result == 0
        self.sf = bool(result >> (width - 1))

    def set_add_flags(self, a: int, b: int, carry_in: int, width: int) -> int:
        """Flags after add/adc; returns the masked result."""
        mask = (1 << width) - 1
        raw = (a & mask) + (b & mask) + carry_in
        result = raw & mask
        sign = 1 << (width - 1)
        self.cf = raw > mask
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.of = bool((~(a ^ b)) & (a ^ result) & sign)
        return result

    def set_sub_flags(self, a: int, b: int, borrow_in: int, width: int) -> int:
        """Flags after sub/sbb/cmp; returns the masked result."""
        mask = (1 << width) - 1
        raw = (a & mask) - (b & mask) - borrow_in
        result = raw & mask
        sign = 1 << (width - 1)
        self.cf = raw < 0
        self.zf = result == 0
        self.sf = bool(result & sign)
        self.of = bool((a ^ b) & (a ^ result) & sign)
        return result

    def condition(self, cc: str) -> bool:
        """Evaluate a jcc/setcc condition-code suffix."""
        if cc == "o":
            return self.of
        if cc == "no":
            return not self.of
        if cc == "b":
            return self.cf
        if cc == "ae":
            return not self.cf
        if cc == "e":
            return self.zf
        if cc == "ne":
            return not self.zf
        if cc == "be":
            return self.cf or self.zf
        if cc == "a":
            return not (self.cf or self.zf)
        if cc == "s":
            return self.sf
        if cc == "ns":
            return not self.sf
        if cc == "p" or cc == "np":
            # Parity is not modelled; no corpus code branches on it.
            return cc == "np"
        if cc == "l":
            return self.sf != self.of
        if cc == "ge":
            return self.sf == self.of
        if cc == "le":
            return self.zf or (self.sf != self.of)
        if cc == "g":
            return not self.zf and (self.sf == self.of)
        raise ValueError(f"unknown condition code {cc!r}")

    def snapshot(self) -> dict:
        """Copy of the architectural state, for tests and debugging."""
        return {
            "regs": list(self.regs),
            "eip": self.eip,
            "flags": {"cf": self.cf, "zf": self.zf, "sf": self.sf, "of": self.of},
        }

    def __repr__(self) -> str:
        names = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
        regs = " ".join(f"{n}={v:#x}" for n, v in zip(names, self.regs))
        return f"<CPU eip={self.eip:#x} {regs}>"
