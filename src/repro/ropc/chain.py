"""ROP chain representation.

A chain is a sequence of 32-bit words laid out in writable memory:
gadget addresses, inline constants consumed by ``pop`` gadgets, and
chain-internal label references used for stack-pivot branching.

Chains are built in two stages, mirroring the paper's §III: the compiler
first emits *kind references* (placeholder gadget addresses, the paper's
:math:`\\mathcal{R}`), then :meth:`RopChain.resolve` maps each kind to a
concrete gadget from the catalog (the recompile-with-gadget-mapping
step), preferring overlapping gadgets.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from ..gadgets.catalog import GadgetCatalog
from ..gadgets.types import Gadget, GadgetKind, GadgetOp

#: Value of the dummy code-segment word consumed by far-return gadgets.
FAR_PAD = 0x0000_0023


class ChainError(Exception):
    """Chain construction or resolution failure."""


class MissingGadget(ChainError):
    """No gadget in the catalog implements a required kind."""

    def __init__(self, kind: GadgetKind):
        super().__init__(f"catalog lacks a gadget for {kind!r}")
        self.kind = kind


class Item:
    """One chain element; most occupy one 32-bit word."""

    __slots__ = ()
    size = 4


class KindWord(Item):
    """Placeholder gadget address, resolved against a catalog later."""

    __slots__ = ("kind", "gadget")

    def __init__(self, kind: GadgetKind):
        self.kind = kind
        self.gadget: Optional[Gadget] = None

    def __repr__(self) -> str:
        if self.gadget is not None:
            return f"<Kw {self.kind.op}@{self.gadget.address:#x}>"
        return f"<Kw {self.kind.op}?>"


class ConstWord(Item):
    """Inline constant (consumed by a pop of the preceding gadget)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value & 0xFFFFFFFF

    def __repr__(self) -> str:
        return f"<Const {self.value:#x}>"


class LabelWord(Item):
    """Absolute chain address of a label, as a constant word."""

    __slots__ = ("label", "addend")

    def __init__(self, label: str, addend: int = 0):
        self.label = label
        self.addend = addend

    def __repr__(self) -> str:
        return f"<LabelWord {self.label}{self.addend:+d}>"


class DeltaWord(Item):
    """Difference of two chain label addresses (branch displacement)."""

    __slots__ = ("target", "origin")

    def __init__(self, target: str, origin: str):
        self.target = target
        self.origin = origin

    def __repr__(self) -> str:
        return f"<Delta {self.target}-{self.origin}>"


class ChainLabel(Item):
    """Marks a position inside the chain; emits no bytes."""

    __slots__ = ("name",)
    size = 0

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"<Label {self.name}>"


class RopChain:
    """A verification ROP chain under construction."""

    def __init__(self, name: str = "chain"):
        self.name = name
        self.items: List[Item] = []
        self._label_counter = 0
        #: set by the compiler that built the chain; needed by the
        #: loader-stub generator.
        self.frame_cell: Optional[int] = None
        self.resume_cell: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def gadget(self, kind: GadgetKind) -> KindWord:
        item = KindWord(kind)
        self.items.append(item)
        return item

    def const(self, value: int) -> ConstWord:
        item = ConstWord(value)
        self.items.append(item)
        return item

    def label_ref(self, label: str, addend: int = 0) -> LabelWord:
        item = LabelWord(label, addend)
        self.items.append(item)
        return item

    def delta_ref(self, target: str, origin: str) -> DeltaWord:
        item = DeltaWord(target, origin)
        self.items.append(item)
        return item

    def fresh_label(self) -> str:
        """Reserve a unique label name (to be placed with :meth:`label`)."""
        name = f".L{self._label_counter}"
        self._label_counter += 1
        return name

    def label(self, name: Optional[str] = None) -> str:
        if name is None:
            name = self.fresh_label()
        self.items.append(ChainLabel(name))
        return name

    def far_pad(self) -> ConstWord:
        return self.const(FAR_PAD)

    # ------------------------------------------------------------------
    # Resolution (placeholder -> concrete gadget)
    # ------------------------------------------------------------------

    def required_kinds(self) -> List[GadgetKind]:
        """Distinct kinds this chain needs — used by the pipeline to
        insert any missing standard gadgets before resolution."""
        seen = {}
        for item in self.items:
            if isinstance(item, KindWord):
                seen.setdefault(item.kind.key(), item.kind)
        return list(seen.values())

    def resolve(
        self, catalog: GadgetCatalog, rng=None, fixed_shape: bool = False
    ) -> "RopChain":
        """Bind every kind placeholder to a concrete gadget.

        With ``rng``, each placeholder samples uniformly from the kind's
        gadget set :math:`G_i` (probabilistic variant generation, §V-B);
        without, the best (overlapping-preferred) gadget is chosen.

        A far-return gadget consumes one extra (code-segment) word after
        popping eip; resolution inserts a pad word after the gadget's
        inline pop data.  ``fixed_shape`` excludes far gadgets so every
        resolved variant has identical word count — required for
        per-word probabilistic mixing of variants.
        """
        resolved = RopChain(self.name)
        resolved._label_counter = self._label_counter
        resolved.frame_cell = self.frame_cell
        resolved.resume_cell = self.resume_cell
        items = self.items
        # Deterministic resolution rotates through equally-ranked
        # gadgets per kind, so one chain exercises (and thus verifies)
        # as many overlapping gadgets as possible (§V-B's goal of a
        # small chain checking a large gadget set).
        rotation = {}
        i = 0
        # A far gadget's retf pops eip first (the *next* gadget address)
        # and the discarded code-segment word after it — so the pad word
        # belongs right after the next gadget's address in the stream.
        pending_far_pad = False
        while i < len(items):
            item = items[i]
            i += 1
            if not isinstance(item, KindWord):
                resolved.items.append(item)
                continue
            candidates = catalog.of_kind(item.kind)
            if fixed_shape:
                candidates = [g for g in candidates if not g.far]
            if item.kind.op in (GadgetOp.MOV_ESP, GadgetOp.POP_ESP):
                # Pivot gadgets must end in a plain ret: a retf here
                # would consume a word of the pivot target.
                candidates = [g for g in candidates if not g.far]
            if not candidates:
                raise MissingGadget(item.kind)
            if rng is not None:
                gadget = candidates[rng.randrange(len(candidates))]
            else:
                # rotate within the best-ranked tier (overlapping first)
                tier_key = (candidates[0].address in catalog.preferred)
                tier = [
                    g for g in candidates
                    if (g.address in catalog.preferred) == tier_key
                ]
                index = rotation.get(item.kind.key(), 0)
                rotation[item.kind.key()] = index + 1
                gadget = tier[index % len(tier)]
            expected = _expected_pops(item.kind)
            if gadget.stack_words != expected:
                raise ChainError(
                    f"gadget {gadget!r} pops {gadget.stack_words} words, "
                    f"kind expects {expected}"
                )
            word = KindWord(item.kind)
            word.gadget = gadget
            resolved.items.append(word)
            if pending_far_pad:
                resolved.items.append(ConstWord(FAR_PAD))
                pending_far_pad = False
            # Copy the gadget's inline pop data.
            for _ in range(expected):
                resolved.items.append(items[i])
                i += 1
            if gadget.far:
                pending_far_pad = True
        if pending_far_pad:
            raise ChainError("chain may not end with a far-return gadget")
        return resolved

    # ------------------------------------------------------------------
    # Layout & serialization
    # ------------------------------------------------------------------

    def layout(self, base: int) -> Dict[str, int]:
        """Assign addresses; returns label -> absolute address map."""
        labels: Dict[str, int] = {}
        offset = 0
        for item in self.items:
            if isinstance(item, ChainLabel):
                if item.name in labels:
                    raise ChainError(f"duplicate chain label {item.name!r}")
                labels[item.name] = base + offset
            offset += item.size
        return labels

    @property
    def byte_size(self) -> int:
        return sum(item.size for item in self.items)

    @property
    def word_count(self) -> int:
        return self.byte_size // 4

    def to_bytes(self, base: int) -> bytes:
        """Serialize the resolved chain for placement at ``base``."""
        labels = self.layout(base)
        words = []
        for item in self.items:
            if isinstance(item, ChainLabel):
                continue
            if isinstance(item, KindWord):
                if item.gadget is None:
                    raise ChainError(
                        f"unresolved kind {item.kind!r}; call resolve() first"
                    )
                words.append(item.gadget.address)
            elif isinstance(item, ConstWord):
                words.append(item.value)
            elif isinstance(item, LabelWord):
                if item.label not in labels:
                    raise ChainError(f"undefined chain label {item.label!r}")
                words.append((labels[item.label] + item.addend) & 0xFFFFFFFF)
            elif isinstance(item, DeltaWord):
                if item.target not in labels or item.origin not in labels:
                    raise ChainError(
                        f"undefined chain label in {item!r}"
                    )
                words.append((labels[item.target] - labels[item.origin]) & 0xFFFFFFFF)
            else:
                raise ChainError(f"unserializable item {item!r}")
        return struct.pack(f"<{len(words)}I", *words)

    def gadget_addresses(self) -> List[int]:
        """Addresses of all gadgets a resolved chain uses."""
        return [
            item.gadget.address
            for item in self.items
            if isinstance(item, KindWord) and item.gadget is not None
        ]

    def __repr__(self) -> str:
        return f"<RopChain {self.name} {self.word_count} words>"


def _expected_pops(kind: GadgetKind) -> int:
    from ..gadgets.types import GadgetOp

    if kind.op in (GadgetOp.LOAD_CONST, GadgetOp.POP_ESP):
        return 1
    return 0
