"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough protocol for the serving layer: request-line + headers +
``Content-Length`` bodies in, status + headers + body out, keep-alive
by default.  No chunked encoding, no TLS, no multipart — the clients
are the repo's own (:mod:`repro.serve.client`), ``curl``, and load
generators, all of which speak this subset.

Bounds: header block ≤ 16 KiB, body ≤ 8 MiB — a malformed or hostile
peer costs one refused request, never unbounded memory.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response_bytes",
    "json_response",
]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise inside a handler to produce a non-200 response."""

    def __init__(self, status: int, detail: str, headers: Optional[Dict] = None):
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = dict(headers or {})


class Request:
    """One parsed request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload

    def __repr__(self) -> str:
        return f"<Request {self.method} {self.path}>"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF (peer closed keep-alive).

    Raises :class:`HttpError` on malformed/oversized input and
    ``asyncio.IncompleteReadError`` on mid-request disconnects.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "header block too large") from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")

    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "body too large")
        body = await reader.readexactly(length)
    return Request(method.upper(), split.path, query, headers, body)


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(
        status, body, "application/json", headers, keep_alive
    )


def parse_response(raw_headers: bytes, body: bytes) -> Tuple[int, Dict[str, str]]:
    """Client-side: parse a status line + header block (body separate)."""
    lines = raw_headers.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers
