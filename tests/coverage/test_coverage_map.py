"""The static half of the integrity observatory: coverage maps.

The load-bearing property is *byte accuracy*: the map's covered set
must equal, byte for byte, the union of the chain records' gadget
spans intersected with the protected set — no more, no less — and the
RLE ``byte_map`` serialization must reconstruct it exactly.
"""

import json

import pytest

from repro.core.report import coalesce_addresses
from repro.coverage import CoverageMap, build_coverage
from repro.coverage.render import render_coverage
from repro.rewrite.report import FIG6_RULES


@pytest.fixture(scope="module")
def coverage(protected_wget_cleartext):
    return build_coverage(
        protected_wget_cleartext.image, protected_wget_cleartext.report
    )


# ----------------------------------------------------------------------
# Byte accuracy vs the protection report
# ----------------------------------------------------------------------

def test_covered_set_matches_report_exactly(protected_wget_cleartext, coverage):
    """Recompute coverage independently from the raw ChainRecord spans
    and require byte-for-byte equality with the map."""
    report = protected_wget_cleartext.report
    protected = set(report.protected_addresses)
    expected = {}
    for index, record in enumerate(report.chains):
        for address, end in record.gadget_spans.items():
            for byte in range(address, end):
                if byte in protected:
                    expected.setdefault(byte, set()).add(index)

    assert set(coverage.depth) == set(expected)
    for byte, chains in expected.items():
        assert coverage.chains_at[byte] == tuple(sorted(chains))
        assert coverage.depth[byte] == len(chains)
    # nothing outside the protected set ever counts as covered
    assert set(coverage.depth) <= protected


def test_aggregate_identities(coverage):
    assert coverage.protected_bytes == len(coverage.protected)
    assert coverage.covered_bytes == len(coverage.depth)
    assert coverage.covered_bytes + len(coverage.uncovered_addresses()) \
        == coverage.protected_bytes
    assert 0.0 <= coverage.coverage_fraction <= 1.0
    # SPOF bytes are exactly the depth-1 subset of covered bytes
    spof = coverage.spof_addresses()
    assert all(coverage.depth[b] == 1 for b in spof)
    assert set(spof) <= set(coverage.depth)
    if coverage.covered_bytes:
        assert coverage.overlap_density >= 1.0


def test_wget_has_real_coverage(coverage):
    # the premise of the paper: the chain's gadgets DO overlap code
    assert coverage.protected_bytes > 0
    assert coverage.covered_bytes > 0
    assert coverage.spof_addresses()  # single chain => everything SPOF
    assert coverage.overlap_density == pytest.approx(1.0)


def test_byte_map_rle_reconstructs_exactly(coverage):
    reconstructed = {}
    total = 0
    for start, length, depth, chains in coverage.byte_map():
        assert length > 0
        assert depth == len(chains)
        for byte in range(start, start + length):
            assert byte not in reconstructed  # rows never overlap
            reconstructed[byte] = tuple(chains)
        total += length
    assert total == coverage.protected_bytes
    for byte in coverage.protected:
        assert reconstructed[byte] == coverage.chains_at.get(byte, ())


def test_function_rollup_sums_to_totals(protected_wget_cleartext, coverage):
    """Per-function stats sum to the map totals restricted to symbol
    spans (bytes protected in emitted, symbol-less sections — e.g. the
    gadget section — appear only in the image-level totals)."""
    functions = coverage.functions()
    assert functions

    in_symbols = set()
    for sym in protected_wget_cleartext.image.symbols.functions():
        in_symbols.update(range(sym.vaddr, sym.end))
    protected = [b for b in coverage.protected if b in in_symbols]
    covered = [b for b in coverage.depth if b in in_symbols]
    spof = [b for b in coverage.spof_addresses() if b in in_symbols]

    assert sum(f.protected_bytes for f in functions) == len(protected)
    assert sum(f.covered_bytes for f in functions) == len(covered)
    assert sum(f.spof_bytes for f in functions) == len(spof)
    for f in functions:
        assert 0.0 <= f.coverage_fraction <= 1.0


def test_regions_coalesce(coverage):
    regions = coverage.uncovered_regions()  # (start, length) runs
    assert sum(length for _, length in regions) \
        == len(coverage.uncovered_addresses())
    # coalesce_addresses gives maximal, disjoint, sorted runs
    assert regions == coalesce_addresses(coverage.uncovered_addresses())
    for (s1, l1), (s2, _) in zip(regions, regions[1:]):
        assert s1 + l1 < s2  # maximal: a gap separates adjacent runs


# ----------------------------------------------------------------------
# Rule classification
# ----------------------------------------------------------------------

def test_rule_breakdown_uses_fig6_rules(coverage):
    assert coverage.rule_breakdown  # cleartext chains use real gadgets
    assert set(coverage.rule_breakdown) <= set(FIG6_RULES)
    # a rule can never guard more bytes than are covered at all
    for count in coverage.rule_breakdown.values():
        assert 0 < count <= coverage.covered_bytes


def test_classification_is_optional(protected_wget_cleartext):
    plain = build_coverage(
        protected_wget_cleartext.image,
        protected_wget_cleartext.report,
        classify_rules=False,
    )
    assert plain.rule_breakdown == {}
    # coverage numbers are identical with classification off
    full = build_coverage(
        protected_wget_cleartext.image, protected_wget_cleartext.report
    )
    assert plain.depth == full.depth


# ----------------------------------------------------------------------
# Serialization + artifact sniffing
# ----------------------------------------------------------------------

def test_to_dict_schema(coverage):
    payload = json.loads(coverage.to_json())
    assert payload["type"] == "coverage"
    assert payload["program"] == "wget"
    assert payload["protected_bytes"] == coverage.protected_bytes
    assert payload["covered_bytes"] == coverage.covered_bytes
    assert payload["spof_bytes"] == len(coverage.spof_addresses())
    assert payload["uncovered_bytes"] \
        == coverage.protected_bytes - coverage.covered_bytes
    assert payload["chains"] == coverage.chain_names
    assert len(payload["byte_map"]) == len(coverage.byte_map())
    assert payload["functions"]


def test_load_artifact_sniffs_coverage(tmp_path, coverage):
    from repro.telemetry import load_artifact, render_stats

    path = tmp_path / "cov.json"
    path.write_text(coverage.to_json())
    kind, payload = load_artifact(str(path))
    assert kind == "coverage"
    rendered = render_stats(kind, payload)
    assert "protected bytes" in rendered
    assert "wget" in rendered


# ----------------------------------------------------------------------
# Renderer
# ----------------------------------------------------------------------

def test_render_marks_spof_and_uncovered(protected_wget_cleartext, coverage):
    text = render_coverage(coverage, max_functions=5, max_insns=10)
    assert "Coverage map: wget" in text
    assert "!SPOF" in text
    assert "!UNCOVERED" in text
    assert coverage.chain_names[0] in text


def test_render_truncation_is_announced(coverage):
    text = render_coverage(coverage, max_functions=1, max_insns=2)
    assert "more function(s) truncated" in text
