"""Golden-corpus gadget-set digests: finder semantics drift fails loudly.

Every corpus program's gadget set is frozen as a (count, digest) pair,
where the digest hashes the sorted per-gadget fingerprint lines
(address, end, kind, stack words, far, ret imm).  Any change to
discovery or classification semantics — a new decoder quirk, a
classifier tweak, a finder rewrite — changes a digest and fails this
test, forcing the change to be deliberate: bump
:data:`repro.gadgets.FINDER_VERSION`, regenerate, and say why in the
commit.

Regenerate after an intentional semantics change with::

    PYTHONPATH=src python -m tests.gadgets.test_golden_corpus

which prints the ``GOLDEN`` dict to paste over the one below.
"""

import hashlib

import pytest

from repro.corpus import PROGRAM_NAMES, build_program_cached
from repro.gadgets import find_gadgets, reference_find_gadgets

#: program -> (gadget count, sha256 over sorted fingerprint lines).
#: Frozen at FINDER_VERSION 2; regen path in the module docstring.
GOLDEN = {
    "wget": (519, "decf0acde88ba202651a5245b063618078cc5e50275c5a1a3f3dab06ae96fb8e"),
    "nginx": (812, "8eaf955ad2b58e14570a8ee5a0ba0ede7d051ab069d177d461d3dfd86b98c312"),
    "bzip2": (425, "53b37cdcb0b58ff9a42f9b3db1df321a1c11833cf7b1ffda0e186e000af1ba43"),
    "gzip": (353, "4bafd7528d4c15b86b74234a3926adb35ba1bdfd90eaeccdbf15e4a3662ddd33"),
    "gcc": (1685, "d6793185fcdeaddc4389e0441936f16c8a43198d19782ba401e8aab2223d8fdf"),
    "lame": (470, "97885c731aa140a9f2dc00a582a0ef2ad867736c239762696c7bef5d3ebe11c2"),
}


def gadget_set_digest(gadgets):
    """(count, sha256) over the sorted address/kind fingerprint lines."""
    lines = sorted(
        "%d:%d:%r:%d:%d:%d" % (
            g.address, g.end, g.kind.key(), g.stack_words, int(g.far), g.ret_imm
        )
        for g in gadgets
    )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return len(lines), digest


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_gadget_set_matches_golden_digest(name):
    image = build_program_cached(name).image
    count, digest = gadget_set_digest(find_gadgets(image))
    expected_count, expected_digest = GOLDEN[name]
    assert (count, digest) == (expected_count, expected_digest), (
        f"{name}: gadget set drifted from the frozen FINDER_VERSION-2 "
        f"golden digest ({count} gadgets vs {expected_count} expected). "
        "If the semantics change is intentional, bump FINDER_VERSION and "
        "regenerate: PYTHONPATH=src python -m tests.gadgets.test_golden_corpus"
    )


def test_reference_finder_matches_golden_too():
    """The oracle and the production scanner hash identically on at
    least one full corpus image (the differential suite covers random
    buffers; this pins a real program)."""
    image = build_program_cached("gzip").image
    assert gadget_set_digest(reference_find_gadgets(image)) == GOLDEN["gzip"]


def _regen():
    print("GOLDEN = {")
    for name in PROGRAM_NAMES:
        image = build_program_cached(name).image
        count, digest = gadget_set_digest(find_gadgets(image))
        print(f'    "{name}": ({count}, "{digest}"),')
    print("}")


if __name__ == "__main__":
    _regen()
