"""Decode-only and prefixed forms added for unaligned-decode density."""

import pytest

from repro.x86 import DecodeError, decode


CASES = [
    (b"\x06", "push"),               # push es
    (b"\x1f", "pop"),                # pop ds
    (b"\x62\x08", "bound"),
    (b"\x63\xc8", "arpl"),
    (b"\x8c\xc0", "mov_seg"),
    (b"\x9a\x00\x00\x00\x00\x00\x00", "callf"),
    (b"\xa0\x44\x33\x22\x11", "mov"),   # mov al, [moffs]
    (b"\xa3\x44\x33\x22\x11", "mov"),   # mov [moffs], eax
    (b"\xc4\x00", "les"),
    (b"\xc8\x10\x00\x02", "enter"),
    (b"\xcf", "iretd"),
    (b"\xd4\x0a", "aam"),
    (b"\xd6", "salc"),
    (b"\xd9\xc0", "fpu"),
    (b"\xe0\xfe", "loopne"),
    (b"\xe3\x05", "jecxz"),
    (b"\xe4\x60", "in"),
    (b"\xee", "out"),
    (b"\xea\x00\x00\x00\x00\x00\x00", "jmpf"),
    (b"\x0f\x31", "rdtsc"),
    (b"\x0f\xa2", "cpuid"),
    (b"\x0f\xa3\xd8", "bt"),
    (b"\x0f\xa4\xd8\x04", "shld"),
    (b"\x0f\xc9", "bswap"),
    (b"\x0f\xb7\xc3", "movzx"),      # movzx r32, r/m16
]


@pytest.mark.parametrize("raw,mnemonic", CASES, ids=lambda v: str(v))
def test_extended_decode(raw, mnemonic):
    insn = decode(raw, 0)
    assert insn.mnemonic == mnemonic
    assert insn.length == len(raw)


def test_loop_family_is_control_flow():
    insn = decode(b"\xe2\xfe", 0)
    assert insn.mnemonic == "loop"
    assert insn.is_control_flow


def test_16bit_subset():
    for raw, mnemonic, value in [
        (b"\x66\x05\x34\x12", "add", 0x1234),
        (b"\x66\x81\xc3\x34\x12", "add", 0x1234),
        (b"\x66\x50", "push", None),
        (b"\x66\x89\xd8", "mov", None),
    ]:
        insn = decode(raw, 0)
        assert insn.mnemonic == mnemonic
        if value is not None:
            assert insn.operands[-1].value == value


def test_les_register_form_invalid():
    with pytest.raises(DecodeError):
        decode(b"\xc4\xc0", 0)  # mod=3 is VEX territory, rejected


def test_segment_prefix_is_transparent():
    plain = decode(b"\x8b\x03", 0)
    prefixed = decode(b"\x2e\x8b\x03", 0)
    assert plain.mnemonic == prefixed.mnemonic == "mov"
    assert prefixed.length == plain.length + 1
    assert plain.operands == prefixed.operands
