"""Attack evaluation harness.

Applies an attack to a (protected or unprotected) image, runs the
result, and scores the outcome against the pristine behaviour:

* ``detected`` — the tampered program crashed or its observable
  behaviour (stdout/exit status) diverged from what the attacker
  wanted; the tamper response fired.
* ``undetected`` — the attacker's goal state was reached with no
  behavioural damage; the protection failed.

For anti-debugging cracks the attacker's goal is "runs normally even
under a debugger", so the goal reference is the pristine run *without*
a debugger.

Detection latency: every evaluation stamps three points on the cycle
axis — when the tamper landed (``tamper_cycles``; 0 for pre-run static
and Wurster tampers), when the corruption first became architecturally
visible (``corruption_cycles``; the :class:`~repro.emu.TamperWatch`
stamp of the first instruction executed from tampered bytes, ``None``
for data-only tampers), and when the failure became externally
observable (``detection_cycles``; the run's cycle count when detected,
``None`` when the attack succeeds).  The derived
``cycles_to_corruption`` / ``cycles_to_detection`` feed the attack
matrix and the telemetry histograms.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..emu import Emulator, OperatingSystem, RunResult, TamperWatch
from ..telemetry import get_metrics, get_recorder, get_tracer
from ..telemetry.metrics import DEFAULT_CYCLE_BUCKETS


class AttackOutcome:
    """Result of one attack evaluation."""

    __slots__ = (
        "attack",
        "detected",
        "reason",
        "run",
        "tamper_cycles",
        "corruption_cycles",
        "detection_cycles",
    )

    def __init__(
        self,
        attack: str,
        detected: bool,
        reason: str,
        run: RunResult,
        tamper_cycles: Optional[int] = None,
        corruption_cycles: Optional[int] = None,
        detection_cycles: Optional[int] = None,
    ):
        self.attack = attack
        self.detected = detected
        self.reason = reason
        self.run = run
        #: cycle counter when the tamper was applied (0 = before entry)
        self.tamper_cycles = tamper_cycles
        #: cycle counter at the first execution of tampered bytes
        self.corruption_cycles = corruption_cycles
        #: cycle counter when the failure became externally observable
        self.detection_cycles = detection_cycles

    @property
    def cycles_to_corruption(self) -> Optional[int]:
        """Cycles from tamper to first execution of tampered bytes."""
        if self.corruption_cycles is None or self.tamper_cycles is None:
            return None
        return self.corruption_cycles - self.tamper_cycles

    @property
    def cycles_to_detection(self) -> Optional[int]:
        """Cycles from tamper to externally observable failure."""
        if self.detection_cycles is None or self.tamper_cycles is None:
            return None
        return self.detection_cycles - self.tamper_cycles

    def to_dict(self) -> dict:
        return {
            "attack": self.attack,
            "detected": self.detected,
            "reason": self.reason,
            "tamper_cycles": self.tamper_cycles,
            "corruption_cycles": self.corruption_cycles,
            "detection_cycles": self.detection_cycles,
            "cycles_to_corruption": self.cycles_to_corruption,
            "cycles_to_detection": self.cycles_to_detection,
        }

    def __repr__(self) -> str:
        verdict = "DETECTED" if self.detected else "undetected"
        latency = (
            f" after {self.cycles_to_detection} cycles"
            if self.cycles_to_detection is not None
            else ""
        )
        return f"<AttackOutcome {self.attack}: {verdict}{latency} ({self.reason})>"


def patch_ranges(patches: Iterable[Patch]) -> List[Tuple[int, int]]:
    """Half-open byte ranges the patches modify."""
    return [(p.vaddr, p.vaddr + len(p.new)) for p in patches]


def evaluate_patch_attack(
    image: BinaryImage,
    patches: Iterable[Patch],
    goal: RunResult,
    attack_name: str = "patch",
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
    engine: Optional[str] = None,
    rule: Optional[str] = None,
) -> AttackOutcome:
    """Apply ``patches`` to a clone of ``image``, run, score vs ``goal``.

    ``goal`` is the behaviour the attacker wants to reach (typically the
    pristine no-debugger run).  The tamper happens before the program
    starts, so ``tamper_cycles`` is 0 and ``cycles_to_detection`` is the
    full time-to-failure.
    """
    patches = list(patches)
    with get_tracer().span(
        "evaluate_attack", attack=attack_name, patches=len(patches)
    ) as span:
        tampered = image.clone()
        for patch in patches:
            patch.apply(tampered)
        os = OperatingSystem(debugger_attached=debugger_attached)
        emulator = Emulator(
            tampered, os=os, max_steps=max_steps, engine=engine
        )
        watch = TamperWatch(patch_ranges(patches))
        emulator.tamper_watch = watch
        run = emulator.run()
        outcome = score_run(
            attack_name,
            run,
            goal,
            tamper_cycles=0,
            corruption_cycles=watch.hit_cycles,
            rule=rule,
        )
        span.set_attribute("detected", outcome.detected)
        span.set_attribute("reason", outcome.reason)
        if outcome.cycles_to_detection is not None:
            span.set_attribute(
                "cycles_to_detection", outcome.cycles_to_detection
            )
        return outcome


def score_run(
    attack_name: str,
    run: RunResult,
    goal: RunResult,
    tamper_cycles: Optional[int] = None,
    corruption_cycles: Optional[int] = None,
    rule: Optional[str] = None,
) -> AttackOutcome:
    """Score a tampered run against the attacker's goal behaviour.

    ``tamper_cycles``/``corruption_cycles`` thread the latency stamps
    through; detection is externally observable at the end of the run
    (a crash stops it there, a stdout/exit divergence is seen then), so
    ``detection_cycles`` is the run's cycle count when detected.
    """
    if run.crashed:
        outcome = AttackOutcome(attack_name, True, f"crash: {run.fault}", run)
    elif run.stdout != goal.stdout:
        outcome = AttackOutcome(attack_name, True, "stdout diverged", run)
    elif run.exit_status != goal.exit_status:
        outcome = AttackOutcome(attack_name, True, "exit status diverged", run)
    else:
        outcome = AttackOutcome(attack_name, False, "attacker goal reached", run)
    outcome.tamper_cycles = tamper_cycles
    outcome.corruption_cycles = corruption_cycles
    if outcome.detected:
        outcome.detection_cycles = run.cycles
    metrics = get_metrics()
    metrics.counter("attacks.evaluated").inc()
    metrics.counter(
        "attacks.detected" if outcome.detected else "attacks.undetected"
    ).inc()
    if metrics.enabled:
        # The aggregate histogram stays unlabeled; per attack x rule
        # cells are labeled series on the same family, so exporters see
        # one family and per-cell sums reconcile against the aggregate.
        cell = (
            {"attack": attack_name, "rule": rule} if rule is not None else None
        )
        ctd = outcome.cycles_to_detection
        if ctd is not None:
            metrics.histogram(
                "attacks.cycles_to_detection", buckets=DEFAULT_CYCLE_BUCKETS
            ).observe(ctd)
            if cell is not None:
                metrics.histogram(
                    "attacks.cycles_to_detection",
                    buckets=DEFAULT_CYCLE_BUCKETS,
                    labels=cell,
                ).observe(ctd)
        ctc = outcome.cycles_to_corruption
        if ctc is not None:
            metrics.histogram(
                "attacks.cycles_to_corruption", buckets=DEFAULT_CYCLE_BUCKETS
            ).observe(ctc)
            if cell is not None:
                metrics.histogram(
                    "attacks.cycles_to_corruption",
                    buckets=DEFAULT_CYCLE_BUCKETS,
                    labels=cell,
                ).observe(ctc)
    recorder = get_recorder()
    if recorder.enabled:
        recorder.record(
            "attack",
            name=attack_name,
            detected=outcome.detected,
            reason=outcome.reason,
            exit_status=run.exit_status,
            steps=run.steps,
            tamper_cycles=outcome.tamper_cycles,
            corruption_cycles=outcome.corruption_cycles,
            detection_cycles=outcome.detection_cycles,
            cycles_to_detection=outcome.cycles_to_detection,
            rule=rule,
        )
    return outcome
