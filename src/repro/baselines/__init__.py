"""Baseline tamperproofing algorithms Parallax is compared against."""

from .checksum import ChecksummedProgram, EXIT_TAMPERED, guard_function
from .oblivious import EXPECTED_MARKER, OHProgram, instrument_function

__all__ = [
    "ChecksummedProgram",
    "EXIT_TAMPERED",
    "guard_function",
    "EXPECTED_MARKER",
    "OHProgram",
    "instrument_function",
]
