"""Toy OS surface."""

import pytest

from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator, OperatingSystem, run_image
from repro.x86 import Assembler, EAX, EBX, ECX, EDX, Imm


def make_image(build):
    a = Assembler(base=0x1000)
    build(a)
    img = BinaryImage("t")
    img.add_section(Section(".text", 0x1000, a.assemble(), Perm.RX))
    img.add_section(Section(".data", 0x8000, b"ping\x00" + bytes(59), Perm.RW))
    img.entry = 0x1000
    return img


def test_write_and_exit():
    def build(a):
        a.mov(EAX, 4); a.mov(EBX, 1)
        a.mov(ECX, Imm(0x8000, 32)); a.mov(EDX, 4)
        a.int(0x80)
        a.mov(EBX, EAX)  # exit status = bytes written
        a.mov(EAX, 1); a.int(0x80)
    result = run_image(make_image(build))
    assert result.stdout == b"ping"
    assert result.exit_status == 4


def test_ptrace_detects_debugger():
    def build(a):
        a.mov(EAX, 26); a.xor(EBX, EBX); a.xor(ECX, ECX); a.xor(EDX, EDX)
        a.int(0x80)
        a.mov(EBX, EAX)
        a.mov(EAX, 1); a.int(0x80)
    clean = run_image(make_image(build))
    traced = run_image(make_image(build), debugger_attached=True)
    assert clean.exit_status == 0
    assert traced.exit_status == 0xFF  # -1 truncated to exit byte


def test_read_consumes_stdin():
    def build(a):
        a.mov(EAX, 3); a.xor(EBX, EBX)
        a.mov(ECX, Imm(0x8010, 32)); a.mov(EDX, 8)
        a.int(0x80)
        a.mov(EBX, EAX)
        a.mov(EAX, 1); a.int(0x80)
    result = run_image(make_image(build), stdin=b"abc")
    assert result.exit_status == 3


def test_getpid_and_time_deterministic():
    os1 = OperatingSystem()
    os2 = OperatingSystem()
    assert os1.pid == os2.pid
    assert os1.clock == os2.clock
