"""``repro top``: a live terminal dashboard over the event journal.

``repro top`` is to ``repro stats`` what ``top`` is to ``ps``: instead
of summarizing a finished run's artifacts, it watches a run *while it
is happening* and redraws a small dashboard — protect/attack/pipeline
throughput (windowed rate + EWMA), engine mix (block vs trace compiles
and invalidations), pipeline cache hit rate, the hottest trace heads,
and per-request-context lanes when the run is labeled.

The transport is deliberately dumb: the producing run streams its
flight-recorder events as NDJSON to a file (``--journal-follow
PATH``), and ``repro top`` tails that file across process boundaries —
no sockets, no shared memory, works over NFS and in CI logs.  The same
code renders a finished journal file post-hoc (``--once``), which is
how the tests pin the output down.

Time base: event ``ts`` values (the producer's perf-counter offsets).
"Now" for rate windows is the newest timestamp seen, so a replayed
journal shows exactly the rates the live run saw and a stalled run's
rates visibly decay only as new events (or the run's end) arrive.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, TextIO

from .windows import WindowSet

__all__ = ["JournalTail", "TopDashboard", "run_top"]

#: ANSI clear-screen + cursor-home, prefixed to every live frame.
CLEAR = "\x1b[2J\x1b[H"

#: Event kinds grouped as "work" for the throughput table, in display
#: order; kinds outside this list render below, ranked by volume.
WORK_KINDS = ("protect", "rewrite", "attack", "pipeline.task")

ENGINE_KINDS = (
    "block_compile",
    "block_invalidate",
    "trace_compile",
    "trace_invalidate",
)


class JournalTail:
    """Incremental reader of an NDJSON journal being written by a run.

    ``poll()`` parses every *complete* line appended since the last
    call; a partially written trailing line is left in the buffer for
    the next poll, so a reader racing the writer never sees torn JSON.
    A missing file is not an error — the producer may not have opened
    it yet — and truncation (file shrank) restarts from the top.
    """

    __slots__ = ("path", "_offset", "_buffer")

    def __init__(self, path: str):
        self.path = path
        self._offset = 0
        self._buffer = ""

    def poll(self) -> List[dict]:
        try:
            with open(self.path) as fh:
                fh.seek(0, 2)
                size = fh.tell()
                if size < self._offset:
                    self._offset = 0
                    self._buffer = ""
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        data = self._buffer + chunk
        lines = data.split("\n")
        self._buffer = lines.pop()
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records


def _fmt_rate(value: float) -> str:
    return f"{value:8.2f}/s"


def _fmt_pct(num: float, den: float) -> str:
    return f"{num / den:6.1%}" if den else "   n/a"


class TopDashboard:
    """Aggregates journal events and renders dashboard frames.

    Feed it events (from a :class:`JournalTail`, or directly as a
    recorder subscriber) and call :meth:`render`.  All derived numbers
    come from :class:`~repro.telemetry.windows.WindowSet` rolling
    windows plus a handful of monotonic totals, so a frame is cheap to
    build no matter how long the run has been going.
    """

    HOT_LIMIT = 5

    def __init__(self, window_seconds: float = 30.0, source: str = ""):
        self.source = source
        self.windows = WindowSet(window_seconds=window_seconds)
        self.totals: Dict[str, int] = {}
        self.latest_ts = 0.0
        self.events_seen = 0
        self.finished: Optional[dict] = None
        self._cache_hits = 0
        self._cache_misses = 0
        self._hot_traces: Dict[str, int] = {}
        self._hot_blocks: Dict[str, int] = {}
        self._context_totals: Dict[str, Dict[str, int]] = {}
        self._started_wall = time.time()
        # Serve lane: single-flight role mix, backpressure, live queue
        # gauges and per-tenant throughput from `repro serve` journals.
        self._serve_roles: Dict[str, int] = {}
        self._serve_rejects: Dict[str, int] = {}
        self._serve_inflight = 0
        self._serve_queued = 0
        self._serve_tenants: Dict[str, int] = {}
        self._serve_tenant_windows = WindowSet(
            window_seconds=window_seconds, group_by="tenant"
        )

    # -- feeding --------------------------------------------------------

    def feed(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "journal_summary":
            self.finished = record
            return
        if rtype != "event":
            return
        kind = record.get("kind", "?")
        self.events_seen += 1
        self.totals[kind] = self.totals.get(kind, 0) + 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)) and ts > self.latest_ts:
            self.latest_ts = float(ts)
        self.windows.feed_event(record)
        if kind == "pipeline.task":
            if record.get("cache_hit"):
                self._cache_hits += 1
            else:
                self._cache_misses += 1
        elif kind == "trace_compile":
            head = record.get("head")
            if head is not None:
                key = head if isinstance(head, str) else f"{head:#x}"
                self._hot_traces[key] = self._hot_traces.get(key, 0) + 1
        elif kind == "block_compile":
            start = record.get("start")
            if start is not None:
                key = start if isinstance(start, str) else f"{start:#x}"
                self._hot_blocks[key] = self._hot_blocks.get(key, 0) + 1
        elif kind == "serve.request":
            role = record.get("singleflight", "?")
            self._serve_roles[role] = self._serve_roles.get(role, 0) + 1
            inflight = record.get("in_flight")
            if isinstance(inflight, int):
                self._serve_inflight = inflight
            queued = record.get("queued")
            if isinstance(queued, int):
                self._serve_queued = queued
            tenant = (record.get("ctx") or {}).get("tenant")
            if tenant is not None:
                self._serve_tenants[tenant] = (
                    self._serve_tenants.get(tenant, 0) + 1
                )
                self._serve_tenant_windows.feed_event(record)
        elif kind == "serve.reject":
            reason = record.get("reason", "?")
            self._serve_rejects[reason] = self._serve_rejects.get(reason, 0) + 1
        ctx = record.get("ctx")
        if ctx:
            lane = ",".join(f"{k}={v}" for k, v in sorted(ctx.items()))
            per = self._context_totals.setdefault(lane, {})
            per[kind] = per.get(kind, 0) + 1

    def feed_many(self, records) -> int:
        fed = 0
        for record in records:
            self.feed(record)
            fed += 1
        return fed

    # -- rendering ------------------------------------------------------

    def _throughput_rows(self, now: float) -> List[str]:
        rows = []
        shown = [k for k in WORK_KINDS if k in self.totals]
        extra = sorted(
            (
                k
                for k in self.totals
                if k not in WORK_KINDS and k not in ENGINE_KINDS
            ),
            key=lambda k: (-self.totals[k], k),
        )
        for kind in shown + extra[:4]:
            window = self.windows.rate_window(kind)
            rate = window.rate(now) if window else 0.0
            ewma = window.ewma_rate(now) if window else 0.0
            seconds = self.windows.value_window(kind, "seconds")
            if seconds is not None and seconds.count(now):
                lat = (
                    f"  p50 {seconds.quantile(0.5, now) * 1e3:8.2f}ms"
                    f"  p95 {seconds.quantile(0.95, now) * 1e3:8.2f}ms"
                )
            else:
                lat = ""
            rows.append(
                f"  {kind:<16} {self.totals[kind]:>10,}"
                f"  {_fmt_rate(rate)}  ewma {_fmt_rate(ewma)}{lat}"
            )
        return rows

    def _serve_rows(self, now: float) -> List[str]:
        """The serving lane: role mix, backpressure, gauges, tenants."""
        total = sum(self._serve_roles.values())
        rejected = sum(self._serve_rejects.values())
        if not total and not rejected:
            return []
        rows = []
        coalesced = total - self._serve_roles.get("leader", 0)
        role_bits = "  ".join(
            f"{role} {self._serve_roles[role]:,}"
            for role in ("leader", "cache-hit", "follower")
            if role in self._serve_roles
        )
        rows.append(
            f"serve              {total:>10,} req   "
            f"coalesced {_fmt_pct(coalesced, total)}   {role_bits}"
        )
        gauge_bits = (
            f"  in flight {self._serve_inflight:,}"
            f"   queued {self._serve_queued:,}"
        )
        if rejected:
            reject_bits = ", ".join(
                f"{reason} {count:,}"
                for reason, count in sorted(self._serve_rejects.items())
            )
            gauge_bits += f"   rejected {rejected:,} ({reject_bits})"
        rows.append(gauge_bits)
        if self._serve_tenants:
            rows.append("  tenants")
            ranked = sorted(
                self._serve_tenants.items(), key=lambda kv: (-kv[1], kv[0])
            )
            for tenant, count in ranked[: self.HOT_LIMIT]:
                key = f"serve.request[tenant={tenant}]"
                window = self._serve_tenant_windows.rate_window(key)
                rate = window.rate(now) if window else 0.0
                seconds = self._serve_tenant_windows.value_window(key, "seconds")
                lat = ""
                if seconds is not None and seconds.count(now):
                    lat = f"  p95 {seconds.quantile(0.95, now) * 1e3:8.2f}ms"
                rows.append(
                    f"    {tenant:<14} {count:>8,} req  {_fmt_rate(rate)}{lat}"
                )
        return rows

    def render(self, now: Optional[float] = None) -> str:
        now = self.latest_ts if now is None else now
        lines: List[str] = []
        header = f"repro top — {self.events_seen:,} events"
        if self.source:
            header += f" from {self.source}"
        header += f" — run clock {now:8.2f}s"
        if self.finished is not None:
            dropped = self.finished.get("dropped", 0)
            header += f" — run finished ({dropped:,} events dropped)"
        lines.append(header)
        lines.append("")
        if not self.events_seen:
            lines.append("  (waiting for events...)")
            return "\n".join(lines) + "\n"
        lines.append(
            f"throughput (window {self.windows.window_seconds:g}s)"
        )
        lines.extend(self._throughput_rows(now))
        engine = [k for k in ENGINE_KINDS if k in self.totals]
        if engine:
            lines.append("engine mix")
            for kind in engine:
                window = self.windows.rate_window(kind)
                rate = window.rate(now) if window else 0.0
                lines.append(
                    f"  {kind:<16} {self.totals[kind]:>10,}  {_fmt_rate(rate)}"
                )
        tasks = self._cache_hits + self._cache_misses
        if tasks:
            lines.append(
                f"pipeline cache     hit {_fmt_pct(self._cache_hits, tasks)}"
                f"   ({self._cache_hits:,}/{tasks:,} tasks)"
            )
        if self._hot_traces:
            ranked = sorted(
                self._hot_traces.items(), key=lambda kv: (-kv[1], kv[0])
            )
            shown = ", ".join(
                f"{head} x{count}" for head, count in ranked[: self.HOT_LIMIT]
            )
            lines.append(f"hot traces         {shown}")
        elif self._hot_blocks:
            ranked = sorted(
                self._hot_blocks.items(), key=lambda kv: (-kv[1], kv[0])
            )
            shown = ", ".join(
                f"{start} x{count}" for start, count in ranked[: self.HOT_LIMIT]
            )
            lines.append(f"hot blocks         {shown}")
        lines.extend(self._serve_rows(now))
        if self._context_totals:
            lines.append("contexts")
            for lane in sorted(self._context_totals):
                per = self._context_totals[lane]
                summary = "  ".join(
                    f"{kind} {per[kind]:,}"
                    for kind in sorted(per, key=lambda k: (-per[k], k))[:4]
                )
                lines.append(f"  {{{lane}}}  {summary}")
        return "\n".join(lines) + "\n"


def run_top(
    path: str,
    interval: float = 1.0,
    duration: Optional[float] = None,
    once: bool = False,
    window_seconds: float = 30.0,
    out: Optional[TextIO] = None,
    clear: bool = True,
) -> TopDashboard:
    """Tail ``path`` and redraw the dashboard until the run ends.

    ``once`` renders a single frame from the journal's current content
    (no clearing, no loop) — the post-hoc and CI mode.  Otherwise the
    screen refreshes every ``interval`` seconds until ``duration``
    elapses, the producer writes its end-of-run summary line, or the
    user interrupts.  Returns the dashboard (tests inspect it).
    """
    import sys

    out = sys.stdout if out is None else out
    tail = JournalTail(path)
    dashboard = TopDashboard(window_seconds=window_seconds, source=path)
    if once:
        dashboard.feed_many(tail.poll())
        out.write(dashboard.render())
        out.flush()
        return dashboard
    deadline = None if duration is None else time.monotonic() + duration
    try:
        while True:
            dashboard.feed_many(tail.poll())
            frame = dashboard.render()
            out.write(CLEAR + frame if clear else frame)
            out.flush()
            if dashboard.finished is not None:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return dashboard
