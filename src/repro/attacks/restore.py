"""Dynamic code-restore attacks (§VI-A).

A runtime adversary modifies code, lets it execute, and restores the
original bytes before any verification runs.  "No self-sufficient
tamperproofing algorithm can completely prevent code restore attacks" —
Parallax only *narrows the window*: the verification chains run
repeatedly and unpredictably (probabilistic variants), so a restore
that is too slow is caught.

The attack driver single-steps the emulator: when execution first
reaches ``trigger``, the patch is applied; when it reaches ``restore_at``
(or after ``restore_after_steps``), the patch is reverted.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..emu import (
    Emulator,
    EmulationError,
    OperatingSystem,
    RunResult,
    TamperWatch,
)
from ..emu.syscalls import ExitProgram
from .harness import AttackOutcome, score_run


def _run_restore(
    image: BinaryImage,
    patch: Patch,
    trigger: int,
    restore_after_steps: int,
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
) -> Tuple[RunResult, Optional[int], TamperWatch]:
    """Drive the restore attack; returns ``(run, tamper_cycles, watch)``.

    ``tamper_cycles`` is the cycle counter when the patch landed
    (``None`` if the trigger was never reached).  The watch stamps the
    first execution of the patched bytes *during the tamper window*; at
    revert time an unhit watch is disarmed — the bytes are pristine
    again, so later executions are not corruption.
    """
    os = OperatingSystem(debugger_attached=debugger_attached)
    emulator = Emulator(image, os=os, max_steps=max_steps)
    watch = TamperWatch([(patch.vaddr, patch.vaddr + len(patch.new))])
    applied_at: Optional[int] = None
    tamper_cycles: Optional[int] = None
    applied = False
    reverted = False

    fault = None
    try:
        while True:
            if not applied and emulator.cpu.eip == trigger:
                emulator.memory.write(patch.vaddr, patch.new)
                applied = True
                applied_at = emulator.steps
                tamper_cycles = emulator.cycles
                emulator.tamper_watch = watch
            if applied and not reverted and emulator.steps - applied_at >= restore_after_steps:
                emulator.memory.write(patch.vaddr, patch.old)
                reverted = True
                if not watch.hit:
                    emulator.tamper_watch = None
            emulator.step()
    except ExitProgram:
        pass
    except EmulationError as exc:
        fault = exc
    run = RunResult(
        exit_status=emulator.os.exit_status,
        steps=emulator.steps,
        cycles=emulator.cycles,
        stdout=bytes(emulator.os.stdout),
        fault=fault,
    )
    return run, tamper_cycles, watch


def run_with_restore_attack(
    image: BinaryImage,
    patch: Patch,
    trigger: int,
    restore_after_steps: int,
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
) -> RunResult:
    """Run ``image`` applying ``patch`` at ``trigger`` and reverting it
    ``restore_after_steps`` emulated instructions later.

    A small ``restore_after_steps`` models a fast attacker (modify, use,
    restore immediately); a large one models a lazy attacker whose
    window overlaps a verification-chain execution.
    """
    run, _, _ = _run_restore(
        image, patch, trigger, restore_after_steps,
        debugger_attached=debugger_attached, max_steps=max_steps,
    )
    return run


def evaluate_restore_attack(
    image: BinaryImage,
    patch: Patch,
    trigger: int,
    restore_after_steps: int,
    goal: RunResult,
    attack_name: str = "code_restore",
    debugger_attached: bool = False,
    rule: Optional[str] = None,
) -> AttackOutcome:
    run, tamper_cycles, watch = _run_restore(
        image, patch, trigger, restore_after_steps,
        debugger_attached=debugger_attached,
    )
    return score_run(
        attack_name,
        run,
        goal,
        tamper_cycles=tamper_cycles,
        corruption_cycles=watch.hit_cycles,
        rule=rule,
    )
