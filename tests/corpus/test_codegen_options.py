"""Codegen options shape the instruction mix (the Fig. 6 lever)."""

from repro.corpus import builders
from repro.ropc import CodegenOptions, compile_functions
from repro.x86 import decode_all


def _compile(options):
    code, _, _ = compile_functions(
        [builders.range_sum()], base=0x1000, options=options, entry_main=None
    )
    return code, decode_all(code, address=0x1000, stop_on_error=True)


def test_wide_immediates_option():
    narrow, insns_n = _compile(CodegenOptions(wide_immediates=False))
    wide, insns_w = _compile(CodegenOptions(wide_immediates=True))

    def imm32_count(insns):
        from repro.x86 import Imm
        return sum(
            1
            for i in insns
            if i.operands and isinstance(i.operands[-1], Imm)
            and i.operands[-1].width == 32
        )

    assert imm32_count(insns_w) >= imm32_count(insns_n)


def test_xor_zero_idiom():
    from repro.ropc import ir
    from repro.x86 import EAX
    f = ir.IRFunction("z", 0)
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    with_xor, _, _ = compile_functions(
        [f], base=0, options=CodegenOptions(xor_zero_idiom=True), entry_main=None
    )
    without, _, _ = compile_functions(
        [f], base=0, options=CodegenOptions(xor_zero_idiom=False), entry_main=None
    )
    assert b"\x31\xc0" in with_xor      # xor eax, eax
    assert b"\xb8\x00\x00\x00\x00" in without


def test_function_alignment():
    aligned, _, _ = compile_functions(
        [builders.mix32(), builders.abs32()],
        base=0, options=CodegenOptions(align_functions=16), entry_main=None,
    )
    # second function starts on a 16-byte boundary (nop padding before)
    from repro.ropc import compile_functions as cf
    _, spans, _ = cf(
        [builders.mix32(), builders.abs32()],
        base=0, options=CodegenOptions(align_functions=16), entry_main=None,
    )
    assert spans["abs32"][0] % 16 == 0
