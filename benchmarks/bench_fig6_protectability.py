"""Figure 6 — protectable code bytes per program, per rewriting rule.

Paper: existing near-ret 3-6%, far-ret <=1%, immediate-mod 37-60%,
jump-mod 43-84%, any-rule 63% (lame) - 90% (gcc), average 75%.

Our reproduction preserves the shape: near/far-ret in the paper's band,
any-rule average in the low-to-mid 70s with gcc at the top and lame at
the bottom.  Jump-mod sits lower than the paper's share because our
synthetic corpus has fewer relocatable address fields than real gcc
output (see EXPERIMENTS.md).
"""

import pytest

from repro.corpus import PROGRAM_NAMES
from repro.rewrite import RewriteEngine, format_fig6_table

import _shared

_reports = {}


@pytest.mark.parametrize("name", PROGRAM_NAMES)
def test_fig6_protectability(benchmark, name):
    engine = RewriteEngine()
    image = _shared.program(name).image

    result = benchmark.pedantic(engine.analyze, args=(image,), rounds=1, iterations=1)
    report = result.report
    _reports[name] = report

    assert 2.0 <= report.percent("existing_near_ret") <= 8.0
    assert report.percent("far_ret") <= 1.5
    assert 35.0 <= report.percent("immediate_mod") <= 75.0
    assert 55.0 <= report.percent_any() <= 92.0


def test_fig6_order_and_print(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # make sure every row exists even when tests are filtered
    engine = RewriteEngine()
    for name in PROGRAM_NAMES:
        if name not in _reports:
            _reports[name] = engine.analyze(_shared.program(name).image).report
    reports = [_reports[name] for name in PROGRAM_NAMES]
    print()
    print("=== Figure 6: protectable code bytes (percent of .text) ===")
    print(format_fig6_table(reports))
    by_any = {r.program: r.percent_any() for r in reports}
    assert max(by_any, key=by_any.get) == "gcc"   # paper: gcc 90% (top)
    assert min(by_any, key=by_any.get) == "lame"  # paper: lame 63% (bottom)
