"""Differential property: every compiled engine is observationally
identical to the reference step interpreter.

Randomly generated corpus programs (and their protected variants) must
produce the exact same ``RunResult`` — exit status, step count, cycle
count, stdout bytes and fault — under all engines in
:data:`repro.emu.ENGINES` (step, block, trace).  The adversarial cases
ride along: the Wurster code-view overlay and mid-run tamper/restore
of mapped code, both of which must invalidate any superblocks or
linked traces compiled over the affected bytes.
"""

from hypothesis import given, settings, strategies as st

from repro.attacks.patching import corrupt_byte
from repro.core import Parallax, ProtectConfig
from repro.corpus import builders
from repro.corpus.generator import FunctionGenerator, MixProfile
from repro.corpus.program import (
    DATA_BASE,
    DataBuilder,
    Program,
    RODATA_BASE,
    call_const,
)
from repro.emu import ENGINES, Emulator, TamperWatch
from repro.ropc import ir
from repro.x86.registers import EAX, EBX, ECX, EDI, EDX, ESI

MAX_STEPS = 2_000_000


def _make_program(seed: int, fillers: int = 5) -> Program:
    """A small random program in the corpus shape: a counted main loop
    over seeded filler functions plus a chain-translatable digest."""
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    profile = MixProfile(functions=fillers, call_density=0.4, size=(3, 7))
    generated = FunctionGenerator(profile, scratch, seed).generate("rnd")

    main = ir.IRFunction("main", params=0)
    main.emit(ir.Const(ESI, (seed & 0xFFFFFFFF) | 1))
    main.emit(ir.Const(EDI, 4))
    main.emit(ir.Label("block"))
    for f in generated:
        call_const(main, f.name, seed & 0xFFFF)
        main.emit(ir.BinOp("xor", ESI, EAX))
    main.emit(ir.Mov(EBX, ESI))
    main.emit(ir.Mov(ECX, EDI))
    main.emit(ir.Const(EDX, stats))
    main.emit(ir.Call(EAX, "digest_rand", (EBX, ECX, EDX)))
    main.emit(ir.BinOp("xor", ESI, EAX))
    main.emit(ir.Const(EDX, 1))
    main.emit(ir.BinOp("sub", EDI, EDX))
    main.emit(ir.Branch("ne", EDI, 0, "block"))
    main.emit(ir.Mov(EBX, ESI))
    main.emit(ir.Const(ECX, data.addr("hexbuf")))
    main.emit(ir.Call(EAX, "to_hex", (EBX, ECX)))
    call_const(main, "write_buf", data.addr("hexbuf"), 8)
    main.emit(ir.Mov(EAX, ESI))
    main.emit(ir.Const(ECX, 63))
    main.emit(ir.BinOp("and", EAX, ECX))
    main.emit(ir.Ret())

    functions = [
        main,
        builders.make_digest("digest_rand", rounds=12, branchy=True),
        builders.to_hex(),
        builders.write_buf(),
        builders.clip(),  # deliberately never called (cold-code tamper target)
        *generated,
    ]
    return Program(
        f"rand{seed}", functions, rodata, data, candidates=["digest_rand"]
    )


def _protect(program: Program):
    config = ProtectConfig(
        strategy="cleartext", verification_functions=["digest_rand"]
    )
    return Parallax(config).protect(program)


def _signature(result):
    return (
        result.exit_status,
        result.steps,
        result.cycles,
        result.stdout,
        repr(result.fault),
    )


def _run_signature(image, engine):
    return _signature(
        Emulator(image, max_steps=MAX_STEPS, engine=engine).run()
    )


# ----------------------------------------------------------------------
# Random programs, unprotected and protected
# ----------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**31))
def test_random_programs_identical_under_all_engines(seed):
    program = _make_program(seed)
    sigs = {e: _run_signature(program.image, e) for e in ENGINES}
    assert all(sig == sigs["step"] for sig in sigs.values()), sigs

    protected = _protect(program)
    p_sigs = {e: _run_signature(protected.image, e) for e in ENGINES}
    assert all(sig == p_sigs["step"] for sig in p_sigs.values()), p_sigs
    # the chain rewrite must also preserve behaviour (same stdout)
    assert p_sigs["step"][3] == sigs["step"][3]


# ----------------------------------------------------------------------
# Wurster code-view overlay
# ----------------------------------------------------------------------

def _wurster_signature(protected, patch, engine):
    emulator = Emulator(protected.image, max_steps=MAX_STEPS, engine=engine)
    emulator.memory.patch_code_view(patch.vaddr, patch.new)
    return _signature(emulator.run())


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 2**31))
def test_wurster_patched_runs_identical_under_all_engines(seed):
    protected = _protect(_make_program(seed))
    image = protected.image
    target = next(
        addr
        for addr in protected.report.chains[0].gadget_addresses
        if image.section_at(addr).name == ".text"
    )
    patch = corrupt_byte(image, target)
    sigs = {e: _wurster_signature(protected, patch, e) for e in ENGINES}
    assert all(sig == sigs["step"] for sig in sigs.values()), sigs
    # and the chain must actually trip over the tampered gadget
    clean = _run_signature(image, "step")
    assert sigs["step"] != clean


# ----------------------------------------------------------------------
# Tamper-watch latency stamps
# ----------------------------------------------------------------------

def _watched_signature(image, ranges, engine):
    emulator = Emulator(image, max_steps=MAX_STEPS, engine=engine)
    watch = TamperWatch(ranges)
    emulator.tamper_watch = watch
    sig = _signature(emulator.run())
    return sig, (watch.hit_steps, watch.hit_cycles, watch.hit_eip)


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 2**31))
def test_tamper_watch_stamps_identical_under_all_engines(seed):
    """The detection-latency stamps (first execution of tampered bytes)
    must be byte-identical across engines: the block and trace engines
    single-step through watch-overlapping bodies, so the stamp always
    comes from the same per-step accounting."""
    protected = _protect(_make_program(seed))
    image = protected.image
    target = next(
        addr
        for addr in protected.report.chains[0].gadget_addresses
        if image.section_at(addr).name == ".text"
    )
    patch = corrupt_byte(image, target)
    tampered = image.clone()
    patch.apply(tampered)
    ranges = [(patch.vaddr, patch.vaddr + len(patch.new))]

    outcomes = {e: _watched_signature(tampered, ranges, e) for e in ENGINES}
    step_sig, step_stamp = outcomes["step"]
    assert all(o == outcomes["step"] for o in outcomes.values()), outcomes
    # the tampered gadget is on the chain's dispatch path: it executes
    assert step_stamp[1] is not None
    assert step_stamp[1] <= step_sig[2]  # stamped no later than run end


# ----------------------------------------------------------------------
# Mid-run tamper / restore
# ----------------------------------------------------------------------

SEED = 0xD1FF


def _advance(emulator, n):
    if emulator.engine == "block":
        emulator.blocks.run_steps(n)
    elif emulator.engine == "trace":
        emulator.traces.run_steps(n)
    else:
        for _ in range(n):
            emulator.step()


def _tamper_restore_run(program, target, tamper_byte, engine):
    """Run with a one-byte code tamper applied and reverted mid-run."""
    emulator = Emulator(program.image, max_steps=MAX_STEPS, engine=engine)
    original = emulator.memory.read(target, 1)[0]
    phases = []
    try:
        _advance(emulator, 400)
        emulator.memory.write_u8(target, tamper_byte)
        phases.append((emulator.steps, emulator.cpu.eip))
        _advance(emulator, 400)
        emulator.memory.write_u8(target, original)
        phases.append((emulator.steps, emulator.cpu.eip))
    except Exception as exc:  # must be identical across engines too
        phases.append(("fault", type(exc).__name__, emulator.steps))
        return emulator, tuple(phases), None
    return emulator, tuple(phases), _signature(emulator.run())


def test_midrun_tamper_of_cold_code_invalidates_and_matches():
    """Tampering never-executed code still bumps the page version, so
    superblocks sharing the page recompile; behaviour is unchanged."""
    program = _make_program(SEED)
    target = program.image.symbols["clip"].vaddr
    baseline = _run_signature(program.image, "step")

    results = {}
    for engine in ENGINES:
        emulator, phases, sig = _tamper_restore_run(program, target, 0x90, engine)
        results[engine] = (phases, sig)
        assert sig is not None, (engine, phases)
        assert sig == baseline  # cold-code tamper is behaviour-neutral
    assert all(r == results["step"] for r in results.values()), results

    # the block engine must have dropped blocks compiled over that page
    emulator, _, _ = _tamper_restore_run(program, target, 0x90, "block")
    assert emulator.blocks.invalidated >= 1


def test_midrun_tamper_of_hot_code_matches():
    """Tampering the digest entry mid-run: whatever happens (fault or
    divergence), both engines observe exactly the same thing."""
    program = _make_program(SEED)
    target = program.image.symbols["digest_rand"].vaddr

    outcomes = {}
    for engine in ENGINES:
        _, phases, sig = _tamper_restore_run(program, target, 0x90, engine)
        outcomes[engine] = (phases, sig)
    assert all(o == outcomes["step"] for o in outcomes.values()), outcomes
