"""The Wurster et al. instruction-cache modification attack.

The attack (a kernel patch in the original work) lets an adversary
modify the *instruction* view of memory while data reads keep returning
pristine bytes.  Checksumming self-verification reads code as data, so
it computes correct checksums over tampered code — completely defeated.

Parallax is immune: its verification chains *execute* the protected
bytes (the gadgets), and execution uses the instruction view, so the
tampered bytes are exactly what the chain trips over.

Implemented on top of :meth:`repro.emu.memory.Memory.patch_code_view`.
"""

from __future__ import annotations

from typing import Iterable

from ..binary.image import BinaryImage
from ..binary.patch import Patch
from ..emu import Emulator, EmulationError, OperatingSystem, RunResult
from ..emu.syscalls import ExitProgram
from .harness import AttackOutcome, score_run


def run_with_icache_patches(
    image: BinaryImage,
    patches: Iterable[Patch],
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
) -> RunResult:
    """Run ``image`` with ``patches`` applied to the instruction view only.

    Data reads (and therefore any checksumming code) see the original
    bytes; fetch sees the tampered ones.
    """
    os = OperatingSystem(debugger_attached=debugger_attached)
    emulator = Emulator(image, os=os, max_steps=max_steps)
    for patch in patches:
        emulator.memory.patch_code_view(patch.vaddr, patch.new)
    return emulator.run()


def evaluate_wurster_attack(
    image: BinaryImage,
    patches: Iterable[Patch],
    goal: RunResult,
    attack_name: str = "wurster",
    debugger_attached: bool = False,
    max_steps: int = 200_000_000,
) -> AttackOutcome:
    """Score the I-cache attack against ``goal`` behaviour."""
    run = run_with_icache_patches(
        image, patches, debugger_attached=debugger_attached, max_steps=max_steps
    )
    return score_run(attack_name, run, goal)
