"""Structured tracing: nesting, attributes, export, no-op mode."""

import json

from repro.telemetry import Tracer
from repro.telemetry.tracing import NULL_SPAN


def test_nested_spans_link_parents():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner"):
                pass
        with tracer.span("sibling"):
            pass

    names = [s.name for s in tracer.spans]
    # children finish before parents
    assert names == ["inner", "middle", "sibling", "outer"]
    outer_span = tracer.find("outer")[0]
    middle_span = tracer.find("middle")[0]
    inner_span = tracer.find("inner")[0]
    sibling_span = tracer.find("sibling")[0]
    assert outer_span.parent_id is None
    assert middle_span.parent_id == outer_span.span_id
    assert inner_span.parent_id == middle_span.span_id
    assert sibling_span.parent_id == outer_span.span_id
    assert {s.span_id for s in tracer.children_of(outer_span.span_id)} == {
        middle_span.span_id,
        sibling_span.span_id,
    }


def test_span_attributes_and_duration():
    tracer = Tracer()
    with tracer.span("work", program="wget") as span:
        span.set_attribute("words", 91)
    finished = tracer.find("work")[0]
    assert finished.attributes == {"program": "wget", "words": 91}
    assert finished.finished
    assert finished.duration >= 0.0
    assert finished.status == "ok"


def test_span_error_status_on_exception():
    tracer = Tracer()
    try:
        with tracer.span("failing"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.find("failing")[0].status == "error"
    # stack unwound: a new span is a root again
    with tracer.span("after"):
        pass
    assert tracer.find("after")[0].parent_id is None


def test_disabled_tracer_returns_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("ignored", key="value")
    assert span is NULL_SPAN
    with span as s:
        s.set_attribute("k", "v")  # no-op, must not raise
    assert tracer.spans == []
    assert tracer.current() is None


def test_jsonl_export(tmp_path):
    tracer = Tracer()
    with tracer.span("parent", x=1):
        with tracer.span("child"):
            pass
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(events) == 2
    by_name = {e["name"]: e for e in events}
    assert by_name["child"]["parent_id"] == by_name["parent"]["span_id"]
    assert by_name["parent"]["attributes"] == {"x": 1}
    assert all(e["type"] == "span" for e in events)
    assert all(e["duration_s"] >= 0 for e in events)


def test_reset():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.reset()
    assert tracer.spans == []
    with tracer.span("b"):
        pass
    assert tracer.spans[0].span_id == 1
