"""Legacy setup shim — offline environments without the wheel package
cannot use PEP 517 editable installs, so we keep a setup.py entry point."""

from setuptools import setup

setup()
