"""IA-32 instruction decoder.

Decodes the integer subset described in :mod:`repro.x86.opcodes`.  The
decoder is deliberately strict: any byte sequence outside the supported
subset raises :class:`~repro.x86.errors.DecodeError`.  The gadget finder
exploits this to discard unaligned byte windows that are not valid code.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional

from .errors import DecodeError
from .instruction import Instruction
from .opcodes import (
    ARITH,
    CC_NAMES,
    GRP3_DIGITS,
    GRP5_DIGITS,
    JCC_MNEMONICS,
    SEGMENT_OPS,
    SETCC_MNEMONICS,
    SHIFT_DIGITS,
    SIMPLE,
)

#: Segment-override prefixes (decoded and ignored: flat memory model).
_SEG_PREFIXES = frozenset({0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65})
#: lock/repne/rep prefixes.
_REP_PREFIXES = frozenset({0xF0, 0xF2, 0xF3})
from .operands import Imm, Mem, Rel, SegReg, to_signed
from .registers import Register

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


class _Cursor:
    """Byte cursor over the input buffer with bounds checking."""

    __slots__ = ("data", "start", "pos")

    def __init__(self, data: bytes, offset: int):
        self.data = data
        self.start = offset
        self.pos = offset

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction", offset=self.start)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def u16(self) -> int:
        return self.u8() | (self.u8() << 8)

    def u32(self) -> int:
        return self.u8() | (self.u8() << 8) | (self.u16() << 16)

    def s8(self) -> int:
        return to_signed(self.u8(), 8)

    def s32(self) -> int:
        return to_signed(self.u32(), 32)

    @property
    def length(self) -> int:
        return self.pos - self.start

    def raw(self) -> bytes:
        return self.data[self.start : self.pos]


def _decode_modrm(cur: _Cursor, width: int):
    """Decode a modrm (+sib +disp) sequence.

    Returns ``(rm_operand, reg_field)`` where ``rm_operand`` is a Register
    or a :class:`Mem` of the requested access ``width``.
    """
    modrm = cur.u8()
    mod = modrm >> 6
    reg = (modrm >> 3) & 7
    rm = modrm & 7

    if mod == 3:
        if width == 8:
            return Register.gp8(rm), reg
        if width == 16:
            return Register.gp16(rm), reg
        return Register.gp32(rm), reg

    base = index = None
    scale = 1
    disp = 0

    if rm == 4:  # SIB byte follows
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        idx = (sib >> 3) & 7
        bse = sib & 7
        if idx != 4:
            index = Register.gp32(idx)
        if bse == 5 and mod == 0:
            disp = cur.s32()
        else:
            base = Register.gp32(bse)
    elif rm == 5 and mod == 0:  # disp32, no base
        disp = cur.s32()
    else:
        base = Register.gp32(rm)

    if mod == 1:
        disp += cur.s8()
    elif mod == 2:
        disp += cur.s32()

    return Mem(base=base, index=index, scale=scale, disp=disp, width=width), reg


def decode(data: bytes, offset: int = 0, address: Optional[int] = None) -> Instruction:
    """Decode one instruction from ``data`` at ``offset``.

    Args:
        data: buffer containing encoded instructions.
        offset: byte offset to decode at.
        address: virtual address of the instruction (used to resolve
            relative branch targets); optional.

    Returns:
        The decoded :class:`~repro.x86.instruction.Instruction`.

    Raises:
        DecodeError: the bytes are not a supported instruction.
    """
    # Consume prefixes.  Segment overrides are ignored (flat memory
    # model); lock/rep keep the inner mnemonic but forbid control flow;
    # 0x66 switches to the 16-bit operand subset.
    pos = offset
    opsize16 = False
    has_rep = False
    while pos < len(data):
        byte = data[pos]
        if byte in _SEG_PREFIXES:
            pos += 1
        elif byte in _REP_PREFIXES:
            has_rep = True
            pos += 1
        elif byte == 0x66:
            opsize16 = True
            pos += 1
        else:
            break
    nprefix = pos - offset
    if nprefix > 4:
        raise DecodeError("too many prefixes", offset=offset)
    if pos >= len(data):
        raise DecodeError("truncated instruction", offset=offset)

    inner_addr = address + nprefix if address is not None else None
    if opsize16:
        inner = _decode16(data, pos, inner_addr)
    else:
        inner = _decode_bare(data, pos, inner_addr)
    if has_rep and inner.is_control_flow:
        raise DecodeError("rep-prefixed branch", offset=offset)
    if nprefix == 0:
        return inner
    return Instruction(
        inner.mnemonic,
        inner.operands,
        raw=data[offset : pos + inner.length],
        address=address,
        imm_offset=(
            inner.imm_offset + nprefix if inner.imm_offset is not None else None
        ),
    )


def _decode_bare(data: bytes, offset: int, address: Optional[int]) -> Instruction:
    """Decode one instruction with no prefixes present."""
    cur = _Cursor(data, offset)
    op = cur.u8()
    imm_off = None

    def make(mnemonic, *operands) -> Instruction:
        return Instruction(
            mnemonic,
            operands,
            raw=cur.raw(),
            address=address,
            imm_offset=imm_off,
        )

    # -- no-operand opcodes ------------------------------------------------
    if op in SIMPLE:
        return make(SIMPLE[op])
    if op in SEGMENT_OPS:
        mnemonic, segment = SEGMENT_OPS[op]
        return make(mnemonic, SegReg(segment))

    # -- group-1 arithmetic: 0x00..0x3d (skipping segment/prefix slots) ----
    if op < 0x40 and (op & 7) <= 5:
        mnemonic = ARITH[op >> 3]
        form = op & 7
        if form == 0:  # r/m8, r8
            rm, reg = _decode_modrm(cur, 8)
            return make(mnemonic, rm, Register.gp8(reg))
        if form == 1:  # r/m32, r32
            rm, reg = _decode_modrm(cur, 32)
            return make(mnemonic, rm, Register.gp32(reg))
        if form == 2:  # r8, r/m8
            rm, reg = _decode_modrm(cur, 8)
            return make(mnemonic, Register.gp8(reg), rm)
        if form == 3:  # r32, r/m32
            rm, reg = _decode_modrm(cur, 32)
            return make(mnemonic, Register.gp32(reg), rm)
        if form == 4:  # al, imm8
            imm_off = cur.length
            return make(mnemonic, Register.gp8(0), Imm(cur.u8(), 8))
        # form == 5: eax, imm32
        imm_off = cur.length
        return make(mnemonic, Register.gp32(0), Imm(cur.u32(), 32))

    # -- inc/dec/push/pop r32 ----------------------------------------------
    if 0x40 <= op <= 0x47:
        return make("inc", Register.gp32(op - 0x40))
    if 0x48 <= op <= 0x4F:
        return make("dec", Register.gp32(op - 0x48))
    if 0x50 <= op <= 0x57:
        return make("push", Register.gp32(op - 0x50))
    if 0x58 <= op <= 0x5F:
        return make("pop", Register.gp32(op - 0x58))

    if op == 0x68:
        imm_off = cur.length
        return make("push", Imm(cur.u32(), 32))
    if op == 0x6A:
        imm_off = cur.length
        return make("push", Imm(cur.u8(), 8))
    if op == 0x69:
        rm, reg = _decode_modrm(cur, 32)
        imm_off = cur.length
        return make("imul", Register.gp32(reg), rm, Imm(cur.u32(), 32))
    if op == 0x6B:
        rm, reg = _decode_modrm(cur, 32)
        imm_off = cur.length
        return make("imul", Register.gp32(reg), rm, Imm(cur.u8(), 8))

    # -- jcc rel8 ------------------------------------------------------------
    if 0x70 <= op <= 0x7F:
        imm_off = cur.length
        rel = cur.s8()
        target = address + cur.length + rel if address is not None else None
        return make(JCC_MNEMONICS[op - 0x70], Rel(rel, 8, target))

    # -- group-1 with immediate ----------------------------------------------
    if op in (0x80, 0x81, 0x83):
        width = 8 if op == 0x80 else 32
        rm, digit = _decode_modrm(cur, width)
        imm_off = cur.length
        if op == 0x81:
            imm = Imm(cur.u32(), 32)
        else:
            imm = Imm(cur.u8(), 8)
        return make(ARITH[digit], rm, imm)

    if op == 0x84:
        rm, reg = _decode_modrm(cur, 8)
        return make("test", rm, Register.gp8(reg))
    if op == 0x85:
        rm, reg = _decode_modrm(cur, 32)
        return make("test", rm, Register.gp32(reg))
    if op == 0x86:
        rm, reg = _decode_modrm(cur, 8)
        return make("xchg", rm, Register.gp8(reg))
    if op == 0x87:
        rm, reg = _decode_modrm(cur, 32)
        return make("xchg", rm, Register.gp32(reg))

    # -- mov -------------------------------------------------------------
    if op == 0x88:
        rm, reg = _decode_modrm(cur, 8)
        return make("mov", rm, Register.gp8(reg))
    if op == 0x89:
        rm, reg = _decode_modrm(cur, 32)
        return make("mov", rm, Register.gp32(reg))
    if op == 0x8A:
        rm, reg = _decode_modrm(cur, 8)
        return make("mov", Register.gp8(reg), rm)
    if op == 0x8B:
        rm, reg = _decode_modrm(cur, 32)
        return make("mov", Register.gp32(reg), rm)
    if op == 0x8D:
        rm, reg = _decode_modrm(cur, 32)
        if not isinstance(rm, Mem):
            raise DecodeError("lea requires a memory operand", offset=offset)
        return make("lea", Register.gp32(reg), rm)
    if op == 0x8F:
        rm, digit = _decode_modrm(cur, 32)
        if digit != 0:
            raise DecodeError(f"bad 0x8f digit {digit}", offset=offset)
        return make("pop", rm)

    if 0x91 <= op <= 0x97:
        return make("xchg", Register.gp32(0), Register.gp32(op - 0x90))

    if op == 0xA8:
        imm_off = cur.length
        return make("test", Register.gp8(0), Imm(cur.u8(), 8))
    if op == 0xA9:
        imm_off = cur.length
        return make("test", Register.gp32(0), Imm(cur.u32(), 32))

    if 0xB0 <= op <= 0xB7:
        imm_off = cur.length
        return make("mov", Register.gp8(op - 0xB0), Imm(cur.u8(), 8))
    if 0xB8 <= op <= 0xBF:
        imm_off = cur.length
        return make("mov", Register.gp32(op - 0xB8), Imm(cur.u32(), 32))

    # -- shift group -------------------------------------------------------
    if op in (0xC0, 0xC1):
        width = 8 if op == 0xC0 else 32
        rm, digit = _decode_modrm(cur, width)
        if digit not in SHIFT_DIGITS:
            raise DecodeError(f"unsupported shift digit {digit}", offset=offset)
        imm_off = cur.length
        return make(SHIFT_DIGITS[digit], rm, Imm(cur.u8(), 8))
    if op in (0xD0, 0xD1):
        width = 8 if op == 0xD0 else 32
        rm, digit = _decode_modrm(cur, width)
        if digit not in SHIFT_DIGITS:
            raise DecodeError(f"unsupported shift digit {digit}", offset=offset)
        return make(SHIFT_DIGITS[digit], rm, Imm(1, 8))
    if op in (0xD2, 0xD3):
        width = 8 if op == 0xD2 else 32
        rm, digit = _decode_modrm(cur, width)
        if digit not in SHIFT_DIGITS:
            raise DecodeError(f"unsupported shift digit {digit}", offset=offset)
        return make(SHIFT_DIGITS[digit], rm, Register.gp8(1))

    if op == 0xC2:
        imm_off = cur.length
        return make("ret", Imm(cur.u16(), 16))
    if op == 0xCA:
        imm_off = cur.length
        return make("retf", Imm(cur.u16(), 16))

    if op == 0xC6:
        rm, digit = _decode_modrm(cur, 8)
        if digit != 0:
            raise DecodeError(f"bad 0xc6 digit {digit}", offset=offset)
        imm_off = cur.length
        return make("mov", rm, Imm(cur.u8(), 8))
    if op == 0xC7:
        rm, digit = _decode_modrm(cur, 32)
        if digit != 0:
            raise DecodeError(f"bad 0xc7 digit {digit}", offset=offset)
        imm_off = cur.length
        return make("mov", rm, Imm(cur.u32(), 32))

    if op == 0xCD:
        imm_off = cur.length
        return make("int", Imm(cur.u8(), 8))

    # -- branches ----------------------------------------------------------
    if op == 0xE8:
        imm_off = cur.length
        rel = cur.s32()
        target = address + cur.length + rel if address is not None else None
        return make("call", Rel(rel, 32, target))
    if op == 0xE9:
        imm_off = cur.length
        rel = cur.s32()
        target = address + cur.length + rel if address is not None else None
        return make("jmp", Rel(rel, 32, target))
    if op == 0xEB:
        imm_off = cur.length
        rel = cur.s8()
        target = address + cur.length + rel if address is not None else None
        return make("jmp", Rel(rel, 8, target))

    # -- group 3 -------------------------------------------------------------
    if op in (0xF6, 0xF7):
        width = 8 if op == 0xF6 else 32
        rm, digit = _decode_modrm(cur, width)
        if digit not in GRP3_DIGITS or digit == 1:
            raise DecodeError(f"bad group-3 digit {digit}", offset=offset)
        mnemonic = GRP3_DIGITS[digit]
        if mnemonic == "test":
            imm_off = cur.length
            imm = Imm(cur.u8(), 8) if width == 8 else Imm(cur.u32(), 32)
            return make("test", rm, imm)
        return make(mnemonic, rm)

    # -- group 4/5 -----------------------------------------------------------
    if op == 0xFE:
        rm, digit = _decode_modrm(cur, 8)
        if digit == 0:
            return make("inc", rm)
        if digit == 1:
            return make("dec", rm)
        raise DecodeError(f"bad group-4 digit {digit}", offset=offset)
    if op == 0xFF:
        rm, digit = _decode_modrm(cur, 32)
        if digit not in GRP5_DIGITS:
            raise DecodeError(f"bad group-5 digit {digit}", offset=offset)
        return make(GRP5_DIGITS[digit], rm)

    # -- decode-only opcodes for realistic unaligned-decode density --------
    if op == 0x62:  # bound r32, m
        rm, reg = _decode_modrm(cur, 32)
        if not isinstance(rm, Mem):
            raise DecodeError("bound requires memory operand", offset=offset)
        return make("bound", Register.gp32(reg), rm)
    if op == 0x63:  # arpl r/m16, r16
        rm, reg = _decode_modrm(cur, 16)
        return make("arpl", rm, Register.gp16(reg))
    if op in (0x8C, 0x8E):  # mov r/m, sreg and mov sreg, r/m
        rm, reg = _decode_modrm(cur, 32)
        if reg > 5:
            raise DecodeError("bad segment register", offset=offset)
        return make("mov_seg", rm)
    if op == 0x9A:  # call far ptr16:32
        cur.u32()
        cur.u16()
        return make("callf")
    if op == 0xA0:  # mov al, [moffs32]
        addr = cur.u32()
        return make("mov", Register.gp8(0), Mem(disp=addr, width=8))
    if op == 0xA1:  # mov eax, [moffs32]
        addr = cur.u32()
        return make("mov", Register.gp32(0), Mem(disp=addr, width=32))
    if op == 0xA2:
        addr = cur.u32()
        return make("mov", Mem(disp=addr, width=8), Register.gp8(0))
    if op == 0xA3:
        addr = cur.u32()
        return make("mov", Mem(disp=addr, width=32), Register.gp32(0))
    if op == 0xC4:  # les r32, m
        rm, reg = _decode_modrm(cur, 32)
        if not isinstance(rm, Mem):
            raise DecodeError("les requires memory operand", offset=offset)
        return make("les", Register.gp32(reg), rm)
    if op == 0xC5:  # lds r32, m
        rm, reg = _decode_modrm(cur, 32)
        if not isinstance(rm, Mem):
            raise DecodeError("lds requires memory operand", offset=offset)
        return make("lds", Register.gp32(reg), rm)
    if op == 0xC8:  # enter imm16, imm8
        size = cur.u16()
        nesting = cur.u8()
        return make("enter", Imm(size, 16), Imm(nesting, 8))
    if op == 0xCF:
        return make("iretd")
    if op == 0xD4:
        imm_off = cur.length
        return make("aam", Imm(cur.u8(), 8))
    if op == 0xD5:
        imm_off = cur.length
        return make("aad", Imm(cur.u8(), 8))
    if op == 0xD6:
        return make("salc")
    if op == 0xD7:
        return make("xlat")
    if 0xD8 <= op <= 0xDF:  # x87: decoded generically, never executed
        _rm, _reg = _decode_modrm(cur, 32)
        return make("fpu")
    if 0xE0 <= op <= 0xE3:  # loopne/loope/loop/jecxz rel8
        mnemonic = ("loopne", "loope", "loop", "jecxz")[op - 0xE0]
        imm_off = cur.length
        rel = cur.s8()
        target = address + cur.length + rel if address is not None else None
        return make(mnemonic, Rel(rel, 8, target))
    if op in (0xE4, 0xE5):  # in al/eax, imm8
        imm_off = cur.length
        return make("in", Imm(cur.u8(), 8))
    if op in (0xE6, 0xE7):  # out imm8, al/eax
        imm_off = cur.length
        return make("out", Imm(cur.u8(), 8))
    if op == 0xEA:  # jmp far ptr16:32
        cur.u32()
        cur.u16()
        return make("jmpf")
    if op in (0xEC, 0xED):
        return make("in")
    if op in (0xEE, 0xEF):
        return make("out")

    # -- two-byte escape -----------------------------------------------------
    if op == 0x0F:
        op2 = cur.u8()
        if 0x40 <= op2 <= 0x4F:  # cmovcc r32, r/m32
            rm, reg = _decode_modrm(cur, 32)
            return make("cmov" + CC_NAMES[op2 - 0x40], Register.gp32(reg), rm)
        if op2 == 0x31:
            return make("rdtsc")
        if op2 == 0xA2:
            return make("cpuid")
        if op2 == 0xA3:
            rm, reg = _decode_modrm(cur, 32)
            return make("bt", rm, Register.gp32(reg))
        if op2 == 0xAB:
            rm, reg = _decode_modrm(cur, 32)
            return make("bts", rm, Register.gp32(reg))
        if op2 == 0xB3:
            rm, reg = _decode_modrm(cur, 32)
            return make("btr", rm, Register.gp32(reg))
        if op2 == 0xBB:
            rm, reg = _decode_modrm(cur, 32)
            return make("btc", rm, Register.gp32(reg))
        if op2 in (0xA4, 0xAC):  # shld/shrd r/m32, r32, imm8
            rm, reg = _decode_modrm(cur, 32)
            imm_off = cur.length
            mnemonic = "shld" if op2 == 0xA4 else "shrd"
            return make(mnemonic, rm, Register.gp32(reg), Imm(cur.u8(), 8))
        if 0xC8 <= op2 <= 0xCF:
            return make("bswap", Register.gp32(op2 - 0xC8))
        if op2 == 0xB7:
            rm, reg = _decode_modrm(cur, 16)
            return make("movzx", Register.gp32(reg), rm)
        if op2 == 0xBF:
            rm, reg = _decode_modrm(cur, 16)
            return make("movsx", Register.gp32(reg), rm)
        if 0x80 <= op2 <= 0x8F:
            imm_off = cur.length
            rel = cur.s32()
            target = address + cur.length + rel if address is not None else None
            return make(JCC_MNEMONICS[op2 - 0x80], Rel(rel, 32, target))
        if 0x90 <= op2 <= 0x9F:
            rm, _digit = _decode_modrm(cur, 8)
            return make(SETCC_MNEMONICS[op2 - 0x90], rm)
        if op2 == 0xAF:
            rm, reg = _decode_modrm(cur, 32)
            return make("imul", Register.gp32(reg), rm)
        if op2 == 0xB6:
            rm, reg = _decode_modrm(cur, 8)
            return make("movzx", Register.gp32(reg), rm)
        if op2 == 0xBE:
            rm, reg = _decode_modrm(cur, 8)
            return make("movsx", Register.gp32(reg), rm)
        raise DecodeError(f"unsupported two-byte opcode 0f {op2:02x}", offset=offset)

    raise DecodeError(f"unsupported opcode {op:02x}", offset=offset)


def _decode16(data: bytes, offset: int, address: Optional[int]) -> Instruction:
    """Decode the 16-bit (0x66-prefixed) operand subset.

    Only the forms that matter for unaligned-decode density are covered;
    anything else raises.  The address passed in is the post-prefix one.
    """
    cur = _Cursor(data, offset)
    op = cur.u8()
    imm_off = None

    def make(mnemonic, *operands) -> Instruction:
        return Instruction(
            mnemonic, operands, raw=cur.raw(), address=address, imm_offset=imm_off
        )

    if op < 0x40 and (op & 7) in (1, 3, 5):
        mnemonic = ARITH[op >> 3]
        form = op & 7
        if form == 1:
            rm, reg = _decode_modrm(cur, 16)
            return make(mnemonic, rm, Register.gp16(reg))
        if form == 3:
            rm, reg = _decode_modrm(cur, 16)
            return make(mnemonic, Register.gp16(reg), rm)
        imm_off = cur.length
        return make(mnemonic, Register.gp16(0), Imm(cur.u16(), 16))
    if 0x40 <= op <= 0x47:
        return make("inc", Register.gp16(op - 0x40))
    if 0x48 <= op <= 0x4F:
        return make("dec", Register.gp16(op - 0x48))
    if 0x50 <= op <= 0x57:
        return make("push", Register.gp16(op - 0x50))
    if 0x58 <= op <= 0x5F:
        return make("pop", Register.gp16(op - 0x58))
    if op == 0x68:
        imm_off = cur.length
        return make("push", Imm(cur.u16(), 16))
    if op in (0x81, 0x83):
        rm, digit = _decode_modrm(cur, 16)
        imm_off = cur.length
        imm = Imm(cur.u16(), 16) if op == 0x81 else Imm(cur.u8(), 8)
        return make(ARITH[digit], rm, imm)
    if op == 0x85:
        rm, reg = _decode_modrm(cur, 16)
        return make("test", rm, Register.gp16(reg))
    if op == 0x87:
        rm, reg = _decode_modrm(cur, 16)
        return make("xchg", rm, Register.gp16(reg))
    if op == 0x89:
        rm, reg = _decode_modrm(cur, 16)
        return make("mov", rm, Register.gp16(reg))
    if op == 0x8B:
        rm, reg = _decode_modrm(cur, 16)
        return make("mov", Register.gp16(reg), rm)
    if op == 0x90:
        return make("nop")
    if 0xB8 <= op <= 0xBF:
        imm_off = cur.length
        return make("mov", Register.gp16(op - 0xB8), Imm(cur.u16(), 16))
    if op == 0xC7:
        rm, digit = _decode_modrm(cur, 16)
        if digit != 0:
            raise DecodeError(f"bad 0x66 c7 digit {digit}", offset=offset)
        imm_off = cur.length
        return make("mov", rm, Imm(cur.u16(), 16))
    raise DecodeError(f"unsupported 16-bit opcode {op:02x}", offset=offset)


#: Bump when decode semantics change: stale cached decode results keyed
#: under an older version can then never be confused with current ones.
DECODER_VERSION = 1


def decode_all_cached(
    data: bytes, address: int = 0, stop_on_error: bool = False
) -> List[Instruction]:
    """Content-addressed :func:`decode_all`.

    Keyed on the exact input bytes (plus address and error mode), so two
    distinct encodings can never alias — equal keys imply equal inputs.
    The cached instruction list is shared; callers receive a fresh list
    but must not mutate the instructions themselves (the emulator's
    lazy ``cycle_cost`` memoization is the one sanctioned exception —
    it is idempotent for a given instruction).
    """
    from ..cache import content_key, get_cache

    cache = get_cache("decode")
    if cache is None:
        return decode_all(data, address=address, stop_on_error=stop_on_error)
    key = content_key(
        "decode_all", DECODER_VERSION, bytes(data), address, stop_on_error
    )
    return list(
        cache.get_or_compute(
            key,
            lambda: decode_all(data, address=address, stop_on_error=stop_on_error),
        )
    )


def decode_all(
    data: bytes, address: int = 0, stop_on_error: bool = False
) -> List[Instruction]:
    """Linearly disassemble ``data`` starting at virtual ``address``.

    Args:
        data: the code bytes.
        address: virtual address of ``data[0]``.
        stop_on_error: if true, stop quietly at the first undecodable
            byte; otherwise propagate :class:`DecodeError`.
    """
    out = []
    offset = 0
    while offset < len(data):
        try:
            insn = decode(data, offset, address + offset)
        except DecodeError:
            if stop_on_error:
                break
            raise
        out.append(insn)
        offset += insn.length
    return out


def iter_decode(data: bytes, address: int = 0) -> Iterator[Instruction]:
    """Yield instructions linearly; raises DecodeError on bad bytes."""
    offset = 0
    while offset < len(data):
        insn = decode(data, offset, address + offset)
        yield insn
        offset += insn.length
