"""The content-addressed cache engine: keys, tiers, counters."""

import os
import pickle

import pytest

from repro import telemetry
from repro.cache import (
    ContentCache,
    DiskTier,
    LRUTier,
    cache_manager,
    cache_session,
    content_key,
    get_cache,
)
from repro.core import ProtectConfig


# ----------------------------------------------------------------------
# content_key: canonical framing
# ----------------------------------------------------------------------


def test_content_key_is_deterministic():
    assert content_key(b"abc", 1, "x") == content_key(b"abc", 1, "x")


def test_content_key_concatenation_cannot_alias():
    assert content_key(b"ab", b"c") != content_key(b"a", b"bc")
    assert content_key("ab", "c") != content_key("a", "bc")


def test_content_key_types_cannot_alias():
    parts = [b"1", "1", 1, 1.0, True, None]
    keys = [content_key(p) for p in parts]
    assert len(set(keys)) == len(keys)


def test_content_key_nesting_cannot_alias():
    assert content_key(1, 2, 3) != content_key((1, 2), 3)
    assert content_key((1, 2), 3) != content_key(1, (2, 3))


def test_content_key_bool_is_not_int():
    # bool is an int subclass; the framing must still distinguish them
    assert content_key(True) != content_key(1)
    assert content_key(False) != content_key(0)


def test_content_key_rejects_unframeable_types():
    with pytest.raises(TypeError):
        content_key({"a": 1})


def test_content_key_accepts_memoryview_and_bytearray():
    assert (
        content_key(b"xyz")
        == content_key(bytearray(b"xyz"))
        == content_key(memoryview(b"xyz"))
    )


# ----------------------------------------------------------------------
# content_key: sensitivity to real pipeline inputs
# ----------------------------------------------------------------------


def test_one_byte_image_change_changes_fingerprint(small_wget):
    image = small_wget.image
    mutated = image.clone()
    mutated.text.data[0] ^= 0xFF
    assert image.fingerprint() != mutated.fingerprint()
    assert content_key("protect", image.fingerprint()) != content_key(
        "protect", mutated.fingerprint()
    )


def test_image_fingerprint_ignores_metadata(small_wget):
    image = small_wget.image.clone()
    before = image.fingerprint()
    image.metadata["scratch"] = "noise"
    assert image.fingerprint() == before


def test_config_change_changes_cache_key():
    base = ProtectConfig(seed=1)
    keys = {
        content_key(cfg.cache_key())
        for cfg in (
            base,
            ProtectConfig(seed=2),
            ProtectConfig(seed=1, strategy="rc4"),
            ProtectConfig(seed=1, guard_chains=True),
            ProtectConfig(seed=1, verification_functions=["digest_wget"]),
        )
    }
    assert len(keys) == 5
    assert content_key(base.cache_key()) == content_key(
        ProtectConfig(seed=1).cache_key()
    )


# ----------------------------------------------------------------------
# LRU tier
# ----------------------------------------------------------------------


def test_lru_evicts_least_recently_used():
    tier = LRUTier(max_entries=2)
    tier.put("a", 1)
    tier.put("b", 2)
    tier.put("c", 3)  # evicts a
    assert "a" not in tier
    tier.get("b")  # refresh b
    tier.put("d", 4)  # evicts c, not b
    assert "c" not in tier
    assert "b" in tier and "d" in tier


def test_lru_rejects_zero_capacity():
    with pytest.raises(ValueError):
        LRUTier(max_entries=0)


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------


def test_disk_tier_roundtrip_across_managers(tmp_path):
    key = content_key("roundtrip")
    with cache_session(cache_dir=str(tmp_path)) as manager:
        manager.get("unit").put(key, {"answer": 42})
        assert manager.disk.entry_count("unit") == 1
    # a fresh manager on the same directory sees the entry (new memory tier)
    with cache_session(cache_dir=str(tmp_path)) as manager:
        hit, value = manager.get("unit").get(key)
    assert hit and value == {"answer": 42}


def test_disk_tier_treats_corrupt_entries_as_misses(tmp_path):
    disk = DiskTier(str(tmp_path))
    key = content_key("corrupt")
    disk.put_blob("unit", key, pickle.dumps("fine"))
    path = disk._path("unit", key)
    with open(path, "wb") as fh:
        fh.write(b"\x80garbage-not-a-pickle")
    cache = ContentCache("unit", disk=disk)
    hit, value = cache.get(key)
    assert not hit and value is None
    # and the entry can be overwritten afterwards
    cache.put(key, "recovered")
    with cache_session(cache_dir=str(tmp_path)) as manager:
        hit, value = manager.get("unit").get(key)
    assert hit and value == "recovered"


def test_disk_writes_are_atomic_no_tmp_residue(tmp_path):
    disk = DiskTier(str(tmp_path))
    for i in range(8):
        disk.put_blob("unit", content_key(i), pickle.dumps(i))
    leftovers = [
        name
        for _dir, _sub, files in os.walk(str(tmp_path))
        for name in files
        if name.endswith(".tmp")
    ]
    assert leftovers == []
    assert disk.entry_count("unit") == 8


# ----------------------------------------------------------------------
# ContentCache semantics
# ----------------------------------------------------------------------


def test_store_blobs_hits_return_fresh_objects():
    cache = ContentCache("unit", store_blobs=True)
    value = {"nested": [1, 2, 3]}
    cache.put("k", value)
    _, first = cache.get("k")
    _, second = cache.get("k")
    assert first == value == second
    assert first is not value and first is not second
    first["nested"].append(4)  # mutating a hit must not poison the cache
    _, third = cache.get("k")
    assert third == value


def test_plain_cache_hits_return_same_object():
    cache = ContentCache("unit")
    value = object()
    cache.put("k", value)
    _, got = cache.get("k")
    assert got is value


def test_get_or_compute_computes_once():
    cache = ContentCache("unit")
    calls = []

    def compute():
        calls.append(1)
        return "value"

    assert cache.get_or_compute("k", compute) == "value"
    assert cache.get_or_compute("k", compute) == "value"
    assert len(calls) == 1


def test_cached_none_is_a_hit():
    cache = ContentCache("unit")
    cache.put("k", None)
    hit, value = cache.get("k")
    assert hit and value is None


# ----------------------------------------------------------------------
# Manager configuration
# ----------------------------------------------------------------------


def test_disabled_caching_returns_no_cache():
    with cache_session(enabled=False):
        assert get_cache("protect") is None


def test_decode_namespace_is_memory_only(tmp_path):
    with cache_session(cache_dir=str(tmp_path)) as manager:
        decode = manager.get("decode")
        decode.put(content_key("insns"), ["fake"])
        assert manager.disk.entry_count("decode") == 0
        other = manager.get("gadgets")
        other.put(content_key("insns"), ["fake"])
        assert manager.disk.entry_count("gadgets") == 1


def test_cache_session_restores_previous_manager(tmp_path):
    before = cache_manager()
    with cache_session(cache_dir=str(tmp_path)):
        assert cache_manager() is not before
    assert cache_manager() is before


# ----------------------------------------------------------------------
# Metrics integration
# ----------------------------------------------------------------------


def test_cache_counters_track_hits_misses_stores():
    with telemetry.telemetry_session(metrics=True) as (metrics, _tracer):
        with cache_session():
            cache = get_cache("unit")
            cache.get("missing")
            cache.put("k", 1)
            cache.get("k")
            cache.get("k")
        samples = metrics.to_dict()
    assert samples["cache.unit.misses"]["value"] == 1
    assert samples["cache.unit.stores"]["value"] == 1
    assert samples["cache.unit.hits"]["value"] == 2
    assert samples["cache.unit.memory_hits"]["value"] == 2
