"""Differential property: the memoized scanner ≡ the reference finder.

``find_gadgets_in_bytes`` (memoized single-pass scanner) must produce
*identical* gadget sets — address, end, classification, stack shape,
raw instruction bytes — to ``reference_find_gadgets_in_bytes`` (the
original exhaustive finder, kept in-tree as the oracle) on every input,
and must publish identical telemetry counter values.

The Hypothesis strategies are seeded with the adversarial shapes the
memo table has to get right:

* ``ret imm16`` truncated at / terminating exactly on the buffer end;
* rets within ``MAX_LOOKBACK_BYTES`` of offset 0 (clamped windows);
* dense runs of ret opcodes whose lookback windows overlap heavily
  (the memo-reuse hot case — and where a chain can terminate at a
  *different* return than the window under scan);
* ``include_far`` on and off, including the corner where a far-return
  chain's end coincides with a near-ret window's end;
* prefix-dense streams (segment/rep/operand-size prefixes) that make
  decode lengths irregular.
"""

import random

from hypothesis import example, given, settings, strategies as st

from repro.gadgets.finder import (
    MAX_LOOKBACK_BYTES,
    find_gadgets_in_bytes,
    reference_find_gadgets_in_bytes,
)
from repro.telemetry import MetricsRegistry, set_metrics

RET, RET_IMM16, RETF, RETF_IMM16 = 0xC3, 0xC2, 0xCB, 0xCA

#: Byte alphabet biased toward interesting encodings: ret family,
#: prefixes, pop/mov/arith opcodes, modrm bytes.
_INTERESTING = [
    RET, RET_IMM16, RETF, RETF_IMM16,
    0x58, 0x59, 0x5B, 0x5D,              # pop r32
    0x89, 0x8B, 0x01, 0x03, 0x31, 0x29,  # mov/add/xor/sub r/m forms
    0x90, 0xF7, 0xFF, 0x6A, 0x68,        # nop, grp3, grp5, push imm
    0x66, 0x26, 0x2E, 0x3E, 0x64, 0xF0, 0xF2, 0xF3,  # prefixes
    0x00, 0xC0, 0xD8, 0xE8, 0x04, 0x24, 0x45, 0x85,  # modrm/disp bytes
]

_byte = st.sampled_from(_INTERESTING) | st.integers(0, 255)
_buffers = st.lists(_byte, min_size=0, max_size=160).map(bytes)


def _counters(fn, data, **kwargs):
    """Run ``fn`` under a private registry; return (gadgets, counters)."""
    registry = MetricsRegistry(enabled=True)
    previous = set_metrics(registry)
    try:
        gadgets = fn(data, **kwargs)
    finally:
        set_metrics(previous)
    samples = registry.to_dict()
    return gadgets, {
        name: samples[name]["value"]
        for name in (
            "gadgets.offsets_scanned",
            "gadgets.accepted",
            "gadgets.rejected",
        )
        if name in samples
    }


def fingerprint(gadgets):
    return sorted(
        (
            g.address,
            g.end,
            g.kind.key(),
            g.stack_words,
            g.far,
            g.ret_imm,
            g.synthetic,
            tuple(i.raw.hex() for i in g.instructions),
        )
        for g in gadgets
    )


def assert_equivalent(data, base=0x1000, max_insns=6, include_far=True):
    opt, opt_counts = _counters(
        find_gadgets_in_bytes, data,
        base=base, max_insns=max_insns, include_far=include_far,
    )
    ref, ref_counts = _counters(
        reference_find_gadgets_in_bytes, data,
        base=base, max_insns=max_insns, include_far=include_far,
    )
    assert fingerprint(opt) == fingerprint(ref), data.hex()
    # The optimized scanner batches counter updates but must publish the
    # exact values the reference accumulates one inc() at a time.
    assert opt_counts == ref_counts, (data.hex(), opt_counts, ref_counts)
    # Sorted-by-address output order is part of the contract.
    assert [g.address for g in opt] == sorted(g.address for g in opt)


@given(data=_buffers, include_far=st.booleans())
@settings(max_examples=120, deadline=None)
# ret imm16 truncated at the buffer end (no room for its immediate)...
@example(data=bytes([0x58, RET_IMM16]), include_far=True)
@example(data=bytes([0x58, RET_IMM16, 0x04]), include_far=True)
# ...and terminating exactly on it.
@example(data=bytes([0x58, RET_IMM16, 0x04, 0x00]), include_far=True)
# rets within MAX_LOOKBACK_BYTES of offset 0: the window clamps at 0.
@example(data=bytes([RET]), include_far=True)
@example(data=bytes([0x90, RET, 0x90, RET]), include_far=False)
# overlapping ret windows: every byte is a terminator.
@example(data=bytes([RET] * 12), include_far=True)
@example(data=bytes([RET_IMM16, 0x01, 0x00] * 6), include_far=True)
# far/near end-coincidence: "retf imm16" at i ends where "ret" at i+2
# ends, so the far chain satisfies the near window's end check even
# with include_far=False — the scanner must reproduce that corner.
@example(data=bytes([0x58, RETF_IMM16, 0x00, RET]), include_far=False)
@example(data=bytes([0x58, RETF_IMM16, 0x00, RET]), include_far=True)
# prefix-dense streams: irregular decode lengths across the window.
@example(data=bytes([0x66, 0x26, 0xF3, 0x90] * 8 + [RET]), include_far=True)
@example(data=bytes([0x66, RET_IMM16, 0x66, RETF, 0x2E, RET] * 5),
         include_far=True)
def test_scanner_equals_reference(data, include_far):
    assert_equivalent(data, include_far=include_far)


@given(data=_buffers, max_insns=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
@example(data=bytes([0x90] * 8 + [RET]), max_insns=6)
@example(data=bytes([0x58] * 7 + [RET]), max_insns=8)
def test_scanner_equals_reference_across_length_bounds(data, max_insns):
    assert_equivalent(data, max_insns=max_insns)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_scanner_equals_reference_on_ret_salted_streams(seed):
    """Random streams salted with ret-family bytes every few positions,
    so nearly every lookback window overlaps several others."""
    rng = random.Random(seed)
    chunks = []
    for _ in range(rng.randrange(1, 24)):
        chunks.append(bytes(rng.randrange(256) for _ in range(rng.randrange(0, 7))))
        chunks.append(bytes([rng.choice([RET, RET_IMM16, RETF, RETF_IMM16])]))
    data = b"".join(chunks)
    assert_equivalent(data, include_far=bool(seed & 1))


def test_window_clamp_near_offset_zero():
    """A ret closer to offset 0 than MAX_LOOKBACK_BYTES must still
    yield its gadgets (the window clamps instead of going negative)."""
    data = bytes([0x58, 0xC3])  # pop eax; ret at offsets 0/1
    assert len(data) < MAX_LOOKBACK_BYTES
    opt = find_gadgets_in_bytes(data, base=0)
    ref = reference_find_gadgets_in_bytes(data, base=0)
    assert fingerprint(opt) == fingerprint(ref)
    assert {g.address for g in opt} == {0, 1}
