"""Binary rewriting: the §IV-B rules, coverage measurement, application."""

from .apply import ImmediateSplitter, plant_ret_byte, plant_ret_byte_add
from .engine import AnalysisResult, RewriteEngine
from .report import (
    FIG6_RULES,
    ProtectabilityReport,
    RULE_ANY,
    RULE_FAR,
    RULE_IMM,
    RULE_JUMP,
    RULE_NEAR,
    RuleCoverage,
    format_fig6_table,
)
from .rules import (
    ExistingGadgetRule,
    FarReturnRule,
    ImmediateCandidate,
    ImmediateModificationRule,
    JumpCandidate,
    JumpOffsetRule,
    SpuriousInstructionRule,
)

__all__ = [
    "ImmediateSplitter", "plant_ret_byte", "plant_ret_byte_add",
    "AnalysisResult", "RewriteEngine",
    "FIG6_RULES", "ProtectabilityReport", "RuleCoverage",
    "RULE_ANY", "RULE_FAR", "RULE_IMM", "RULE_JUMP", "RULE_NEAR",
    "format_fig6_table",
    "ExistingGadgetRule", "FarReturnRule",
    "ImmediateCandidate", "ImmediateModificationRule",
    "JumpCandidate", "JumpOffsetRule", "SpuriousInstructionRule",
]
