"""Metrics registry: counters, gauges, histograms, wall-clock timers.

The registry is the machine-readable counterpart of the ad-hoc
``summary()``/``report()`` strings scattered through the pipeline.  All
instruments are cheap dictionaries of plain numbers; exporting them is
a single JSON dump, so every benchmark and CLI run can leave a metrics
artifact behind.

Design constraints (see DESIGN.md §Observability):

* **No-op fast path.**  A disabled registry hands out shared null
  instruments whose methods do nothing, so instrumented code pays one
  attribute call and nothing else.  The process-wide default registry
  starts *disabled*; :func:`configure` switches it on.
* **Monotonic timing.**  Timers use :func:`time.perf_counter`, never
  wall-clock time, so measured durations cannot go backwards.
* **Explicit buckets.**  Histograms take explicit upper bounds
  (``le`` semantics, like Prometheus): an observation lands in the
  first bucket whose bound is >= the value, else in the +Inf overflow.
* **Labels.**  Every accessor takes an optional ``labels`` mapping
  (request id, tenant, engine, attack cell...).  Series with the same
  name but different label sets are independent instruments in one
  *family*; a per-family **cardinality guard** collapses runaway label
  sets into a single ``{overflow="true"}`` series instead of letting
  an unbounded attribute (say, a gadget address) eat the process.
  A registry can carry ``base_labels`` that are stamped onto every
  instrument it hands out — the mechanism request-scoped
  :class:`~repro.telemetry.context.TelemetryContext` child registries
  use so their samples merge into the global registry under the
  request's labels.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TIMER",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "format_series",
]

#: Default histogram buckets for durations in seconds (1µs .. 30s).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Default buckets for size-ish quantities (words, bytes, counts).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)

#: Default buckets for emulated-cycle latencies (detection latency
#: spans from "next gadget dispatch" to "most of the run").
DEFAULT_CYCLE_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
)

#: Default cap on distinct label sets per metric family; overridable
#: per registry or via ``REPRO_METRICS_MAX_SERIES``.
DEFAULT_MAX_SERIES = 64

#: Name of the counter bumped every time the cardinality guard trips.
CARDINALITY_OVERFLOW_COUNTER = "telemetry.cardinality.overflow"

#: The label set runaway series are collapsed into.
OVERFLOW_LABELS: Dict[str, str] = {"overflow": "true"}

LabelKey = Tuple[Tuple[str, str], ...]


def _ensure_parent_dir(path: str) -> None:
    """Create the parent directory of ``path`` if it is missing, so a
    long run never fails at export time over an absent output dir."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def _normalize_labels(labels: Optional[Mapping]) -> Dict[str, str]:
    """Coerce a label mapping to ``str -> str``, rejecting reserved names."""
    if not labels:
        return {}
    out: Dict[str, str] = {}
    for key, value in labels.items():
        key = str(key)
        if key == "le":
            raise ValueError("label name 'le' is reserved for histograms")
        out[key] = str(value)
    return out


def format_series(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value", "labels")

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.value = 0
        self.labels: Dict[str, str] = dict(labels or {})

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    @property
    def series_key(self) -> str:
        return format_series(self.name, self.labels)

    def to_dict(self) -> dict:
        sample = {"type": "counter", "name": self.name, "value": self.value}
        if self.labels:
            sample["labels"] = dict(self.labels)
        return sample

    def __repr__(self) -> str:
        return f"<Counter {self.series_key}={self.value}>"


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value", "labels")

    def __init__(self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels: Dict[str, str] = dict(labels or {})

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    @property
    def series_key(self) -> str:
        return format_series(self.name, self.labels)

    def to_dict(self) -> dict:
        sample = {"type": "gauge", "name": self.name, "value": self.value}
        if self.labels:
            sample["labels"] = dict(self.labels)
        return sample

    def __repr__(self) -> str:
        return f"<Gauge {self.series_key}={self.value}>"


class Histogram:
    """Distribution with explicit bucket upper bounds (``le`` semantics).

    ``le`` semantics means each bound is an *inclusive upper* bound,
    exactly like Prometheus: an observation ``v`` lands in the first
    bucket with ``v <= bound``.  Unlike Prometheus exports, the
    internal ``counts`` are **not cumulative** — ``counts[i]`` holds
    only observations that fit ``buckets[i]`` and no earlier bound,
    and the final extra slot is the +Inf overflow.  (Exporters that
    need Prometheus's cumulative series build a running sum.)

    Alongside ``sum`` the histogram tracks ``sum_sq`` (the sum of
    squared observations) so exports can derive a streaming standard
    deviation without retaining samples.
    """

    __slots__ = (
        "name",
        "help",
        "buckets",
        "counts",
        "count",
        "sum",
        "sum_sq",
        "min",
        "max",
        "labels",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.labels: Dict[str, str] = dict(labels or {})

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.sum_sq += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation from the streaming moments."""
        if not self.count:
            return 0.0
        mean = self.sum / self.count
        variance = self.sum_sq / self.count - mean * mean
        # Floating-point cancellation can push tiny variances negative.
        return variance ** 0.5 if variance > 0.0 else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from bucket counts.

        Linear interpolation inside the bucket that holds the target
        rank, like Prometheus's ``histogram_quantile``: observations
        are assumed uniform between a bucket's lower and upper bound.
        The +Inf overflow bucket and the extreme buckets are clamped
        to the tracked ``min``/``max``, so estimates never leave the
        observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min if self.min is not None else 0.0
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            in_bucket = self.counts[index]
            if cumulative + in_bucket >= target:
                lower = self.buckets[index - 1] if index else (
                    self.min if self.min is not None else 0.0
                )
                lower = min(lower, bound)
                fraction = (target - cumulative) / in_bucket
                estimate = lower + (bound - lower) * fraction
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += in_bucket
        # Target rank lies in the +Inf overflow: the best bound we have
        # is the largest observation.
        return self.max if self.max is not None else self.buckets[-1]

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) pairs; the last bound is +Inf."""
        pairs = list(zip(self.buckets, self.counts))
        pairs.append((float("inf"), self.counts[-1]))
        return pairs

    @property
    def series_key(self) -> str:
        return format_series(self.name, self.labels)

    def to_dict(self) -> dict:
        sample = {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "sum_sq": self.sum_sq,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "stddev": self.stddev,
            "buckets": [
                {"le": bound if bound != float("inf") else "+Inf", "count": n}
                for bound, n in self.bucket_counts()
            ],
        }
        if self.labels:
            sample["labels"] = dict(self.labels)
        return sample

    def __repr__(self) -> str:
        return f"<Histogram {self.series_key} n={self.count} mean={self.mean:.3g}>"


class Timer:
    """Wall-clock timer over a histogram of seconds.

    Usable three ways::

        with registry.timer("protect.duration"):
            ...
        @registry.timer("find_gadgets.duration")
        def find(...): ...
        t = registry.timer("x"); handle = t.start(); ... ; handle.stop()

    All measurements use the monotonic :func:`time.perf_counter`.
    """

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._start: Optional[float] = None

    @property
    def name(self) -> str:
        return self.histogram.name

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"timer {self.name} was never started")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.histogram.observe(elapsed)
        return elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __call__(self, func: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                self.histogram.observe(time.perf_counter() - start)

        wrapper.__name__ = getattr(func, "__name__", "wrapped")
        wrapper.__doc__ = func.__doc__
        return wrapper


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def start(self) -> "Timer":
        return self

    def stop(self) -> float:
        return 0.0

    def __call__(self, func: Callable) -> Callable:
        return func


#: Shared no-op instruments handed out by disabled registries.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", buckets=(1.0,))
NULL_TIMER = _NullTimer(NULL_HISTOGRAM)


class MetricsRegistry:
    """Names (+ label sets) -> instruments, with JSON/JSONL export.

    Instruments are created on first use and aggregated for the life of
    the registry; re-requesting a name (and label set) returns the same
    instrument.  A disabled registry returns the shared null instruments
    and records nothing.

    ``base_labels`` are merged under every accessor's ``labels`` — the
    scoped child registries of
    :class:`repro.telemetry.context.TelemetryContext` use this to stamp
    a request's label set on everything recorded inside the context.

    ``max_series`` bounds the number of *labeled* series per family;
    the first label set past the cap (and every one after it) collapses
    into a shared ``{overflow="true"}`` series and bumps the
    ``telemetry.cardinality.overflow`` counter, so an unbounded label
    value cannot grow the registry without bound.
    """

    def __init__(
        self,
        enabled: bool = True,
        base_labels: Optional[Mapping[str, str]] = None,
        max_series: Optional[int] = None,
    ):
        self.enabled = enabled
        self.base_labels: Dict[str, str] = _normalize_labels(base_labels)
        if max_series is None:
            max_series = int(
                os.environ.get("REPRO_METRICS_MAX_SERIES", DEFAULT_MAX_SERIES)
            )
        if max_series < 1:
            raise ValueError("max_series must be >= 1")
        self.max_series = max_series
        #: family name -> {label key -> instrument}
        self._families: Dict[str, Dict[LabelKey, object]] = {}

    # -- instrument accessors ------------------------------------------

    def _series(self, name: str, cls, labels, make):
        """Find-or-create one series, applying base labels and the
        per-family cardinality guard."""
        if self.base_labels:
            effective = dict(self.base_labels)
            if labels:
                effective.update(_normalize_labels(labels))
        else:
            effective = _normalize_labels(labels)
        key: LabelKey = tuple(sorted(effective.items()))
        family = self._families.get(name)
        if family is None:
            family = self._families.setdefault(name, {})
        instrument = family.get(key)
        if instrument is None:
            if key and len(family) >= self.max_series:
                # Cardinality guard: collapse the runaway label set.
                self.counter(
                    CARDINALITY_OVERFLOW_COUNTER,
                    help="label sets collapsed by the cardinality guard",
                ).inc()
                effective = dict(OVERFLOW_LABELS)
                key = tuple(sorted(effective.items()))
                instrument = family.get(key)
                if instrument is None:
                    instrument = family.setdefault(key, make(effective))
            else:
                instrument = family.setdefault(key, make(effective))
        if not isinstance(instrument, cls):
            raise TypeError(f"{name} is already a {type(instrument).__name__}")
        return instrument

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping] = None
    ) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._series(
            name, Counter, labels, lambda lb: Counter(name, help, labels=lb)
        )

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping] = None
    ) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._series(
            name, Gauge, labels, lambda lb: Gauge(name, help, labels=lb)
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SIZE_BUCKETS,
        help: str = "",
        labels: Optional[Mapping] = None,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._series(
            name,
            Histogram,
            labels,
            lambda lb: Histogram(name, buckets=buckets, help=help, labels=lb),
        )

    def timer(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Optional[Mapping] = None,
    ) -> Timer:
        if not self.enabled:
            return NULL_TIMER
        return Timer(self.histogram(name, buckets=buckets, labels=labels))

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return sum(len(family) for family in self._families.values())

    def __contains__(self, name: str) -> bool:
        if name in self._families:
            return True
        if "{" in name:
            bare = name.split("{", 1)[0]
            family = self._families.get(bare)
            if family:
                return any(
                    inst.series_key == name for inst in family.values()
                )
        return False

    def get(self, name: str, labels: Optional[Mapping] = None):
        """The instrument for ``name`` and ``labels`` (default: the
        unlabeled series), or ``None``."""
        family = self._families.get(name)
        if not family:
            return None
        effective = dict(self.base_labels)
        effective.update(_normalize_labels(labels))
        return family.get(tuple(sorted(effective.items())))

    def series(self, name: str) -> List[object]:
        """Every instrument in the ``name`` family, label-key order."""
        family = self._families.get(name, {})
        return [family[key] for key in sorted(family)]

    def family_total(self, name: str) -> float:
        """Sum of ``value`` across a counter/gauge family's series.

        The reconciliation primitive: per-request labeled series must
        sum to the same total an unlabeled run would have counted.
        """
        return sum(
            inst.value
            for inst in self._families.get(name, {}).values()
            if isinstance(inst, (Counter, Gauge))
        )

    def names(self) -> List[str]:
        """Sorted series keys (bare names first within a family)."""
        out: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            out.extend(family[key].series_key for key in sorted(family))
        return out

    def reset(self) -> None:
        self._families.clear()

    def to_dict(self) -> dict:
        """Flat ``series key -> sample`` mapping, deterministic order."""
        out: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family):
                instrument = family[key]
                out[instrument.series_key] = instrument.to_dict()
        return out

    # -- merging (parallel pipeline workers, context flushes) ----------

    def merge_samples(
        self,
        samples: Dict[str, dict],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold exported samples (another registry's :meth:`to_dict`)
        into this registry.

        Used by the parallel protection pipeline to combine per-worker
        registries into one, and by telemetry contexts to merge scoped
        child registries into the global one: counters add, gauges take
        the incoming value (workers are merged in deterministic input
        order, so the result is reproducible), histograms add
        per-bucket counts.  ``extra_labels`` are stamped under each
        sample's own labels (the sample's labels win on conflict); the
        receiving registry's ``base_labels`` apply on top as usual.
        A disabled registry ignores merges, matching its accessors.
        """
        if not self.enabled:
            return
        extra = _normalize_labels(extra_labels)
        for key_name, sample in samples.items():
            kind = sample.get("type")
            name = sample.get("name") or key_name.split("{", 1)[0]
            labels = dict(extra)
            labels.update(sample.get("labels") or {})
            if kind == "counter":
                self.counter(name, labels=labels).inc(int(sample["value"]))
            elif kind == "gauge":
                self.gauge(name, labels=labels).set(sample["value"])
            elif kind == "histogram":
                bounds = tuple(
                    float(b["le"]) for b in sample["buckets"] if b["le"] != "+Inf"
                )
                histogram = self.histogram(
                    name, buckets=bounds or (1.0,), labels=labels
                )
                if histogram.buckets != bounds:
                    raise ValueError(
                        f"histogram {key_name}: bucket bounds differ, cannot merge"
                    )
                for index, bucket in enumerate(sample["buckets"]):
                    histogram.counts[index] += bucket["count"]
                histogram.count += sample["count"]
                histogram.sum += sample["sum"]
                histogram.sum_sq += sample.get("sum_sq", 0.0)
                for attr in ("min", "max"):
                    incoming = sample.get(attr)
                    if incoming is None:
                        continue
                    current = getattr(histogram, attr)
                    if current is None:
                        setattr(histogram, attr, incoming)
                    elif attr == "min":
                        setattr(histogram, attr, min(current, incoming))
                    else:
                        setattr(histogram, attr, max(current, incoming))
            else:
                raise ValueError(f"cannot merge sample of type {kind!r}")

    # -- export ---------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def iter_samples(self) -> Iterable[dict]:
        for sample in self.to_dict().values():
            yield sample

    def write_jsonl(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            for sample in self.iter_samples():
                fh.write(json.dumps(sample, sort_keys=True))
                fh.write("\n")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state}, {len(self)} instruments>"
