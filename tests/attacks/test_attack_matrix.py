"""Regression matrix: every §IV-B rewriting rule × every attack class.

Each matrix row picks a chain gadget attributable to one rewriting
rule family; each column tampers with it through a different attack
from :mod:`repro.attacks`.  Every active cell must (a) corrupt the
chain — the protected program malfunctions — and (b) let the chain
tracer name the corrupted gadget (or the divergence point, for chain
replacement).

Rule families the current protector provably exercises (existing
near-ret gadgets in ``.text``, spurious inserted gadgets in
``.gadgets``) always run; families the chain does not currently draw
from (far rets, immediate- and jump-encoded gadgets) self-skip, so the
matrix tightens automatically if the protector starts using them.
"""

import struct

import pytest

from repro.attacks import run_with_restore_attack
from repro.attacks.patching import corrupt_byte
from repro.rewrite import RewriteEngine
from repro.rewrite.report import FIG6_RULES, RULE_FAR, RULE_IMM, RULE_JUMP, RULE_NEAR
from repro.telemetry import trace_chain_run

RULE_SPURIOUS = "spurious_insertion"
ALL_RULES = FIG6_RULES + (RULE_SPURIOUS,)


@pytest.fixture(scope="module")
def matrix(protected_wget_cleartext):
    """Chain gadgets of the protected image, keyed by rule family.

    Attribution: ``.gadgets`` addresses are the spurious insertions the
    protector emitted; ``.text`` addresses are classified against the
    rewrite engine's own per-rule pools on the protected image.
    """
    protected = protected_wget_cleartext
    image = protected.image
    record = protected.report.chains[0]
    analysis = RewriteEngine().analyze(image)
    near = {g.address for g in analysis.existing_gadgets}
    far = {g.address for g in analysis.far_gadgets}
    imm = {c.gadget.address for c in analysis.immediate_candidates}
    jump = {c.gadget.address for c in analysis.jump_candidates}

    targets = {}
    for addr in record.gadget_addresses:  # chain execution order
        section = image.section_at(addr).name
        if section == ".gadgets":
            targets.setdefault(RULE_SPURIOUS, addr)
            continue
        if section != ".text":
            continue
        if addr in imm:
            targets.setdefault(RULE_IMM, addr)
        elif addr in jump:
            targets.setdefault(RULE_JUMP, addr)
        elif addr in far:
            targets.setdefault(RULE_FAR, addr)
        elif addr in near:
            targets.setdefault(RULE_NEAR, addr)
    return {
        "protected": protected,
        "image": image,
        "record": record,
        "baseline": protected.run(),
        "targets": targets,
    }


def _target(matrix, rule):
    addr = matrix["targets"].get(rule)
    if addr is None:
        pytest.skip(f"chain uses no gadget attributable to rule {rule!r}")
    return addr


def _malfunctioned(result, baseline):
    return (
        result.crashed
        or result.stdout != baseline.stdout
        or result.exit_status != baseline.exit_status
    )


def test_matrix_covers_both_gadget_sources(matrix):
    """Meta-row: the matrix must never silently skip itself empty."""
    targets = matrix["targets"]
    assert RULE_NEAR in targets, "chain must use existing .text gadgets"
    assert RULE_SPURIOUS in targets, "chain must use inserted gadgets"
    assert len(targets) >= 2


@pytest.mark.parametrize("rule", ALL_RULES)
def test_static_patch_corrupts_and_is_attributed(matrix, rule):
    target = _target(matrix, rule)
    tampered = matrix["image"].clone()
    corrupt_byte(tampered, target).apply(tampered)
    result, tracer = trace_chain_run(tampered, matrix["record"])
    assert _malfunctioned(result, matrix["baseline"]), rule
    assert tracer.corrupted_gadget(result.fault) == target


@pytest.mark.parametrize("rule", ALL_RULES)
def test_wurster_patch_corrupts_and_is_attributed(matrix, rule):
    """Instruction-view-only tampering: data reads see original bytes."""
    target = _target(matrix, rule)
    patch = corrupt_byte(matrix["image"], target)
    result, tracer = trace_chain_run(
        matrix["image"], matrix["record"], code_patches=[patch]
    )
    assert _malfunctioned(result, matrix["baseline"]), rule
    assert tracer.corrupted_gadget(result.fault) == target


@pytest.mark.parametrize("rule", ALL_RULES)
def test_chain_word_replacement_diverges(matrix, rule):
    """§VI-B replacement aimed at one rule's gadget: rewrite the chain
    word that dispatches to it and watch the executed chain diverge."""
    target = _target(matrix, rule)
    image = matrix["image"]
    section = image.section(".ropchains")
    words = list(
        struct.unpack(f"<{len(section.data) // 4}I", bytes(section.data))
    )
    if target not in words:
        pytest.skip(f"no cleartext chain word dispatches to {target:#x}")
    tampered = image.clone()
    tampered.write(
        section.vaddr + words.index(target) * 4,
        struct.pack("<I", image.text.vaddr + 1),
    )
    result, tracer = trace_chain_run(tampered, matrix["record"])
    assert _malfunctioned(result, matrix["baseline"]), rule
    divergence = tracer.divergence(matrix["record"].gadget_addresses)
    assert divergence is not None


@pytest.mark.parametrize("rule", ALL_RULES)
def test_slow_restore_attack_is_caught(matrix, rule):
    """A restore window large enough to overlap a chain run = static."""
    target = _target(matrix, rule)
    image = matrix["image"]
    old = image.read(target, 1)
    patch = corrupt_byte(image, target)
    assert image.read(target, 1) == old  # corrupt_byte must not mutate
    result = run_with_restore_attack(image, patch, image.entry, 10**9)
    assert _malfunctioned(result, matrix["baseline"]), rule
