"""The integrity observatory: who guards which byte, and how fast.

Static half: :class:`CoverageMap` joins a :class:`ProtectionReport`'s
per-chain gadget spans against the protected byte set to answer the
question the paper's security argument rests on — *which protected
bytes are actually covered by which verification chain* — including
per-function coverage fractions, overlap density and single-point-of-
failure bytes.  Dynamic half: the attack harness stamps tamper /
corruption / detection cycles (see :mod:`repro.attacks.harness`), whose
aggregates the coverage artifact sits alongside in ``repro stats``.
"""

from .map import CoverageMap, FunctionCoverage, build_coverage
from .render import render_coverage

__all__ = [
    "CoverageMap",
    "FunctionCoverage",
    "build_coverage",
    "render_coverage",
]
