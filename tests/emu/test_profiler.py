"""Per-function cycle attribution."""

from repro.emu import profile_run


def test_profiler_attributes_functions(small_wget):
    result, profiler = profile_run(small_wget.image)
    assert not result.crashed
    assert profiler.total_cycles > 0
    shares = {
        name: profiler.time_fraction(name) for name in small_wget.functions
    }
    # the bulk work dominates, the digest is cheap
    assert shares["checksum_words"] > shares["digest_wget"]
    assert abs(sum(profiler.time_fraction(p.name) for p in profiler.profiles.values()) - 1.0) < 1e-9
    assert profiler.call_count("digest_wget") >= 2
    assert "function" in profiler.report()
