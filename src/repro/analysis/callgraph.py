"""Static call graphs, from IR or from binary code.

The verification-function selection algorithm (§VII-B step 1) "analyzes
the call graph of the program to find functions which are called
repeatedly from several locations".  Both views are provided: the IR
view for corpus programs, and a binary view recovered by decoding
``call rel32`` targets — the latter is what a pure binary-level
deployment would use.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set

from ..binary.image import BinaryImage
from ..ropc import ir
from ..x86.decoder import decode_all


class CallGraph:
    """Directed multigraph of function calls; edges count call *sites*."""

    def __init__(self):
        self._sites: Dict[str, Set[tuple]] = defaultdict(set)
        self.functions: Set[str] = set()

    def add_function(self, name: str) -> None:
        self.functions.add(name)

    def add_call_site(self, caller: str, callee: str, site) -> None:
        self.functions.add(caller)
        self.functions.add(callee)
        self._sites[callee].add((caller, site))

    def call_sites(self, callee: str) -> int:
        """Number of distinct static call sites targeting ``callee``."""
        return len(self._sites.get(callee, ()))

    def callers(self, callee: str) -> Set[str]:
        return {caller for caller, _ in self._sites.get(callee, ())}

    def fan_in(self, callee: str) -> int:
        """Number of distinct calling functions."""
        return len(self.callers(callee))

    def callees(self, caller: str) -> Set[str]:
        out = set()
        for callee, sites in self._sites.items():
            if any(c == caller for c, _ in sites):
                out.add(callee)
        return out

    def leaves(self) -> Set[str]:
        """Functions that call nothing."""
        return {f for f in self.functions if not self.callees(f)}


def callgraph_from_ir(functions: Iterable[ir.IRFunction]) -> CallGraph:
    """Build a call graph from IR Call ops."""
    graph = CallGraph()
    for function in functions:
        graph.add_function(function.name)
        for index, op in enumerate(function.body):
            if isinstance(op, ir.Call):
                graph.add_call_site(function.name, op.callee, index)
    return graph


def callgraph_from_binary(image: BinaryImage) -> CallGraph:
    """Recover a call graph by decoding direct calls in the image."""
    graph = CallGraph()
    symbols = image.symbols
    for symbol in symbols.functions():
        graph.add_function(symbol.name)
    for symbol in symbols.functions():
        try:
            instructions = decode_all(
                image.read(symbol.vaddr, symbol.size), address=symbol.vaddr
            )
        except Exception:
            continue
        for insn in instructions:
            if insn.mnemonic != "call":
                continue
            target = insn.branch_target()
            if target is None:
                continue
            callee = symbols.at(target)
            if callee is not None and callee.vaddr == target:
                graph.add_call_site(symbol.name, callee.name, insn.address)
    return graph
