"""The paper's running example (§IV-A): a tamperproofed ptrace detector.

A hand-built anti-debugging check is protected the Parallax way, using
two of the §IV-B rewriting rules:

* **jump-offset rule** (Listing 1's trick): the ``js traced`` branch is
  laid out so its displacement byte equals 0xc3 — a ``ret`` instruction
  the verification chain bounces through;
* **immediate rule**: the detector's ``mov eax, <success>`` constant is
  chosen so its bytes embed a ``pop eax; ret`` gadget (legal because
  return values only distinguish zero from non-zero).

The verification function is translated into a ROP chain that uses both
overlapping gadgets.  The classic cracks then fail:

* Listing 2 (nop out the branch) destroys the ret the chain bounces
  through mid-computation — the chain's result is corrupted;
* rewriting the success immediate destroys the embedded pop gadget —
  the chain crashes.

Run:  python examples/ptrace_detector.py
"""

from repro.binary import BinaryImage, Perm, Section
from repro.core.stubs import build_loader_stub
from repro.emu import run_image
from repro.gadgets import GadgetCatalog, GadgetKind, GadgetOp, find_gadgets_in_bytes
from repro.ropc import RopCompiler, emit_standard_gadgets, ir
from repro.ropc.chain import ChainLabel, KindWord
from repro.x86 import Assembler, EAX, EBX, ECX, EDX, Imm

TEXT = 0x08048000
GADGETS = 0x08060000
STUB = 0x08070000
ROPDATA = 0x08090000
CHAIN = 0x08091000

#: non-zero success value whose low bytes encode "pop eax; ret" (58 c3)
SUCCESS_WITH_GADGET = 0x0001C358

#: the js displacement we force by layout: 0xc3 == -61
RET_DISPLACEMENT = -61


def build_detector_image():
    """Assemble the detector + main with Listing-1 gadget overlaps."""
    a = Assembler(base=TEXT)

    # The cleanup path is *relocated* so that the branch to it encodes a
    # ret opcode in its displacement (the paper aligned a function; we
    # pad the same way).
    a.label("traced")
    a.xor(EAX, EAX)
    a.ret()
    a.pad_to(44, fill=0xCC)               # layout engineering

    a.label("check_ptrace")
    a.mov(EAX, 26)                        # SYS_PTRACE
    a.xor(EBX, EBX)                       # PTRACE_TRACEME
    a.xor(ECX, ECX)
    a.xor(EDX, EDX)
    a.int(0x80)
    a.test(EAX, EAX)
    a.label("js_site")
    a.raw(b"\x78" + (RET_DISPLACEMENT & 0xFF).to_bytes(1, "little"))  # js traced
    a.label("success_mov")
    a.mov(EAX, Imm(SUCCESS_WITH_GADGET, 32))  # protected immediate
    a.ret()

    a.align(16)
    a.label("main")
    a.call("check_ptrace")
    a.test(EAX, EAX)
    a.jne("not_traced")
    a.mov(EBX, 99)                        # refuse to run under a debugger
    a.mov(EAX, 1)
    a.int(0x80)
    a.label("not_traced")
    # run the verification chain (stub at STUB), exit with its result
    a.push(Imm(7, 32))
    a.mov(EAX, Imm(STUB, 32))
    a.call(EAX)
    a.pop(ECX)
    a.mov(EBX, EAX)                       # expected: verify(7) == 42
    a.mov(EAX, 1)
    a.int(0x80)
    code = a.assemble()

    # sanity: the branch displacement really is a ret opcode, and it
    # really reaches the traced block
    js = a.address_of("js_site")
    assert code[js - TEXT + 1] == 0xC3
    assert js + 2 + RET_DISPLACEMENT == a.address_of("traced")

    image = BinaryImage("ptrace_demo")
    image.add_section(Section(".text", TEXT, code, Perm.RX))
    image.entry = a.address_of("main")
    image.add_function(
        "check_ptrace",
        a.address_of("check_ptrace"),
        a.address_of("main") - a.address_of("check_ptrace"),
    )
    return image, a.address_of("js_site"), a.address_of("success_mov")


def verification_function():
    """verify(x): translated to a chain; returns 6*x (42 for x=7)."""
    f = ir.IRFunction("verify", params=1)
    f.emit(ir.Param(EBX, 0))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Const(ECX, 6))
    f.emit(ir.Label("loop"))
    f.emit(ir.BinOp("add", EAX, EBX))
    f.emit(ir.AddConst(ECX, 0xFFFFFFFF))
    f.emit(ir.Branch("ne", ECX, 0, "loop"))
    f.emit(ir.Ret())
    return f


def protect(image, js_addr, success_mov_addr):
    """Compile the verification chain over the two overlapping gadgets."""
    compiler = RopCompiler(frame_cell=ROPDATA, resume_cell=ROPDATA + 4)
    chain = compiler.compile(verification_function())
    # Bounce through the ret hidden in the js displacement right before
    # the result is committed (after the loop's fall-through label):
    # nop-ing the branch then derails the chain mid-computation.
    last_label = max(
        i for i, item in enumerate(chain.items) if isinstance(item, ChainLabel)
    )
    chain.items.insert(last_label + 1, KindWord(GadgetKind(GadgetOp.NOP)))

    text = image.text
    discovered = find_gadgets_in_bytes(bytes(text.data), base=TEXT)
    embedded_pop = [g for g in discovered if g.address == success_mov_addr + 1]
    assert embedded_pop and embedded_pop[0].kind.op == GadgetOp.LOAD_CONST
    ret_in_offset = [g for g in discovered if g.address == js_addr + 1]
    assert ret_in_offset and ret_in_offset[0].kind.op == GadgetOp.NOP

    gcode, standard = emit_standard_gadgets(chain.required_kinds(), base=GADGETS)
    catalog = GadgetCatalog(standard)
    catalog.add(embedded_pop[0], preferred=True)
    catalog.add(ret_in_offset[0], preferred=True)

    resolved = chain.resolve(catalog)
    payload = resolved.to_bytes(CHAIN)
    stub = build_loader_stub(STUB, ROPDATA, ROPDATA + 4, CHAIN)

    image.add_section(Section(".gadgets", GADGETS, gcode, Perm.RX))
    image.add_section(Section(".stubs", STUB, stub.code, Perm.RX))
    image.add_section(Section(".ropdata", ROPDATA, bytes(64), Perm.RW))
    image.add_section(Section(".ropchains", CHAIN, payload, Perm.RW))

    used = {
        item.gadget.address
        for item in resolved.items
        if isinstance(item, KindWord) and item.gadget is not None
    }
    assert embedded_pop[0].address in used, "chain must use the pop gadget"
    assert ret_in_offset[0].address in used, "chain must bounce off the js ret"
    return image


def crack_listing2(image, js_addr):
    """Listing 2: nop out the jump to the cleanup path."""
    tampered = image.clone()
    tampered.write(js_addr, b"\x90\x90")
    return tampered


def crack_immediate(image, js_addr, success_mov_addr):
    """Stronger crack: nop the branch AND normalize the odd-looking
    success constant (destroying the embedded pop gadget)."""
    tampered = image.clone()
    tampered.write(js_addr, b"\x90\x90")
    tampered.write(success_mov_addr, b"\xb8\x01\x00\x00\x00")
    return tampered


def main():
    image, js_addr, mov_addr = build_detector_image()
    protected = protect(image, js_addr, mov_addr)

    pristine = run_image(protected)
    print("pristine, no debugger :", pristine)
    print("pristine, debugger    :", run_image(protected, debugger_attached=True))
    assert pristine.exit_status == 42

    listing2 = run_image(crack_listing2(protected, js_addr), debugger_attached=True)
    print("Listing-2 crack       :", listing2)
    immediate = run_image(crack_immediate(protected, js_addr, mov_addr), debugger_attached=True)
    print("immediate crack       :", immediate)
    print()
    print("Both cracks bypass the ptrace check but destroy a gadget the")
    print("verification chain uses: the tamper response is the program")
    print(f"malfunctioning (exit {listing2.exit_status}/{immediate.exit_status},"
          " crash or wrong result instead of 42).")


if __name__ == "__main__":
    main()
