"""§V-B probabilistic function chains by linear combination.

The protected binary regenerates its verification chain on every call,
choosing gadget variants with an LCG over the compiled index arrays —
an attacker can never be sure which gadget subset the next execution
will check.

Run:  python examples/probabilistic_chains.py
"""

from repro.core import Parallax, ProtectConfig
from repro.corpus import build_wget
from repro.emu import Emulator, OperatingSystem
from repro.emu.syscalls import ExitProgram


def main():
    program = build_wget(blocks=2, chunks=10)
    config = ProtectConfig(
        strategy="linear", verification_functions=["digest_wget"], n_variants=4
    )
    protected = Parallax(config).protect(program)
    record = protected.report.chains[0]
    print(protected.report.summary())
    print()
    print(f"chain: {record.word_count} words, {record.variants} compiled variants")
    distinct = len(set(record.gadget_addresses))
    print(f"distinct gadgets across all variants: {distinct}")
    print(f"variant space upper bound: {record.variants}^{record.word_count} "
          f"= {record.variants ** record.word_count:.3e}")

    # Observe the regenerated chain changing across calls at runtime.
    section = protected.image.section(".ropchains")
    emulator = Emulator(protected.image, os=OperatingSystem(), max_steps=50_000_000)
    snapshots = set()
    digest_addr = protected.image.symbols["digest_wget"].vaddr

    def hook(eip, insn):
        if eip == digest_addr:
            snapshots.add(bytes(emulator.memory.read(section.vaddr, section.size)))

    emulator.trace_hook = hook
    try:
        while True:
            emulator.step()
    except ExitProgram:
        pass
    # the first snapshot is taken before generation; drop empty images
    live = {s for s in snapshots if any(s)}
    print(f"runtime chain images observed across calls: {len(snapshots)} "
          f"(distinct generated: {len(live)})")
    baseline = program.run()
    result = protected.run()
    assert result.stdout == baseline.stdout
    print("output identical to the unprotected program on every variant")


if __name__ == "__main__":
    main()
