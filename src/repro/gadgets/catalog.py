"""The gadget catalog — the paper's "gadget mapping".

Maps :class:`GadgetKind` keys to the concrete gadgets implementing them,
so the ROP compiler can resolve each operation to an address.  Overlap
bookkeeping lets the compiler honour the paper's rule that "during
compilation of the verification code, overlapping gadgets are always
preferred over non-overlapping gadgets" (§III).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set

from ..x86.registers import Register
from .types import Gadget, GadgetKind, GadgetOp


class GadgetCatalog:
    """Kind-indexed collection of gadgets."""

    def __init__(self, gadgets: Iterable[Gadget] = ()):
        self._by_kind: Dict[tuple, List[Gadget]] = defaultdict(list)
        self._all: List[Gadget] = []
        #: addresses of gadgets that overlap protected instructions —
        #: these get priority during chain compilation.
        self.preferred: Set[int] = set()
        for gadget in gadgets:
            self.add(gadget)

    def add(self, gadget: Gadget, preferred: bool = False) -> Gadget:
        self._all.append(gadget)
        self._by_kind[gadget.kind.key()].append(gadget)
        if preferred:
            self.preferred.add(gadget.address)
        return gadget

    def mark_preferred(self, address: int) -> None:
        self.preferred.add(address)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self):
        return iter(self._all)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def of_kind(self, kind: GadgetKind, clean_only: bool = True) -> List[Gadget]:
        """All gadgets implementing ``kind``, preferred (overlapping) first.

        ``clean_only`` excludes gadgets whose terminator semantics need
        special chain layout (``ret imm16``) — the compiler handles far
        returns but not arbitrary stack skips.
        """
        gadgets = self._by_kind.get(kind.key(), [])
        if clean_only:
            gadgets = [g for g in gadgets if g.ret_imm == 0]
        return sorted(
            gadgets,
            key=lambda g: (g.address not in self.preferred, g.length, g.address),
        )

    def best(self, kind: GadgetKind) -> Optional[Gadget]:
        """The single best gadget for ``kind`` (overlapping, then shortest)."""
        gadgets = self.of_kind(kind)
        return gadgets[0] if gadgets else None

    def variants(self, kind: GadgetKind) -> List[Gadget]:
        """All usable gadgets for ``kind`` — the set :math:`G_i` of §V-B
        from which probabilistic chain generation samples."""
        return self.of_kind(kind)

    # ------------------------------------------------------------------
    # Capability queries
    # ------------------------------------------------------------------

    def has(self, kind: GadgetKind) -> bool:
        return bool(self.of_kind(kind))

    def load_const_regs(self) -> List[Register]:
        """Registers for which a ``pop reg; ret`` gadget exists."""
        regs = []
        for key, gadgets in self._by_kind.items():
            if key[0] == GadgetOp.LOAD_CONST and any(g.ret_imm == 0 for g in gadgets):
                regs.append(Register.by_name(key[1]))
        return regs

    def span_map(self) -> Dict[int, int]:
        """``{address: end}`` byte spans of every catalogued gadget.

        The coverage observatory joins this against a chain's gadget
        addresses to find which code bytes each chain implicitly
        verifies; duplicate addresses keep the longest span.
        """
        spans: Dict[int, int] = {}
        for gadget in self._all:
            end = spans.get(gadget.address)
            if end is None or gadget.end > end:
                spans[gadget.address] = gadget.end
        return spans

    def kinds(self) -> List[GadgetKind]:
        out = []
        for gadgets in self._by_kind.values():
            out.append(gadgets[0].kind)
        return out

    def count_by_op(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for gadget in self._all:
            counts[gadget.kind.op] += 1
        return dict(counts)

    def usable(self) -> List[Gadget]:
        return [g for g in self._all if g.usable and g.ret_imm == 0]

    def __repr__(self) -> str:
        return f"<GadgetCatalog {len(self._all)} gadgets, {len(self._by_kind)} kinds>"
